//! # Adaptive-parallel DNN-guided MCTS
//!
//! A full Rust reproduction of *"Accelerating Deep Neural Network guided
//! MCTS using Adaptive Parallelism"* (Meng, Wang, Zu, Prasanna — SC 2023).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`games`] — board-game environments (Gomoku 15×15 is the paper's
//!   benchmark; TicTacToe/Connect-Four for fast tests);
//! * [`tensor`] / [`nn`] — the from-scratch DNN substrate (the paper's
//!   5-conv/3-FC policy-value network, loss, optimizers);
//! * [`accel`] — the simulated inference accelerator: batched request
//!   queues with **async submit/poll** clients and a PCIe/kernel-launch
//!   latency model;
//! * [`mcts`] — the core contribution: shared-tree and local-tree
//!   tree-parallel search over a **batch-first evaluation API**
//!   (`BatchEvaluator` / `EvalClient`), the serial/leaf/root baselines,
//!   the `SearchBuilder` construction layer, and adaptive dispatch;
//! * [`perfmodel`] — performance models (Eqs. 3–6), design-time profiler,
//!   Algorithm-4 batch-size search, and the timeline simulator;
//! * [`train`] — the self-play + SGD training pipeline with throughput
//!   and loss-curve metrics.
//!
//! ## Quickstart
//!
//! Build any scheme through [`mcts::SearchBuilder`]; inference is
//! batch-first end to end (here: real batched forward passes through a
//! random-weights network).
//!
//! ```
//! use adaptive_dnn_mcts::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A game and a (random-weights) policy-value network.
//! let game = Gomoku::new(7, 4);
//! let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 7, 7, 49), 0));
//!
//! // 2. Let the performance model pick the parallel scheme for 4 workers.
//! let costs = perfmodel::profiler::ProfiledCosts {
//!     t_select_ns: 2_000.0,
//!     t_backup_ns: 1_000.0,
//!     t_shared_access_ns: 300.0,
//!     t_dnn_cpu_ns: 400_000.0,
//! };
//! let configurator = DesignConfigurator::new(costs, None);
//! let choice = configurator.configure(Platform::CpuOnly, 4);
//!
//! // 3. Build the selected scheme and search one move.
//! let mut search = SearchBuilder::new(choice.scheme)
//!     .playouts(64)
//!     .workers(4)
//!     .evaluator(Arc::new(NnEvaluator::new(net)))
//!     .build::<Gomoku>();
//! let result = search.search(&game);
//! assert_eq!(result.stats.playouts, 64);
//! ```
//!
//! Routing inference through the simulated accelerator instead is one
//! builder call: `.device(device)` — the local-tree scheme then feeds
//! the device queue natively with async tickets (§3.3), no thread per
//! outstanding leaf.
//!
//! ## Migrating from the blocking single-sample API
//!
//! Pre-0.2 code passed `Arc<dyn Evaluator>` (blocking
//! `evaluate(&[f32]) -> (Vec<f32>, f32)`) into per-scheme `new`
//! constructors. The `Evaluator` trait still exists and still works
//! everywhere — a blanket adapter lifts any `Evaluator` into the new
//! [`mcts::BatchEvaluator`], so custom evaluators compile unchanged when
//! passed as concrete `Arc<MyEval>`. Boxed `Arc<dyn Evaluator>` objects
//! go through [`mcts::LegacyEvaluator`] or
//! `SearchBuilder::legacy_evaluator`. `NnEvaluator` and `AccelEvaluator`
//! are now natively batched: one forward pass (or one queue submission
//! wave) per batch instead of per sample.

pub use accel;
pub use games;
pub use mcts;
pub use nn;
pub use perfmodel;
pub use tensor;
pub use train;

/// Commonly-used items, one import away.
pub mod prelude {
    pub use accel::{BatchModel, Device, DeviceClient, DeviceConfig, LatencyModel};
    pub use games::connect4::Connect4;
    pub use games::gomoku::Gomoku;
    pub use games::hex::Hex;
    pub use games::othello::Othello;
    pub use games::symmetry::Symmetry;
    pub use games::synthetic::SyntheticGame;
    pub use games::tictactoe::TicTacToe;
    pub use games::{Action, Game, Player, Status};
    pub use mcts::{
        AccelEvaluator, AdaptiveSearch, BatchEvaluator, Budget, CacheStats, CachedEvaluator,
        CoalescingEvaluator, Completion, EvalCache, EvalCacheConfig, EvalClient, EvalOutput,
        Evaluator, EvictionPolicy, LegacyEvaluator, LockKind, MctsConfig, NnEvaluator,
        ReusableSearch, RootNoise, Scheme, SearchBuilder, SearchResult, SearchScheme, SearchStats,
        SpeculativeSearch, Ticket, TreeStats, UniformEvaluator, VirtualLoss,
    };
    pub use nn::resnet::{ResNetConfig, ResNetPolicyValueNet};
    pub use nn::{NetConfig, PolicyValueNet};
    pub use perfmodel::{
        self, crossover_workers, sweep, DesignChoice, DesignConfigurator, PerfParams, Platform,
        SimParams, SweepParam,
    };
    pub use train::arena::{elo_diff, play_match, EloTracker, MatchResult};
    pub use train::{Pipeline, PipelineConfig, ReplayBuffer, Sample};
}
