//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Implements exactly the surface this workspace uses: `StdRng` seeded
//! through [`SeedableRng::seed_from_u64`], `Rng::gen_range` over integer
//! and float `Range`s, `Rng::gen`, and `seq::SliceRandom`'s
//! `shuffle`/`choose`. The generator is xoshiro256++ with a SplitMix64
//! seed expander — deterministic across platforms, which is all the
//! tests and the search code rely on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full value domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for every span used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw a value covering the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's standard generator. Not the real
    /// `StdRng` (ChaCha12); streams differ from upstream `rand`, which
    /// only matters if golden values were recorded against it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d: f64 = rng.gen_range(0.0..0.25);
            assert!((0.0..0.25).contains(&d));
        }
    }

    #[test]
    fn uniform_float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
