//! Offline stand-in for `criterion`: the group/bencher API surface used
//! by this workspace's benches, with a simple mean-of-samples timer and
//! plain-text reporting instead of criterion's statistics machinery.

use std::time::{Duration, Instant};

pub mod measurement {
    /// Wall-clock measurement marker (the only one supported).
    pub struct WallTime;
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Throughput annotation (recorded, reported per-element).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        let mean = b.mean();
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 && !mean.is_zero() => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if n > 0 && !mean.is_zero() => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:?} over {} samples{}",
            self.name,
            id.name,
            mean,
            b.samples.len(),
            extra
        );
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// End the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Prevent the optimizer from eliding a value (stable-rust best effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
