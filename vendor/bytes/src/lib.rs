//! Offline stand-in for the `bytes` crate: just enough of
//! `Bytes`/`BytesMut`/`Buf`/`BufMut` for the little-endian checkpoint
//! format in `nn::serialize` and the wire-frame codec in `net` (whose
//! decoder uses only the checked `try_*` reads, so truncated or
//! malicious input yields `None` instead of a panic).

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian read cursor over a shrinking byte view.
///
/// The `get_*` reads panic on underrun (fine for trusted on-disk data
/// whose length was already validated); the `try_*` family returns
/// `None` instead, for decoders facing untrusted network input.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes, returning them.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consume `n` bytes if available, `None` (consuming nothing)
    /// otherwise.
    fn try_take_bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.remaining() < n {
            None
        } else {
            Some(self.take_bytes(n))
        }
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Checked read of one byte.
    fn try_get_u8(&mut self) -> Option<u8> {
        self.try_take_bytes(1).map(|b| b[0])
    }

    /// Checked read of a little-endian `u16`.
    fn try_get_u16_le(&mut self) -> Option<u16> {
        self.try_take_bytes(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    /// Checked read of a little-endian `u32`.
    fn try_get_u32_le(&mut self) -> Option<u32> {
        self.try_take_bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Checked read of a little-endian `u64`.
    fn try_get_u64_le(&mut self) -> Option<u64> {
        self.try_take_bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Checked read of a little-endian `f32`.
    fn try_get_f32_le(&mut self) -> Option<f32> {
        self.try_take_bytes(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Little-endian writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.remaining(), 16);
        assert_eq!(view.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(view.get_u64_le(), 42);
        assert_eq!(view.get_f32_le(), 1.5);
        assert_eq!(view.remaining(), 0);
    }
}
