//! Offline stand-in for `proptest`: random-input property testing with
//! the `proptest! { fn f(x in strategy) { ... } }` surface this
//! workspace's tests use. No shrinking — a failing case reports its seed
//! and case index instead, which is reproducible because generation is
//! deterministic per test name.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Random-length `Vec` strategy.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            elem,
            min: size.start,
            max: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drive one property: `cases` random inputs, deterministic per `name`.
/// `Err` fails the test with the case number for reproduction; an
/// assumption rejection (see [`prop_assume!`]) just skips the case.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), String>,
) {
    // FNV-1a over the test name: a stable per-property seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..config.cases {
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {i} (seed {seed:#x}): {msg}");
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property; failure aborts only the current case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(()); // rejected case: skip, don't fail
        }
    };
}

/// Define property tests over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
