//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! no-poisoning, guard-returning API, implemented over `std::sync`.
//! A panic while a lock is held simply passes the data through to the
//! next locker (`parking_lot` semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores std poisoning, like `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Readers-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Condition variable paired with [`Mutex`]: `wait`/`wait_timeout`
/// return the reacquired guard directly, recovering from std poisoning
/// the same way the locks do (a waiter is never torn down because some
/// *other* thread panicked while holding the mutex).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified; returns the reacquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Block until notified or `dur` elapses; returns the reacquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, sync::WaitTimeoutResult) {
        match self.inner.wait_timeout(guard, dur) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn condvar_wakes_waiter_even_after_a_poisoning_panic() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut done = m.lock();
                while !*done {
                    done = cv.wait(done);
                }
            })
        };
        // Panic while holding the mutex (std would poison it), then set
        // the flag from a healthy thread: the waiter must still wake.
        let poisoner = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let _g = pair.0.lock();
                panic!("poison");
            })
        };
        assert!(poisoner.join().is_err());
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
