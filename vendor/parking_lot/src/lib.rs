//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! no-poisoning, guard-returning API, implemented over `std::sync`.
//! A panic while a lock is held simply passes the data through to the
//! next locker (`parking_lot` semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores std poisoning, like `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Readers-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
