//! Offline stand-in for `serde` (see `vendor/serde_derive`).
//!
//! The workspace uses `Serialize`/`Deserialize` purely as marker derives;
//! no data format crate is linked, so the traits carry no methods. If a
//! format crate is ever added, replace this shim with the real `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
