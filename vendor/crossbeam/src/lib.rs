//! Offline stand-in for `crossbeam` (channels + `WaitGroup` subset).
//!
//! Multi-producer **multi-consumer** FIFO channels on a mutex/condvar
//! queue, with the `crossbeam-channel` disconnect semantics the search
//! code relies on: `recv` fails once all senders are gone and the queue
//! is drained; `send` fails once all receivers are gone. `bounded(n)` is
//! accepted but does not apply backpressure (no caller in this workspace
//! depends on it: bounded channels are only used for single replies).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// [`Receiver::try_recv`] outcomes other than success.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// Drained and all senders dropped.
        Disconnected,
    }

    /// [`Receiver::recv_timeout`] outcomes other than success.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with the queue still empty.
        Timeout,
        /// Drained and all senders dropped.
        Disconnected,
    }

    /// Sending half; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone freely across threads (work-sharing FIFO).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap();
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Block until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                Ok(v)
            } else if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }

        /// Number of queued messages (diagnostics).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Accepted for API compatibility; behaves as [`unbounded`] (no
    /// backpressure — see the module docs).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct WgInner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Barrier counting live clones: `wait` returns once every other
    /// clone has been dropped.
    pub struct WaitGroup {
        inner: Arc<WgInner>,
    }

    impl WaitGroup {
        /// A group with one registered handle (the returned one).
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            WaitGroup {
                inner: Arc::new(WgInner {
                    count: Mutex::new(1),
                    zero: Condvar::new(),
                }),
            }
        }

        /// Drop this handle and block until the count reaches zero.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self);
            let mut n = inner.count.lock().unwrap();
            while *n > 0 {
                n = inner.zero.wait(n).unwrap();
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().unwrap() += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut n = self.inner.count.lock().unwrap();
            *n -= 1;
            if *n == 0 {
                self.inner.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use super::sync::WaitGroup;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread_mpmc() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    while let Ok(v) = rx.recv() {
                        got += v;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for producer in 0..4u64 {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(producer * 1000 + i).unwrap();
                }
            });
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        let expect: u64 = (0..4u64)
            .map(|p| (0..100).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn waitgroup_blocks_until_all_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let wg = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
