//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace vendors its dependencies because it builds in an
//! air-gapped environment. The codebase only uses `#[derive(Serialize,
//! Deserialize)]` as a marker (no serialization format crate is linked),
//! so the derives expand to a marker-trait impl and nothing else.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following `struct`/`enum` so we can emit a
/// marker impl for it. Generic types get a conservative empty expansion.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    // Skip generic types: emitting `impl Trait for Name`
                    // without the parameters would not compile.
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl serde::Deserialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
