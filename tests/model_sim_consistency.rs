//! Consistency between the closed-form performance models (Eqs. 3–6) and
//! the discrete-event timeline simulator: both encode §4's analysis, so
//! they must agree on *ordering* (which scheme wins, where the batch-size
//! optimum lies) even though their absolute numbers differ.

use adaptive_dnn_mcts::prelude::*;
use perfmodel::model::{local_cpu_iteration_ns, local_gpu_iteration_ns, shared_cpu_iteration_ns};
use perfmodel::sim::{simulate_local_accel, simulate_local_cpu, simulate_shared_cpu};
use perfmodel::vsearch::find_min_vsequence;

fn paper_like_perf(workers: usize) -> PerfParams {
    PerfParams {
        workers,
        t_select_ns: 20_000.0,
        t_backup_ns: 10_000.0,
        t_shared_access_ns: 1_500.0,
        t_dnn_cpu_ns: 1_200_000.0,
        accel: Some(LatencyModel::a6000_like(4 * 15 * 15 * 4)),
    }
}

#[test]
fn cpu_scheme_ordering_agrees_at_extremes() {
    // Small N: inference dominates → local wins in both model and sim.
    // Large N: serial master dominates → shared wins in both.
    for (n, expect_local) in [(2usize, true), (64, false)] {
        let p = paper_like_perf(n);
        let model_local = local_cpu_iteration_ns(&p);
        let model_shared = shared_cpu_iteration_ns(&p);

        let sp = SimParams::paper_like(n);
        let sim_local = simulate_local_cpu(&sp).iteration_ns;
        let sim_shared = simulate_shared_cpu(&sp).iteration_ns;

        assert_eq!(
            model_local < model_shared,
            expect_local,
            "closed form at N={n}: local {model_local} vs shared {model_shared}"
        );
        assert_eq!(
            sim_local < sim_shared,
            expect_local,
            "simulator at N={n}: local {sim_local} vs shared {sim_shared}"
        );
    }
}

#[test]
fn both_oracles_produce_v_shaped_batch_curves() {
    // Eq. 6 and the simulator must each yield an interior batch optimum at
    // N = 64 (the precondition for Algorithm 4). The closed-form model
    // needs light in-tree work for the V to emerge — with in-tree·N
    // dominating every term the curve is flat and B is irrelevant, which
    // Eq. 6 predicts too.
    let p = PerfParams {
        t_select_ns: 2_000.0,
        t_backup_ns: 1_000.0,
        ..paper_like_perf(64)
    };
    let model_curve: Vec<f64> = (1..=64).map(|b| local_gpu_iteration_ns(&p, b)).collect();
    let sp = SimParams::paper_like(64);
    let sim_curve: Vec<f64> = (1..=64)
        .map(|b| simulate_local_accel(&sp, b).iteration_ns)
        .collect();

    for (name, curve) in [("model", &model_curve), ("sim", &sim_curve)] {
        let best = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            best > 0 && best < 63,
            "{name}: optimum must be interior, got index {best}"
        );
        assert!(
            curve[0] > curve[best] && curve[63] > curve[best],
            "{name}: extremes must be worse than the optimum"
        );
    }
}

#[test]
fn vsearch_optimum_close_to_exhaustive_on_both_oracles() {
    let p = paper_like_perf(32);
    let sp = SimParams::paper_like(32);
    type Oracle<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
    let oracles: [(&str, Oracle); 2] = [
        ("model", Box::new(move |b| local_gpu_iteration_ns(&p, b))),
        (
            "sim",
            Box::new(move |b| simulate_local_accel(&sp, b).iteration_ns),
        ),
    ];
    for (name, f) in oracles {
        let (b_star, _) = find_min_vsequence(1, 32, &f);
        let exhaustive = (1..=32).map(&f).fold(f64::INFINITY, f64::min);
        let found = f(b_star);
        assert!(
            found <= exhaustive * 1.05,
            "{name}: vsearch B*={b_star} gives {found}, exhaustive best {exhaustive}"
        );
    }
}

#[test]
fn sensitivity_sweep_consistent_with_direct_choice() {
    // A sweep point at factor 1.0 must report exactly what choose_scheme
    // reports for the unmodified parameters.
    let p = paper_like_perf(16);
    let pts = sweep(Platform::CpuOnly, &p, SweepParam::DnnCpu, &[1.0]);
    let (scheme, local, shared) = perfmodel::choose_scheme(Platform::CpuOnly, &p);
    assert_eq!(pts[0].chosen, scheme);
    assert!((pts[0].local_ns - local).abs() < 1e-9);
    assert!((pts[0].shared_ns - shared).abs() < 1e-9);
}
