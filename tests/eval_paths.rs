//! Cross-path consistency of the batch-first evaluation API: the CPU
//! batched path, the single-sample legacy adapter, and the accelerator
//! queue must be *numerically interchangeable* — batching may change
//! when inference happens, never what it computes. Plus scheme parity:
//! `SearchBuilder` output must match the direct constructors
//! seed-for-seed.

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;

fn tiny_net(seed: u64) -> Arc<PolicyValueNet> {
    Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), seed))
}

fn probe_inputs(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..36)
                .map(|j| ((i * 29 + j * 7) % 11) as f32 / 11.0)
                .collect()
        })
        .collect()
}

/// The pre-redesign inference path, byte for byte: one blocking
/// single-sample network call per `evaluate`.
struct LegacySingleSample(Arc<PolicyValueNet>);

impl Evaluator for LegacySingleSample {
    fn input_len(&self) -> usize {
        36
    }
    fn action_space(&self) -> usize {
        9
    }
    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let x = tensor::Tensor::from_vec(input.to_vec(), &[1, 4, 3, 3]);
        let (pi, v) = self.0.predict(&x);
        (pi.into_vec(), v.data()[0])
    }
}

#[test]
fn batched_legacy_and_device_paths_agree() {
    let net = tiny_net(41);
    let inputs = probe_inputs(7);
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();

    // Path 1: native CPU batched (one forward pass for all 7).
    let nn = NnEvaluator::new(Arc::clone(&net));
    let mut batched = vec![EvalOutput::default(); 7];
    nn.evaluate_batch(&refs, &mut batched);
    assert_eq!(nn.forward_calls(), 1, "7 samples must be ONE forward pass");

    // Path 2: the legacy single-sample trait through the blanket adapter.
    let legacy = LegacySingleSample(Arc::clone(&net));
    let mut adapted = vec![EvalOutput::default(); 7];
    BatchEvaluator::evaluate_batch(&legacy, &refs, &mut adapted);

    // Path 3: the accelerator queue (batch threshold 4 → two device
    // batches for 7 requests, submitted from this one thread).
    let dev = Arc::new(Device::new(Arc::clone(&net), DeviceConfig::instant(4)));
    let accel = AccelEvaluator::new(Arc::clone(&dev));
    let mut queued = vec![EvalOutput::default(); 7];
    accel.evaluate_batch(&refs, &mut queued);

    // Path 4: raw async DeviceClient submit/poll.
    let mut client = dev.client();
    for (i, x) in inputs.iter().enumerate() {
        client.submit(i as u64, x.clone());
    }
    let mut polled = vec![EvalOutput::default(); 7];
    while client.outstanding() > 0 {
        let t = client.poll();
        polled[t.tag as usize] = EvalOutput {
            priors: t.response.priors,
            value: t.response.value,
        };
    }

    for i in 0..7 {
        for (path_name, path) in [
            ("legacy-adapter", &adapted),
            ("device-queue", &queued),
            ("device-client", &polled),
        ] {
            assert_eq!(batched[i].priors.len(), path[i].priors.len());
            for (a, b) in batched[i].priors.iter().zip(&path[i].priors) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "sample {i}: {path_name} prior diverges from CPU batch: {a} vs {b}"
                );
            }
            assert!(
                (batched[i].value - path[i].value).abs() < 1e-5,
                "sample {i}: {path_name} value diverges"
            );
        }
    }
}

#[test]
fn accel_evaluator_batch_needs_no_thread_per_request() {
    // 16 in-flight requests, one submitting thread, threshold 8: if the
    // old block-per-request model were still in place this would need 16
    // OS threads to ever fill a batch. The stats prove real batches
    // formed from a single-threaded submitter.
    let net = tiny_net(42);
    let dev = Arc::new(Device::new(net, DeviceConfig::instant(8)));
    let accel = AccelEvaluator::new(Arc::clone(&dev));
    let inputs = probe_inputs(16);
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let mut out = vec![EvalOutput::default(); 16];
    accel.evaluate_batch(&refs, &mut out);
    let s = dev.stats();
    assert_eq!(s.samples, 16);
    assert!(
        s.max_batch >= 4,
        "single-threaded submission failed to fill device batches (max {})",
        s.max_batch
    );
}

#[test]
fn builder_matches_direct_constructors_seed_for_seed() {
    use mcts::leaf_parallel::LeafParallelSearch;
    use mcts::local::LocalTreeSearch;
    use mcts::root_parallel::RootParallelSearch;
    use mcts::serial::SerialSearch;
    use mcts::shared::SharedTreeSearch;

    let g = TicTacToe::new();
    // One worker everywhere: every scheme is then deterministic, so
    // builder and direct construction must agree visit-for-visit.
    let cfg = MctsConfig {
        playouts: 90,
        workers: 1,
        ..Default::default()
    };
    let eval = || Arc::new(UniformEvaluator::for_game(&g));

    for scheme in Scheme::ALL {
        let built = SearchBuilder::new(scheme)
            .config(cfg)
            .evaluator(eval())
            .build::<TicTacToe>()
            .search(&g);
        let direct = match scheme {
            Scheme::Serial => {
                SearchScheme::<TicTacToe>::search(&mut SerialSearch::new(cfg, eval()), &g)
            }
            Scheme::SharedTree => {
                SearchScheme::<TicTacToe>::search(&mut SharedTreeSearch::new(cfg, eval()), &g)
            }
            Scheme::LocalTree => {
                SearchScheme::<TicTacToe>::search(&mut LocalTreeSearch::new(cfg, eval()), &g)
            }
            Scheme::LeafParallel => {
                SearchScheme::<TicTacToe>::search(&mut LeafParallelSearch::new(cfg, eval()), &g)
            }
            Scheme::RootParallel => {
                SearchScheme::<TicTacToe>::search(&mut RootParallelSearch::new(cfg, eval()), &g)
            }
            Scheme::Speculative => {
                // The builder's defaults: uniform speculative model,
                // worker-sized commit batches.
                let spec = Arc::new(UniformEvaluator::for_game(&g));
                let mut s = SpeculativeSearch::new(cfg, eval(), spec, 1);
                SearchScheme::<TicTacToe>::search(&mut s, &g)
            }
        };
        assert_eq!(
            built.visits, direct.visits,
            "{scheme}: builder and direct constructor diverge"
        );
        assert_eq!(built.stats.playouts, direct.stats.playouts, "{scheme}");
    }
}

#[test]
fn builder_with_network_matches_direct_serial_search() {
    use mcts::serial::SerialSearch;
    let net = tiny_net(43);
    let g = TicTacToe::new();
    let cfg = MctsConfig {
        playouts: 70,
        workers: 1,
        ..Default::default()
    };
    let built = SearchBuilder::new(Scheme::Serial)
        .config(cfg)
        .evaluator(Arc::new(NnEvaluator::new(Arc::clone(&net))))
        .build::<TicTacToe>()
        .search(&g);
    let direct = SearchScheme::<TicTacToe>::search(
        &mut SerialSearch::new(cfg, Arc::new(NnEvaluator::new(net))),
        &g,
    );
    assert_eq!(built.visits, direct.visits);
}

#[test]
fn all_schemes_search_identically_through_every_eval_route() {
    // The same deterministic 1-worker serial search through three
    // different evaluation routes must produce identical trees.
    let net = tiny_net(44);
    let g = TicTacToe::new();
    let cfg = MctsConfig {
        playouts: 60,
        workers: 1,
        ..Default::default()
    };
    let run = |search: &mut dyn SearchScheme<TicTacToe>| search.search(&g).visits;

    let cpu = run(SearchBuilder::new(Scheme::Serial)
        .config(cfg)
        .evaluator(Arc::new(NnEvaluator::new(Arc::clone(&net))))
        .build::<TicTacToe>()
        .as_mut());
    let legacy = run(SearchBuilder::new(Scheme::Serial)
        .config(cfg)
        .legacy_evaluator(Arc::new(LegacySingleSample(Arc::clone(&net))))
        .build::<TicTacToe>()
        .as_mut());
    let device = run(SearchBuilder::new(Scheme::Serial)
        .config(cfg)
        .device(Arc::new(Device::new(net, DeviceConfig::instant(1))))
        .build::<TicTacToe>()
        .as_mut());
    assert_eq!(cpu, legacy, "legacy adapter altered the search");
    assert_eq!(cpu, device, "device route altered the search");
}
