//! Property-based tests (proptest) over the core invariants of the
//! system: game rules, tensor algebra, V-sequence search, replay buffer
//! bounds, and search bookkeeping.

use adaptive_dnn_mcts::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- games ----------------

    /// Random legal play on Gomoku never produces an illegal state and
    /// always terminates within board-size moves.
    #[test]
    fn gomoku_random_play_terminates_legally(seed in 0u64..5_000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Gomoku::new(6, 4);
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let acts = g.legal_actions();
            prop_assert!(!acts.is_empty());
            let a = acts[rng.gen_range(0..acts.len())];
            prop_assert!(g.is_legal(a));
            g.apply(a);
            moves += 1;
            prop_assert!(moves <= 36);
        }
        prop_assert!(g.legal_actions().is_empty());
    }

    /// Legal-action count decreases by exactly one per Gomoku move.
    #[test]
    fn gomoku_action_count_monotone(seed in 0u64..2_000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Gomoku::new(6, 5);
        let mut prev = g.legal_actions().len();
        for _ in 0..10 {
            if g.status() != Status::Ongoing { break; }
            let acts = g.legal_actions();
            let a = acts[rng.gen_range(0..acts.len())];
            g.apply(a);
            let now = g.legal_actions().len();
            if g.status() == Status::Ongoing {
                prop_assert_eq!(now, prev - 1);
            }
            prev = now;
        }
    }

    /// Zobrist hashes are permutation-invariant: two interleavings of the
    /// same (black-set, white-set) stones hash identically.
    #[test]
    fn gomoku_hash_transposition_invariant(
        perm_seed in 0u64..1_000,
    ) {
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        // Fixed stone sets, random interleaving-preserving order:
        // blacks play even plies, whites odd plies.
        let mut blacks = [0u16, 7, 14, 21];
        let mut whites = [1u16, 8, 15, 22];
        blacks.shuffle(&mut rng);
        whites.shuffle(&mut rng);
        let mut a = Gomoku::new(6, 5);
        let mut b = Gomoku::new(6, 5);
        for i in 0..4 {
            a.apply(blacks[i]);
            a.apply(whites[i]);
            // Reference order.
            b.apply([0u16, 7, 14, 21][i]);
            b.apply([1u16, 8, 15, 22][i]);
        }
        prop_assert_eq!(a.hash(), b.hash());
    }

    // ---------------- tensor ----------------

    /// GEMM distributes over addition: A(B + C) == AB + AC.
    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1_000
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = tensor::init::uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = tensor::init::uniform(&mut rng, &[k, n], -1.0, 1.0);
        let c = tensor::init::uniform(&mut rng, &[k, n], -1.0, 1.0);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax output is a probability distribution and is invariant to
    /// adding a constant to the logits.
    #[test]
    fn softmax_invariances(
        len in 1usize..12, shift in -50.0f32..50.0, seed in 0u64..1_000
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = tensor::init::uniform(&mut rng, &[len], -5.0, 5.0);
        let mut a = x.data().to_vec();
        tensor::ops::softmax_inplace(&mut a);
        prop_assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let mut b: Vec<f32> = x.data().iter().map(|v| v + shift).collect();
        tensor::ops::softmax_inplace(&mut b);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    // ---------------- perfmodel ----------------

    /// Algorithm 4 finds the exact minimum of arbitrary V-sequences.
    #[test]
    fn vsearch_matches_exhaustive_on_random_vees(
        n in 2usize..200, pivot_frac in 0.0f64..1.0, slope_down in 0.1f64..10.0,
        slope_up in 0.1f64..10.0
    ) {
        let pivot = 1 + ((n - 1) as f64 * pivot_frac) as usize;
        let f = |x: usize| {
            if x <= pivot {
                slope_down * (pivot - x) as f64
            } else {
                slope_up * (x - pivot) as f64
            }
        };
        let (argmin, val) = perfmodel::vsearch::find_min_vsequence(1, n, f);
        prop_assert_eq!(argmin, pivot.min(n));
        prop_assert!(val <= f(1) && val <= f(n));
    }

    /// The simulated local-tree move time is monotone non-increasing in
    /// worker count (more overlap capacity can't hurt in virtual time).
    #[test]
    fn sim_local_cpu_monotone_in_workers(n in 1usize..64) {
        let base = SimParams::paper_like(1);
        let p1 = SimParams { workers: n, playouts: 200, ..base };
        let p2 = SimParams { workers: n + 1, playouts: 200, ..base };
        let t1 = perfmodel::sim::simulate_local_cpu(&p1).move_ns;
        let t2 = perfmodel::sim::simulate_local_cpu(&p2).move_ns;
        prop_assert!(t2 <= t1 * 1.0001, "N={n}: {t1} -> {t2}");
    }

    // ---------------- replay ----------------

    /// The replay buffer never exceeds capacity and batches always have
    /// the requested size regardless of push/sample interleaving.
    #[test]
    fn replay_buffer_bounds(
        capacity in 1usize..64, pushes in 0usize..200, k in 1usize..16, seed in 0u64..1_000
    ) {
        use rand::SeedableRng;
        let mut buf = ReplayBuffer::new(capacity, 4, 3);
        for i in 0..pushes {
            buf.push(Sample {
                state: vec![i as f32; 4],
                pi: vec![1.0 / 3.0; 3],
                z: 0.0,
            });
            prop_assert!(buf.len() <= capacity);
        }
        if !buf.is_empty() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (s, p, z) = buf.sample_batch(&mut rng, k);
            prop_assert_eq!(s.dims(), &[k, 4]);
            prop_assert_eq!(p.dims(), &[k, 3]);
            prop_assert_eq!(z.dims(), &[k, 1]);
        }
    }
}

proptest! {
    // Searches are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial search bookkeeping holds for arbitrary budgets: playouts
    /// exact, root-child visits = playouts - 1, probs normalized.
    #[test]
    fn serial_search_bookkeeping(playouts in 1usize..300) {
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let cfg = MctsConfig { playouts, workers: 1, ..Default::default() };
        let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::Serial, cfg, eval);
        let r = s.search(&TicTacToe::new());
        prop_assert_eq!(r.stats.playouts as usize, playouts);
        prop_assert_eq!(r.visits.iter().sum::<u32>() as usize, playouts - 1);
        if playouts > 1 {
            prop_assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    /// The same invariants hold under shared-tree concurrency for random
    /// worker counts.
    #[test]
    fn shared_search_bookkeeping(playouts in 2usize..200, workers in 1usize..6) {
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let cfg = MctsConfig { playouts, workers, ..Default::default() };
        let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::SharedTree, cfg, eval);
        let r = s.search(&TicTacToe::new());
        prop_assert_eq!(r.stats.playouts as usize, playouts);
        prop_assert_eq!(r.visits.iter().sum::<u32>() as usize, playouts - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- symmetry group ----------------

    /// Every symmetry is a bijection on cells: applying it to all cells of
    /// an n×n board yields a permutation (no collisions).
    #[test]
    fn symmetry_is_a_permutation(n in 2usize..10, which in 0usize..8) {
        let s = Symmetry::ALL[which];
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            for c in 0..n {
                prop_assert!(seen.insert(s.apply_cell(n, r, c)));
            }
        }
        prop_assert_eq!(seen.len(), n * n);
    }

    /// inverse ∘ apply = identity for every element, cell, and board size.
    #[test]
    fn symmetry_inverse_roundtrip(n in 2usize..12, which in 0usize..8, r in 0usize..12, c in 0usize..12) {
        let (r, c) = (r % n, c % n);
        let s = Symmetry::ALL[which];
        let (tr, tc) = s.apply_cell(n, r, c);
        prop_assert_eq!(s.inverse().apply_cell(n, tr, tc), (r, c));
    }

    /// Transforming planes twice with s then s⁻¹ restores the original.
    #[test]
    fn plane_transform_roundtrip(n in 2usize..8, which in 0usize..8, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let planes: Vec<f32> = (0..2 * n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let s = Symmetry::ALL[which];
        let fwd = s.transform_planes(&planes, 2, n);
        let back = s.inverse().transform_planes(&fwd, 2, n);
        prop_assert_eq!(back, planes);
    }

    /// Policy permutation preserves total probability mass exactly
    /// (reordering, not rescaling), including a trailing pass entry.
    #[test]
    fn policy_permutation_preserves_mass(n in 2usize..8, which in 0usize..8, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut policy: Vec<f32> = (0..n * n + 1).map(|_| rng.gen_range(0.0..1.0)).collect();
        let total: f32 = policy.iter().sum();
        for p in &mut policy { *p /= total; }
        let s = Symmetry::ALL[which];
        let out = s.permute_policy(&policy, n);
        let mut a = policy.clone();
        let mut b = out.clone();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b, "permutation must preserve the multiset");
        prop_assert_eq!(out[n * n], policy[n * n], "pass entry fixed");
    }

    // ---------------- Othello rules ----------------

    /// Random legal play on 4×4 and 6×6 Othello always terminates, total
    /// stones never exceed the board, and the final counts justify the
    /// declared winner.
    #[test]
    fn othello_random_play_terminates_consistently(seed in 0u64..2000, big in proptest::bool::ANY) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = if big { 6 } else { 4 };
        let mut g = Othello::new(n);
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let acts = g.legal_actions();
            prop_assert!(!acts.is_empty(), "ongoing game must offer a move");
            let a = acts[rng.gen_range(0..acts.len())];
            prop_assert!(g.is_legal(a));
            g.apply(a);
            moves += 1;
            prop_assert!(moves <= 4 * n * n, "game too long");
            let (b, w) = g.counts();
            prop_assert!(b + w <= n * n);
        }
        let (b, w) = g.counts();
        match g.status() {
            Status::Won(Player::Black) => prop_assert!(b > w),
            Status::Won(Player::White) => prop_assert!(w > b),
            Status::Draw => prop_assert_eq!(b, w),
            Status::Ongoing => unreachable!(),
        }
    }

    /// Placements strictly grow the mover's stone count by at least 2
    /// (the placed stone plus ≥1 flip); passes change nothing.
    #[test]
    fn othello_moves_flip_at_least_one(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Othello::new(4);
        for _ in 0..12 {
            if g.status() != Status::Ongoing { break; }
            let acts = g.legal_actions();
            let a = acts[rng.gen_range(0..acts.len())];
            let mover = g.to_move();
            let (b0, w0) = g.counts();
            let before = if mover == Player::Black { b0 } else { w0 };
            let pass = a == g.pass_action();
            g.apply(a);
            let (b1, w1) = g.counts();
            let after = if mover == Player::Black { b1 } else { w1 };
            if pass {
                prop_assert_eq!((b1, w1), (b0, w0), "pass must not move stones");
            } else {
                prop_assert!(after >= before + 2, "placement must flip: {} -> {}", before, after);
                prop_assert_eq!(b1 + w1, b0 + w0 + 1, "exactly one stone added");
            }
        }
    }

    // ---------------- Elo model ----------------

    /// Elo updates are zero-sum and expected scores are consistent:
    /// E(i,j) + E(j,i) = 1 for arbitrary rating histories.
    #[test]
    fn elo_updates_zero_sum(results in proptest::collection::vec((0usize..4, 0usize..4, 0.0f64..=1.0), 1..30)) {
        let mut t = EloTracker::new(4, 24.0);
        for (i, j, s) in results {
            if i == j { continue; }
            t.record(i, j, s);
            let total: f64 = (0..4).map(|k| t.rating(k)).sum();
            prop_assert!((total - 6000.0).abs() < 1e-6, "total rating drifted: {}", total);
            prop_assert!((t.expected(i, j) + t.expected(j, i) - 1.0).abs() < 1e-9);
        }
    }

    // ---------------- gradient clipping ----------------

    /// After clipping, the global norm never exceeds max_norm, and
    /// direction is preserved (all ratios equal).
    #[test]
    fn clip_grad_norm_bounds_norm(vals in proptest::collection::vec(-100.0f32..100.0, 2..20), max_norm in 0.1f32..10.0) {
        use tensor::Tensor;
        let mut g = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let before = nn::optim::clip_grad_norm(&mut [&mut g], max_norm);
        let after: f32 = g.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!(after <= max_norm * 1.001, "norm {} > {}", after, max_norm);
        if before <= max_norm {
            prop_assert_eq!(g.data(), &vals[..], "small gradients untouched");
        }
    }

    /// Tree reuse: the extracted subtree of the best move always passes
    /// the arena invariants checker.
    #[test]
    fn extracted_subtrees_stay_consistent(playouts in 8usize..120) {
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let cfg = MctsConfig { playouts, ..Default::default() };
        let mut s = mcts::reuse::ReusableSearch::new(cfg, eval);
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        s.advance(a);
        g.apply(a);
        // A second search from the inherited tree must keep its budget.
        let r2 = s.search(&g);
        prop_assert_eq!(r2.stats.playouts as usize, playouts);
    }
}
