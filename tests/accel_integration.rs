//! Accelerator-offloaded inference (§3.3) integrated with the search
//! schemes: batching must change *when* evaluations happen, never *what*
//! they compute, and must never deadlock the search.

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tiny_net() -> Arc<PolicyValueNet> {
    Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 13))
}

fn device(net: &Arc<PolicyValueNet>, batch: usize) -> Arc<Device> {
    Arc::new(Device::new(Arc::clone(net), DeviceConfig::instant(batch)))
}

#[test]
fn batched_evaluator_matches_cpu_evaluator_outputs() {
    let net = tiny_net();
    let cpu = NnEvaluator::new(Arc::clone(&net));
    let acc = AccelEvaluator::new(device(&net, 4));
    let mut g = TicTacToe::new();
    g.apply(4);
    let mut buf = vec![0.0f32; g.encoded_len()];
    g.encode(&mut buf);
    let oc = cpu.evaluate_one(&buf);
    let (pa, va) = acc.evaluate(&buf);
    for (a, b) in pa.iter().zip(&oc.priors) {
        assert!((a - b).abs() < 1e-5, "priors diverge: {a} vs {b}");
    }
    assert!((va - oc.value).abs() < 1e-5);
}

#[test]
fn local_tree_with_batched_device_completes() {
    // The paper's CPU-GPU local-tree configuration: master + worker pool,
    // inference flowing through the batching queue.
    let net = tiny_net();
    for batch in [1usize, 2, 4] {
        let eval = Arc::new(AccelEvaluator::new(device(&net, batch)));
        let cfg = MctsConfig {
            playouts: 120,
            workers: 4,
            ..Default::default()
        };
        let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::LocalTree, cfg, eval);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 120, "batch={batch}");
    }
}

#[test]
fn shared_tree_with_batched_device_completes() {
    // Shared tree: each worker blocks inside the device queue; the flush
    // timeout guarantees progress even when fewer than `batch` requests
    // are outstanding.
    let net = tiny_net();
    let eval = Arc::new(AccelEvaluator::new(device(&net, 8)));
    let cfg = MctsConfig {
        playouts: 100,
        workers: 4,
        ..Default::default()
    };
    let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::SharedTree, cfg, eval);
    let r = s.search(&TicTacToe::new());
    assert_eq!(r.stats.playouts, 100);
}

#[test]
fn oversized_batch_threshold_cannot_deadlock() {
    // Threshold far above what the search can ever enqueue at once.
    let net = tiny_net();
    let dev = Arc::new(Device::new(
        Arc::clone(&net),
        DeviceConfig {
            batch_size: 64,
            flush_timeout: Duration::from_micros(300),
            latency: LatencyModel::zero(),
            inject_transfer_latency: false,
            streams: 1,
        },
    ));
    let eval = Arc::new(AccelEvaluator::new(dev));
    let cfg = MctsConfig {
        playouts: 50,
        workers: 2,
        ..Default::default()
    };
    let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::LocalTree, cfg, eval);
    let r = s.search(&TicTacToe::new());
    assert_eq!(r.stats.playouts, 50);
}

#[test]
fn device_actually_batches_under_parallel_search() {
    let net = tiny_net();
    let dev = device(&net, 4);
    let eval = Arc::new(AccelEvaluator::new(Arc::clone(&dev)));
    let cfg = MctsConfig {
        playouts: 200,
        workers: 4,
        ..Default::default()
    };
    let mut s = AdaptiveSearch::<TicTacToe>::new(Scheme::LocalTree, cfg, eval);
    let _ = s.search(&TicTacToe::new());
    let stats = dev.stats();
    assert!(stats.samples >= 100, "samples {}", stats.samples);
    assert!(
        stats.batches < stats.samples,
        "expected some batching: {} batches / {} samples",
        stats.batches,
        stats.samples
    );
    assert!(stats.max_batch >= 2);
}

#[test]
fn search_results_with_device_match_cpu_path() {
    // Same network, same (deterministic) local-tree search with one
    // worker: CPU evaluator and batch-1 device evaluator must agree.
    let net = tiny_net();
    let cfg = MctsConfig {
        playouts: 100,
        workers: 1,
        ..Default::default()
    };
    let mut cpu_search = AdaptiveSearch::<TicTacToe>::new(
        Scheme::LocalTree,
        cfg,
        Arc::new(NnEvaluator::new(Arc::clone(&net))),
    );
    let mut dev_search = AdaptiveSearch::<TicTacToe>::new(
        Scheme::LocalTree,
        cfg,
        Arc::new(AccelEvaluator::new(device(&net, 1))),
    );
    let g = TicTacToe::new();
    let rc = cpu_search.search(&g);
    let rd = dev_search.search(&g);
    assert_eq!(rc.visits, rd.visits, "device path altered the search");
}
