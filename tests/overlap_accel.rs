//! Integration of the overlapped trainer with the accelerator device —
//! the full CPU-GPU configuration of §5.4: search produces samples with
//! device-batched inference while the trainer consumes them on its own
//! thread.

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;
use train::overlap::{run_overlapped, SnapshotEvaluatorFactory};

#[test]
fn overlapped_trainer_with_device_inference() {
    let game = TicTacToe::new();
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 61);
    let mut cfg = PipelineConfig::smoke(Scheme::LocalTree, 2);
    cfg.episodes = 2;
    cfg.mcts = MctsConfig {
        playouts: 24,
        workers: 2,
        ..Default::default()
    };

    // Each snapshot gets its own device, as a real system would re-upload
    // refreshed weights to the accelerator.
    let factory: SnapshotEvaluatorFactory = Box::new(|snap| {
        let device = Arc::new(Device::new(snap, DeviceConfig::instant(2)));
        Arc::new(AccelEvaluator::new(device))
    });

    let (trained, report) = run_overlapped(&game, net.clone(), cfg, Some(factory));
    assert!(report.samples >= 10, "two episodes of moves");
    assert!(report.sgd_steps > 0, "trainer consumed samples");
    assert!(report.final_loss.unwrap().is_finite());

    // The published snapshots must have diverged from the initial weights.
    let x = tensor::Tensor::ones(&[1, 4, 3, 3]);
    assert_ne!(net.forward(&x).0.data(), trained.forward(&x).0.data());
}

#[test]
fn overlapped_loss_curve_is_monotone_in_time() {
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 62);
    let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
    cfg.episodes = 3;
    let (_, report) = run_overlapped(&TicTacToe::new(), net, cfg, None);
    // Timestamps are recorded on the trainer thread and must be ordered.
    let curve = &report.loss_curve;
    assert!(curve.len() >= 2);
    for w in curve.windows(2) {
        assert!(w[1].t_sec >= w[0].t_sec, "loss points out of order");
    }
}

#[test]
fn staleness_accounting_is_bounded_by_episodes() {
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 63);
    let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
    cfg.episodes = 5;
    let (_, report) = run_overlapped(&TicTacToe::new(), net, cfg, None);
    assert!(
        report.stale_searches <= 5,
        "stale count {} cannot exceed episodes",
        report.stale_searches
    );
}

#[test]
fn time_budgeted_search_inside_episode() {
    // A wall-clock move budget composes with the pipeline: episodes finish
    // and samples are produced even with a tiny budget.
    use mcts::serial::SerialSearch;
    use train::play_episode;
    let game = TicTacToe::new();
    let cfg = MctsConfig {
        playouts: 100_000, // absurd budget; the clock must cut it
        time_budget_ms: Some(5),
        ..Default::default()
    };
    let mut s = SerialSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&game)));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let t0 = std::time::Instant::now();
    let out = play_episode(&game, &mut s, 2, 20, &mut rng);
    assert!(out.status.is_terminal());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "budget must bound the episode"
    );
    // Each move ran at most 5 ms of playouts — far fewer than 100k.
    assert!(out.search_stats.playouts < 100_000 * out.moves as u64);
}
