//! The adaptive-parallelism workflow end to end: profiled costs → model
//! prediction → scheme choice → instantiated search — including the case
//! the paper is built around, where the best scheme flips with `N`.

use adaptive_dnn_mcts::prelude::*;
use perfmodel::profiler::ProfiledCosts;
use std::sync::Arc;
use std::time::Duration;

fn costs(t_dnn_ns: f64, t_in_tree_ns: f64) -> ProfiledCosts {
    ProfiledCosts {
        t_select_ns: t_in_tree_ns * 2.0 / 3.0,
        t_backup_ns: t_in_tree_ns / 3.0,
        t_shared_access_ns: 350.0,
        t_dnn_cpu_ns: t_dnn_ns,
    }
}

#[test]
fn scheme_choice_flips_with_worker_count() {
    // DNN 1.2 ms, in-tree 9 µs (paper-like magnitudes): local wins while
    // N·(in-tree) < DNN; shared wins past the crossover.
    let configurator = DesignConfigurator::new(costs(1_200_000.0, 9_000.0), None);
    let small_n = configurator.configure(Platform::CpuOnly, 4);
    let large_n = configurator.configure(Platform::CpuOnly, 512);
    assert_eq!(small_n.scheme, Scheme::LocalTree, "DNN-bound regime");
    assert_eq!(large_n.scheme, Scheme::SharedTree, "in-tree-bound regime");
}

#[test]
fn chosen_scheme_is_instantiable_and_searches() {
    let configurator = DesignConfigurator::new(costs(500_000.0, 5_000.0), None);
    for n in [1usize, 2, 8] {
        let choice = configurator.configure(Platform::CpuOnly, n);
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let cfg = MctsConfig {
            playouts: 50,
            workers: n,
            ..Default::default()
        };
        let mut s = AdaptiveSearch::<TicTacToe>::new(choice.scheme, cfg, eval);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 50);
    }
}

#[test]
fn adaptive_choice_wins_against_misconfigured_scheme_in_real_time() {
    // Recreate the paper's core claim at host scale: with an expensive
    // evaluator (5 ms) the model must pick a tree-parallel scheme over
    // serial, and a real timed run must confirm the selected parallel
    // scheme beats the 1-worker baseline by a wide margin (evaluation
    // overlap is real even on one core because the delayed evaluator
    // sleeps rather than computes).
    let configurator = DesignConfigurator::new(costs(5_000_000.0, 3_000.0), None);
    let choice = configurator.configure(Platform::CpuOnly, 4);
    assert_eq!(choice.scheme, Scheme::LocalTree);

    let game = TicTacToe::new();
    let run = |scheme: Scheme, workers: usize| -> f64 {
        let eval = Arc::new(mcts::evaluator::DelayedEvaluator::new(
            UniformEvaluator::for_game(&game),
            Duration::from_millis(5),
        ));
        let cfg = MctsConfig {
            playouts: 32,
            workers,
            ..Default::default()
        };
        let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg, eval);
        let t = std::time::Instant::now();
        let _ = s.search(&game);
        t.elapsed().as_secs_f64()
    };
    let parallel = run(choice.scheme, 4);
    let serial = run(Scheme::Serial, 1);
    assert!(
        parallel < 0.6 * serial,
        "parallel scheme should overlap evaluations: {parallel:.3}s vs serial {serial:.3}s"
    );
}

#[test]
fn cpu_gpu_configuration_tunes_batch_with_log_probes() {
    let accel = LatencyModel::a6000_like(4 * 15 * 15 * 4);
    let configurator = DesignConfigurator::new(costs(1_200_000.0, 9_000.0), Some(accel));
    for n in [16usize, 32, 64] {
        let choice = configurator.configure(Platform::CpuGpu, n);
        let b = choice.batch.expect("CPU-GPU choice must include a batch");
        assert!((1..=n).contains(&b));
        let log2n = (n as f64).log2().ceil() as usize;
        assert!(
            choice.tuning_evals <= 2 * log2n + 2,
            "N={n}: {} probes exceeds O(log N)",
            choice.tuning_evals
        );
    }
}

#[test]
fn simulated_speedup_within_paper_band() {
    // With paper-like parameters the simulated adaptive gain over the
    // losing fixed scheme lands in the paper's band (up to 1.5× CPU-only).
    // (The literal closed forms of Eqs. 3/5 are intentionally simpler and
    // predict smaller margins; the timeline simulator is the figure
    // source — see EXPERIMENTS.md.)
    let mut best: f64 = 1.0;
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let p = SimParams::paper_like(n);
        let shared = perfmodel::sim::simulate_shared_cpu(&p).iteration_ns;
        let local = perfmodel::sim::simulate_local_cpu(&p).iteration_ns;
        best = best.max(shared.max(local) / shared.min(local));
    }
    assert!(
        best > 1.2 && best < 2.5,
        "adaptive speedup {best:.2} outside the paper's band"
    );
}
