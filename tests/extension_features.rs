//! Cross-crate integration tests for the extension features: Othello with
//! pass actions flowing through every search scheme, the residual tower
//! served by the accelerator device, tree reuse over a full game,
//! speculative search with a real network, and symmetry-augmented
//! training on a square board.

use adaptive_dnn_mcts::prelude::*;
use mcts::reuse::ReusableSearch;
use mcts::serial::SerialSearch;
use mcts::speculative::SpeculativeSearch;
use std::sync::Arc;

// ---------------- Othello through the search schemes ----------------

#[test]
fn every_scheme_searches_othello() {
    let game = Othello::new(4);
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let cfg = MctsConfig {
            playouts: 48,
            workers: 2,
            ..Default::default()
        };
        let eval = Arc::new(UniformEvaluator::for_game(&game));
        let mut search = scheme.build::<Othello>(cfg, eval);
        let r = search.search(&game);
        assert_eq!(r.stats.playouts, 48, "{scheme}: playout budget");
        let best = r.best_action();
        assert!(game.is_legal(best), "{scheme}: best move must be legal");
    }
}

#[test]
fn othello_selfplay_episode_handles_passes() {
    use train::play_episode;
    let game = Othello::new(4);
    let cfg = MctsConfig {
        playouts: 32,
        ..Default::default()
    };
    let mut search = SerialSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&game)));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let out = play_episode(&game, &mut search, 2, 64, &mut rng);
    assert!(out.status.is_terminal(), "4x4 Othello must finish");
    assert_eq!(out.samples.len(), out.moves);
    // Every stored policy is a distribution over the 17-action space.
    for s in &out.samples {
        assert_eq!(s.pi.len(), 17);
        let sum: f32 = s.pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}

#[test]
fn othello_pipeline_with_augmentation_trains() {
    let game = Othello::new(4);
    let (c, h, w) = game.encoded_shape();
    let net = PolicyValueNet::new(NetConfig::tiny(c, h, w, game.action_space()), 31);
    let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
    cfg.episodes = 1;
    cfg.augment_symmetries = true;
    cfg.max_moves = 40;
    let mut p = Pipeline::new(game, net, cfg);
    let report = p.run();
    assert!(report.samples > 0);
    assert_eq!(p.replay().total_pushed(), 8 * report.samples);
    assert!(!report.loss_curve.is_empty(), "training must run");
}

// ---------------- residual tower on the device ----------------

#[test]
fn resnet_device_drives_search() {
    let game = TicTacToe::new();
    let (c, h, w) = game.encoded_shape();
    let tower = Arc::new(ResNetPolicyValueNet::new(
        ResNetConfig::tiny(c, h, w, game.action_space()),
        13,
    ));
    let device = Arc::new(Device::with_model(
        tower as Arc<dyn BatchModel>,
        DeviceConfig::instant(2),
    ));
    let cfg = MctsConfig {
        playouts: 64,
        workers: 2,
        ..Default::default()
    };
    let eval = Arc::new(AccelEvaluator::new(Arc::clone(&device)));
    let mut search = Scheme::LocalTree.build::<TicTacToe>(cfg, eval);
    let r = search.search(&game);
    assert_eq!(r.stats.playouts, 64);
    assert!(
        device.stats().samples > 0,
        "device actually served requests"
    );
}

// ---------------- tree reuse over a whole game ----------------

#[test]
fn reuse_plays_full_connect4_game() {
    let game = Connect4::new();
    let cfg = MctsConfig {
        playouts: 48,
        ..Default::default()
    };
    let mut s = ReusableSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&game)));
    let mut g = game;
    let mut moves = 0;
    let mut warm_moves = 0;
    while g.status() == Status::Ongoing && moves < 42 {
        let r = s.search(&g);
        if s.inherited_nodes > 0 {
            warm_moves += 1;
        }
        let a = r.best_action();
        assert!(g.is_legal(a));
        s.advance(a);
        g.apply(a);
        moves += 1;
    }
    assert!(g.status().is_terminal() || moves == 42);
    assert!(warm_moves > 0, "reuse must kick in after the first move");
}

// ---------------- speculative search with a real network ----------------

#[test]
fn speculative_with_network_main_model_stays_consistent() {
    let game = TicTacToe::new();
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 17));
    let cfg = MctsConfig {
        playouts: 80,
        ..Default::default()
    };
    // Main = network, speculative = uniform: corrections are exercised
    // with real (nonzero) deltas.
    let main = Arc::new(NnEvaluator::new(Arc::clone(&net)));
    let spec = Arc::new(UniformEvaluator::for_game(&game));
    let mut s = SpeculativeSearch::new(cfg, main, spec, 4);
    let r = SearchScheme::<TicTacToe>::search(&mut s, &game);
    assert_eq!(r.stats.playouts, 80);
    assert!(s.corrections > 0);
    assert!(
        s.correction_magnitude > 0.0,
        "network disagrees with uniform"
    );
    let best = r.best_action();
    assert!(game.is_legal(best));
}

// ---------------- arena + Elo across search budgets ----------------

#[test]
fn deeper_search_earns_higher_elo() {
    let game = TicTacToe::new();
    let cfg_strong = MctsConfig {
        playouts: 128,
        ..Default::default()
    };
    let cfg_weak = MctsConfig {
        playouts: 2,
        ..Default::default()
    };
    let mut strong = SerialSearch::new(cfg_strong, Arc::new(UniformEvaluator::for_game(&game)));
    let mut weak = SerialSearch::new(cfg_weak, Arc::new(UniformEvaluator::for_game(&game)));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let result = play_match(&game, &mut strong, &mut weak, 6, 0.5, 2, 20, &mut rng);

    let mut league = EloTracker::new(2, 32.0);
    league.record(0, 1, result.score_a());
    assert!(
        league.rating(0) >= league.rating(1),
        "128-playout search must not rate below 2-playout search: {result:?}"
    );
}

// ---------------- checkpointing the trained pipeline net ----------------

#[test]
fn pipeline_network_checkpoint_roundtrip() {
    let mut p = Pipeline::new(
        TicTacToe::new(),
        PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 23),
        PipelineConfig::smoke(Scheme::Serial, 1),
    );
    p.run();
    let bytes = nn::serialize::save_params(p.net());
    let mut restored = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 999);
    nn::serialize::load_params(&mut restored, &bytes).unwrap();
    let x = tensor::Tensor::ones(&[1, 4, 3, 3]);
    assert_eq!(p.net().forward(&x).0.data(), restored.forward(&x).0.data());
    assert_eq!(p.net().forward(&x).1.data(), restored.forward(&x).1.data());
}
