//! End-to-end training-pipeline integration: data collection, SGD, loss
//! trends, checkpointing, and parallel-scheme interchangeability inside
//! the pipeline (Algorithm 1 with both branches of the `flag_local`
//! dispatch).

use adaptive_dnn_mcts::prelude::*;
use nn::serialize::{load_params, save_params};

fn base_config(scheme: Scheme, workers: usize) -> PipelineConfig {
    PipelineConfig {
        episodes: 4,
        sgd_iters: 8,
        batch_size: 24,
        lr: 3e-3,
        momentum: 0.9,
        weight_decay: 1e-4,
        replay_capacity: 2048,
        temperature_moves: 4,
        max_moves: 20,
        scheme,
        mcts: MctsConfig {
            playouts: 40,
            workers,
            ..Default::default()
        },
        seed: 3,
        lr_schedule: None,
        overlapped_training: false,
        augment_symmetries: false,
    }
}

#[test]
fn pipeline_trains_with_every_tree_parallel_scheme() {
    for (scheme, workers) in [
        (Scheme::Serial, 1usize),
        (Scheme::LocalTree, 2),
        (Scheme::SharedTree, 2),
    ] {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 21);
        let mut p = Pipeline::new(TicTacToe::new(), net, base_config(scheme, workers));
        let report = p.run();
        assert!(report.samples >= 20, "{scheme}: samples {}", report.samples);
        assert!(
            !report.loss_curve.is_empty(),
            "{scheme}: no SGD updates happened"
        );
        assert!(report.samples_per_sec > 0.0);
        assert!(report.final_loss.unwrap().is_finite());
    }
}

#[test]
fn loss_trends_down_with_more_training() {
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 22);
    let mut cfg = base_config(Scheme::Serial, 1);
    cfg.episodes = 10;
    cfg.sgd_iters = 15;
    let mut p = Pipeline::new(TicTacToe::new(), net, cfg);
    let report = p.run();
    let curve = &report.loss_curve;
    assert!(curve.len() >= 40);
    let head: f32 = curve[..8].iter().map(|p| p.total).sum::<f32>() / 8.0;
    let tail: f32 = curve[curve.len() - 8..]
        .iter()
        .map(|p| p.total)
        .sum::<f32>()
        / 8.0;
    assert!(tail < head, "loss did not fall: {head:.4} -> {tail:.4}");
}

#[test]
fn trained_network_checkpoint_roundtrips_through_pipeline() {
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 23);
    let mut p = Pipeline::new(TicTacToe::new(), net, base_config(Scheme::Serial, 1));
    p.run();
    // Snapshot the trained weights, load into a fresh net, compare.
    let bytes = save_params(p.net());
    let mut restored = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 999);
    load_params(&mut restored, &bytes).expect("load trained checkpoint");
    let x = tensor::Tensor::full(&[1, 4, 3, 3], 0.4);
    assert_eq!(
        p.net().forward(&x).0.data(),
        restored.forward(&x).0.data(),
        "restored network diverges from trained one"
    );
}

#[test]
fn replay_labels_are_consistent_with_outcomes() {
    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 24);
    let mut p = Pipeline::new(TicTacToe::new(), net, base_config(Scheme::Serial, 1));
    p.run();
    for i in 0..p.replay().len() {
        let s = p.replay().get(i);
        assert!((-1.0..=1.0).contains(&s.z));
        let pi_sum: f32 = s.pi.iter().sum();
        assert!((pi_sum - 1.0).abs() < 1e-3 || pi_sum == 0.0);
        assert_eq!(s.state.len(), 36);
    }
}

#[test]
fn training_improves_play_against_uniform_evaluator() {
    // A modestly-trained net should beat (or at least not lose to) a
    // uniform-prior searcher of the same playout budget more often than
    // it loses, on TicTacToe with greedy play. This is a weak but real
    // signal that the full loop learns.
    use rand::SeedableRng;
    use std::sync::Arc;

    let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 25);
    let mut cfg = base_config(Scheme::Serial, 1);
    cfg.episodes = 12;
    cfg.sgd_iters = 20;
    cfg.mcts.playouts = 64;
    let mut p = Pipeline::new(TicTacToe::new(), net, cfg);
    p.run();
    let trained = Arc::new(p.net().clone());

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut trained_score = 0i32;
    for round in 0..6 {
        let trained_plays_black = round % 2 == 0;
        let mut g = TicTacToe::new();
        let scfg = MctsConfig {
            playouts: 32,
            workers: 1,
            ..Default::default()
        };
        let mut a = AdaptiveSearch::<TicTacToe>::new(
            Scheme::Serial,
            scfg,
            Arc::new(NnEvaluator::new(Arc::clone(&trained))),
        );
        let mut b = AdaptiveSearch::<TicTacToe>::new(
            Scheme::Serial,
            scfg,
            Arc::new(UniformEvaluator::for_game(&g)),
        );
        while g.status() == Status::Ongoing {
            let trained_turn = (g.to_move() == Player::Black) == trained_plays_black;
            let r = if trained_turn {
                a.search(&g)
            } else {
                b.search(&g)
            };
            let action = r.sample_action(0.3, &mut rng);
            g.apply(action);
        }
        let trained_player = if trained_plays_black {
            Player::Black
        } else {
            Player::White
        };
        trained_score += g.status().reward_for(trained_player) as i32;
    }
    assert!(
        trained_score >= -2,
        "trained net lost badly to uniform search: score {trained_score}"
    );
}
