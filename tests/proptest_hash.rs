//! Cross-game property tests for [`games::Game::hash`] — the key the
//! evaluation cache ([`mcts::EvalCache`]) and the per-tree transposition
//! index stand on. For every board game the hash must identify exactly
//! (stone layout, side to move):
//!
//! * **No collisions**: positions with different stones or a different
//!   mover never share a hash across thousands of random playouts.
//! * **Side-to-move sensitivity**: every ply flips the mover, so all
//!   prefixes of a game hash distinctly — a position is never confused
//!   with itself one ply earlier (same-ish stones, other player).
//! * **Transposition invariance**: permuted move orders reaching the
//!   same position hash identically (what makes reuse possible at all).

use games::connect4::Connect4;
use games::gomoku::Gomoku;
use games::hex::Hex;
use games::tictactoe::TicTacToe;
use games::{Action, Game, Player, Status};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Everything a positional hash must identify, reconstructed from the
/// move list the driver itself played: which player owns each occupied
/// action-cell (for Connect-4, each (column, level) cell) plus the side
/// to move. Move-order metadata such as `last_move` is deliberately
/// excluded — hashes are positional.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Canonical {
    stones: Vec<(u16, u16, Player)>,
    to_move: Player,
}

fn canonical_from_moves(moves: &[Action], stacked: bool, final_to_move: Player) -> Canonical {
    let mut heights: HashMap<u16, u16> = HashMap::new();
    let mut stones: Vec<(u16, u16, Player)> = Vec::with_capacity(moves.len());
    let mut mover = Player::Black;
    for &a in moves {
        let level = if stacked {
            let h = heights.entry(a).or_insert(0);
            *h += 1;
            *h
        } else {
            0
        };
        stones.push((a, level, mover));
        mover = mover.other();
    }
    stones.sort_unstable_by_key(|&(a, l, p)| (a, l, p.index()));
    Canonical {
        stones,
        to_move: final_to_move,
    }
}

/// Random playout recording (hash, canonical) at every ply; asserts
/// prefix-distinctness along the way.
fn playout<G: Game>(
    mut g: G,
    stacked: bool,
    seed: u64,
    book: &mut HashMap<u64, Canonical>,
) -> Result<(), String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut moves: Vec<Action> = Vec::new();
    let mut prefix_hashes = std::collections::HashSet::new();
    prop_assert!(prefix_hashes.insert(g.hash()));
    while g.status() == Status::Ongoing {
        let acts = g.legal_actions();
        let &a = acts.choose(&mut rng).unwrap();
        g.apply(a);
        moves.push(a);
        prop_assert!(
            prefix_hashes.insert(g.hash()),
            "side-to-move/prefix ambiguity: ply {} repeats a hash",
            moves.len()
        );
        let key = canonical_from_moves(&moves, stacked, g.to_move());
        if let Some(prev) = book.insert(g.hash(), key.clone()) {
            prop_assert_eq!(prev, key, "cross-playout hash collision");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same-hash positions are the same position, for every game, over
    /// many independent playouts per case. Hash spaces are per game
    /// type (the cache keys per backend), so each game gets its own
    /// collision book.
    #[test]
    fn hashes_identify_positions_across_games(seed in 0u64..2_000) {
        let (mut ttt, mut c4) = (HashMap::new(), HashMap::new());
        let (mut hex, mut gomoku) = (HashMap::new(), HashMap::new());
        for i in 0..4u64 {
            let s = seed * 4 + i;
            playout(TicTacToe::new(), false, s, &mut ttt)?;
            playout(Connect4::new(), true, s, &mut c4)?;
            playout(Hex::new(4), false, s, &mut hex)?;
            playout(Gomoku::new(5, 4), false, s, &mut gomoku)?;
        }
    }

    /// A random pair of transposed openings — X's first and second
    /// stones placed in either order around the same O reply — reaches
    /// the same position and must reach the same hash.
    #[test]
    fn transposed_openings_share_a_hash(x1 in 0u16..9, o in 0u16..9, x2 in 0u16..9) {
        prop_assume!(x1 != o && x2 != o && x1 != x2);
        let seq_a = [x1, o, x2];
        let seq_b = [x2, o, x1];
        let run = |seq: [u16; 3]| {
            let mut g = TicTacToe::new();
            for a in seq {
                if g.status() != Status::Ongoing {
                    return None;
                }
                g.apply(a);
            }
            Some(g.hash())
        };
        if let (Some(ha), Some(hb)) = (run(seq_a), run(seq_b)) {
            prop_assert_eq!(ha, hb, "transposed orders must agree");
        }
    }
}
