//! Cross-scheme integration tests: every parallel scheme must implement
//! the *same search algorithm* — differing in execution, not in outcome
//! quality. (§5.5 argues parallelism changes sample order but not the
//! converged behaviour.)

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;

fn forced_win_position() -> TicTacToe {
    // X: 0,1 — O: 3,4. X to move; 2 wins immediately.
    let mut g = TicTacToe::new();
    for a in [0u16, 3, 1, 4] {
        g.apply(a);
    }
    g
}

fn cfg(playouts: usize, workers: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        workers,
        ..Default::default()
    }
}

#[test]
fn all_schemes_find_the_forced_win() {
    let g = forced_win_position();
    for scheme in Scheme::ALL {
        for workers in [1usize, 2, 4] {
            if scheme == Scheme::Serial && workers > 1 {
                continue;
            }
            let eval = Arc::new(UniformEvaluator::for_game(&g));
            let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg(400, workers), eval);
            let r = s.search(&g);
            assert_eq!(
                r.best_action(),
                2,
                "{scheme} with {workers} workers missed the win: {:?}",
                r.visits
            );
        }
    }
}

#[test]
fn parallel_visit_distributions_close_to_serial() {
    // With many playouts, the root visit distributions of the parallel
    // schemes must be statistically close to the serial reference (the
    // obsolete-information effect perturbs but does not distort search).
    let g = TicTacToe::new();
    let playouts = 1200;
    let eval = Arc::new(UniformEvaluator::for_game(&g));
    let mut serial = AdaptiveSearch::<TicTacToe>::new(
        Scheme::Serial,
        cfg(playouts, 1),
        Arc::clone(&eval) as Arc<dyn BatchEvaluator>,
    );
    let reference = serial.search(&g);

    for scheme in [Scheme::SharedTree, Scheme::LocalTree] {
        let mut s = AdaptiveSearch::<TicTacToe>::new(
            scheme,
            cfg(playouts, 4),
            Arc::clone(&eval) as Arc<dyn BatchEvaluator>,
        );
        let r = s.search(&g);
        // Total-variation distance between root distributions.
        let tv: f32 = reference
            .probs
            .iter()
            .zip(&r.probs)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / 2.0;
        assert!(
            tv < 0.25,
            "{scheme}: TV distance to serial too large: {tv:.3}\nserial {:?}\n{scheme} {:?}",
            reference.probs,
            r.probs
        );
    }
}

#[test]
fn playout_budgets_exact_across_schemes() {
    let g = TicTacToe::new();
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let eval = Arc::new(UniformEvaluator::for_game(&g));
        let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg(333, 3), eval);
        let r = s.search(&g);
        assert_eq!(r.stats.playouts, 333, "{scheme}");
        assert_eq!(r.visits.iter().sum::<u32>(), 332, "{scheme}");
    }
}

#[test]
fn schemes_complete_full_games_without_deadlock() {
    for scheme in [Scheme::SharedTree, Scheme::LocalTree] {
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg(60, 4), eval);
        let mut g = TicTacToe::new();
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let r = s.search(&g);
            let a = r.best_action();
            assert!(g.is_legal(a), "{scheme} proposed illegal move");
            g.apply(a);
            moves += 1;
            assert!(moves <= 9);
        }
    }
}

#[test]
fn connect4_works_across_schemes() {
    // Second game type exercises different fanout/terminal structure.
    let g = Connect4::new();
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let eval = Arc::new(UniformEvaluator::for_game(&g));
        let mut s = AdaptiveSearch::<Connect4>::new(scheme, cfg(200, 2), eval);
        let r = s.search(&g);
        assert_eq!(r.stats.playouts, 200, "{scheme}");
        // Center column is provably best in Connect-Four; with uniform
        // priors and only 200 playouts just check the move is legal and
        // the distribution is sane.
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(g.is_legal(r.best_action()));
    }
}

#[test]
fn neural_evaluator_consistency_between_serial_and_leaf_parallel() {
    // Leaf-parallel with a deterministic DNN is exactly serial search.
    let g = TicTacToe::new();
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 77));
    let mut serial = AdaptiveSearch::<TicTacToe>::new(
        Scheme::Serial,
        cfg(150, 1),
        Arc::new(NnEvaluator::new(Arc::clone(&net))),
    );
    let mut leaf = AdaptiveSearch::<TicTacToe>::new(
        Scheme::LeafParallel,
        cfg(150, 3),
        Arc::new(NnEvaluator::new(net)),
    );
    let rs = serial.search(&g);
    let rl = leaf.search(&g);
    assert_eq!(rs.visits, rl.visits);
}

#[test]
fn hex_works_across_schemes() {
    // Hex: Black has a near-complete top-bottom chain; all schemes must
    // find the completing move.
    let mut g = Hex::new(3);
    for a in [0u16, 2, 6, 5] {
        g.apply(a); // Black at (0,0),(2,0); White at (0,2),(1,2)
    }
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let eval = Arc::new(UniformEvaluator::for_game(&g));
        let mut s = AdaptiveSearch::<Hex>::new(scheme, cfg(300, 2), eval);
        let r = s.search(&g);
        assert_eq!(r.best_action(), 3, "{scheme}: visits {:?}", r.visits);
    }
}
