//! Deterministic parameter initialization (Xavier / He / uniform).
//!
//! All initializers take an explicit RNG so whole-network initialization is
//! reproducible from a single seed — required for the paper's design-time
//! profiling ("DNN filled with random parameters", §4.2) to be repeatable.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr_normal::Normal;

/// Minimal Box-Muller normal sampler so we don't need the `rand_distr` crate.
mod rand_distr_normal {
    use rand::Rng;

    /// Normal distribution with given mean and standard deviation.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        pub mean: f32,
        pub std: f32,
    }

    impl Normal {
        pub fn new(mean: f32, std: f32) -> Self {
            assert!(std >= 0.0, "negative std");
            Normal { mean, std }
        }

        /// Draw one sample via the Box-Muller transform.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            self.mean + self.std * z
        }
    }
}

/// Tensor with i.i.d. N(0, std²) entries.
pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], std: f32) -> Tensor {
    let dist = Normal::new(0.0, std);
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| dist.sample(rng)).collect(), dims)
}

/// Tensor with i.i.d. U(lo, hi) entries.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), dims)
}

/// Xavier/Glorot-uniform init: U(±sqrt(6/(fan_in+fan_out))).
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, -bound, bound)
}

/// He/Kaiming-normal init for ReLU networks: N(0, 2/fan_in).
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    randn(rng, dims, (2.0 / fan_in as f32).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        assert_eq!(
            randn(&mut a, &[10], 1.0).data(),
            randn(&mut b, &[10], 1.0).data()
        );
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = randn(&mut rng, &[20_000], 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 20_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = uniform(&mut rng, &[5_000], -0.25, 0.25);
        assert!(t.data().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, &[64, 32], 32, 64);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let t = he_normal(&mut rng, &[30_000], 50);
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / 30_000.0;
        assert!((var - 0.04).abs() < 0.01, "var {var} expected ~0.04");
    }
}
