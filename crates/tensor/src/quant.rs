//! Int8-quantized GEMM: per-output-channel symmetric weights × dynamically
//! quantized activations, with the dequant fused into the bias/ReLU epilogue.
//!
//! # Quantization scheme
//!
//! * **Weights** are quantized once, at snapshot time, per output channel
//!   (= per row of the GEMM A operand): `q = round(w / s_i)` with
//!   `s_i = maxabs(row_i) / 63`. The ±63 clamp is deliberate headroom: the
//!   AVX2 kernel's `_mm256_maddubs_epi16` sums **pairs** of `u8×i8`
//!   products into i16, and `255·63·2 = 32130 < 32767`, so the widening
//!   dot product can never saturate.
//! * **Activations** are quantized per call with a single symmetric scale
//!   `s_x = maxabs(B) / 127`, then biased by +128 into `u8` (the unsigned
//!   operand `maddubs` requires). The bias is exact to undo: the
//!   accumulated `Σ (q_x+128)·q_w` over-counts by `128·Σ q_w`, and the
//!   per-row weight sums are precomputed at quantization time.
//! * **Dequant** happens in the tile write-back:
//!   `C[i,j] = s_i·s_x·(acc[i,j] − 128·rowsum_i) [+ bias_i] [then ReLU]` —
//!   the same fused epilogue shape as the f32 kernel, so layers still need
//!   no separate output pass.
//!
//! # Kernel
//!
//! Same BLIS-style structure as [`crate::ops`]: A is pre-packed (at
//! quantization time — it never changes) into `MR`-row panels with k
//! grouped by 4, B is packed per call into `NR`-column panels with k
//! grouped by 4 so one 32-byte load yields the 4-deep k-group of all 8
//! columns. The micro-kernel computes a 4×8 i32 tile per pass:
//! `maddubs(b_u8, w_i8)` → 16×i16 pair sums, `madd(·, 1)` → 8×i32 4-deep
//! dots, accumulated per row. Runtime-detected AVX2 with a portable scalar
//! fallback computing bit-identical results.
//!
//! Multithreading splits the N dimension into `NR`-aligned column strips
//! (A is pre-packed and shared read-only, so the column split duplicates
//! nothing) and sizes itself from [`crate::pool::effective_parallelism`],
//! i.e. it participates in the shared core budget.

use std::cell::RefCell;

/// Micro-kernel tile rows (matches the f32 kernel).
const MR: usize = 4;
/// Micro-kernel tile columns (one AVX2 vector of i32 lanes).
const NR: usize = 8;
/// k values packed per group (one `maddubs`+`madd` step consumes 4).
const KG: usize = 4;

/// Weight clamp. ±63 guarantees the i16 pair sums inside `maddubs` cannot
/// saturate against u8 activations (see module docs).
const WEIGHT_QMAX: f32 = 63.0;
/// Activation clamp (symmetric i8 range before the +128 bias).
const ACT_QMAX: f32 = 127.0;
/// Bias added to quantized activations to make them unsigned.
const ACT_ZERO: i32 = 128;

/// Per-output-channel symmetric int8 weights, pre-packed for the 4×8
/// micro-kernel, with the per-row scales and weight sums the dequant
/// epilogue needs.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    rows: usize,
    cols: usize,
    /// Column groups of 4 (`ceil(cols/4)`, at least 1).
    kgroups: usize,
    /// Panel-major layout: `[row_panel][kgroup][row_in_panel][4]`, zero
    /// padded on both the row and k edges.
    packed: Vec<i8>,
    /// Per-row quantization scale (`maxabs/63`; 0 for all-zero rows).
    scales: Vec<f32>,
    /// Per-row sum of quantized weights, for the +128 activation-bias
    /// correction.
    row_sums: Vec<i32>,
}

impl QuantizedWeights {
    /// Quantize a row-major `rows × cols` f32 matrix (one output channel
    /// per row) into the packed int8 form.
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(w.len(), rows * cols, "weight slice must be rows*cols");
        let panels = rows.div_ceil(MR).max(1);
        let kgroups = cols.div_ceil(KG).max(1);
        let mut packed = vec![0i8; panels * kgroups * MR * KG];
        let mut scales = Vec::with_capacity(rows);
        let mut row_sums = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let maxabs = row.iter().fold(0f32, |m, &v| m.max(v.abs()));
            let scale = if maxabs > 0.0 {
                maxabs / WEIGHT_QMAX
            } else {
                0.0
            };
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            let (p, i) = (r / MR, r % MR);
            let mut sum = 0i32;
            for (kidx, &v) in row.iter().enumerate() {
                let q = (v * inv).round().clamp(-WEIGHT_QMAX, WEIGHT_QMAX) as i32;
                sum += q;
                let (g, kk) = (kidx / KG, kidx % KG);
                packed[((p * kgroups + g) * MR + i) * KG + kk] = q as i8;
            }
            scales.push(scale);
            row_sums.push(sum);
        }
        QuantizedWeights {
            rows,
            cols,
            kgroups,
            packed,
            scales,
            row_sums,
        }
    }

    /// Output channels (GEMM m).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reduction depth (GEMM k).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row quantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstruct the f32 matrix (`rows × cols`, row-major). Each element
    /// is within `scale/2` of the original — the round-trip contract the
    /// proptests pin down.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let (p, i) = (r / MR, r % MR);
            let s = self.scales[r];
            for kidx in 0..self.cols {
                let (g, kk) = (kidx / KG, kidx % KG);
                let q = self.packed[((p * self.kgroups + g) * MR + i) * KG + kk];
                out[r * self.cols + kidx] = q as f32 * s;
            }
        }
        out
    }

    /// Bytes held by the packed weight panels (footprint reporting).
    pub fn packed_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Packed panel for row-panel `p`: `kgroups * MR * KG` int8 values.
    fn panel(&self, p: usize) -> &[i8] {
        let stride = self.kgroups * MR * KG;
        &self.packed[p * stride..(p + 1) * stride]
    }
}

/// True when the AVX2 widening-dot-product micro-kernel is in use (as
/// opposed to the portable scalar fallback). Useful for bench metadata.
pub fn simd_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kernels_x86::avx2_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Int8 GEMM with fused dequant/bias/ReLU epilogue.
///
/// * `tb == false` (convolution): `B` is `cols × n` row-major (an im2col
///   matrix), `C` is `rows × n` — `C = deq(Wq × Bq)`.
/// * `tb == true` (linear): `B` is `n × cols` row-major (`n` input vectors),
///   `C` is `n × rows` — `C = deq(Bq × Wqᵀ)`, written transposed directly
///   from the tile, so no scratch staging is needed.
///
/// `bias` (when present) has one entry per weight row (= output channel /
/// output feature) in both layouts; `relu` clamps after the bias. The
/// activation scale is derived per call from `maxabs(B)`.
pub fn qgemm(
    qw: &QuantizedWeights,
    b: &[f32],
    tb: bool,
    n: usize,
    c: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    let (m, k) = (qw.rows, qw.cols);
    assert_eq!(b.len(), k * n, "B must be k*n elements");
    assert_eq!(c.len(), m * n, "C must be m*n elements");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "bias must have one entry per weight row");
    }
    if m == 0 || n == 0 {
        return;
    }
    let maxabs = b.iter().fold(0f32, |acc, &v| acc.max(v.abs()));
    let s_x = if maxabs > 0.0 { maxabs / ACT_QMAX } else { 0.0 };
    let inv_sx = if s_x > 0.0 { 1.0 / s_x } else { 0.0 };

    let col_panels = n.div_ceil(NR);
    let flops = 2 * m * n * k;
    let threads = crate::pool::effective_parallelism();
    let c_ptr = CPtr(c.as_mut_ptr());
    let c_ptr = &c_ptr;
    if flops >= crate::ops::MT_FLOP_THRESHOLD && threads > 1 && col_panels >= 2 {
        let strips = threads.min(col_panels);
        let strip_panels = col_panels.div_ceil(strips);
        let n_strips = col_panels.div_ceil(strip_panels);
        crate::pool::run_strips(n_strips, &|s| {
            let p0 = s * strip_panels;
            let p1 = (p0 + strip_panels).min(col_panels);
            // SAFETY: strip `s` covers column panels [p0, p1); strips are
            // disjoint, so no two workers touch the same C element (in
            // either the direct or the transposed write layout).
            unsafe {
                qgemm_col_panels(qw, b, tb, n, p0, p1, *c_ptr, bias, relu, s_x, inv_sx);
            }
        });
    } else {
        // SAFETY: single caller, whole panel range.
        unsafe {
            qgemm_col_panels(qw, b, tb, n, 0, col_panels, *c_ptr, bias, relu, s_x, inv_sx);
        }
    }
}

/// `*mut f32` wrapper so disjoint-strip writers can share the C pointer.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
// SAFETY: strips write disjoint C regions (see call sites).
unsafe impl Sync for CPtr {}

thread_local! {
    /// Per-thread packed-B panel (`kgroups * NR * KG` u8), reused across
    /// calls so the steady state allocates nothing.
    static QPACK_B: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Compute column panels `[p0, p1)` of the output. Caller guarantees the
/// panel ranges of concurrent invocations are disjoint.
#[allow(clippy::too_many_arguments)]
unsafe fn qgemm_col_panels(
    qw: &QuantizedWeights,
    b: &[f32],
    tb: bool,
    n: usize,
    p0: usize,
    p1: usize,
    c: CPtr,
    bias: Option<&[f32]>,
    relu: bool,
    s_x: f32,
    inv_sx: f32,
) {
    let (m, k) = (qw.rows, qw.cols);
    let kgroups = qw.kgroups;
    let row_panels = m.div_ceil(MR);
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = kernels_x86::avx2_available();
    QPACK_B.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.resize(kgroups * NR * KG, 0);
        for cp in p0..p1 {
            let j0 = cp * NR;
            let jcount = NR.min(n - j0);
            pack_b_panel(b, tb, k, n, j0, jcount, kgroups, inv_sx, &mut buf);
            for rp in 0..row_panels {
                let mut acc = [0i32; MR * NR];
                let apanel = qw.panel(rp);
                #[cfg(target_arch = "x86_64")]
                if use_avx2 {
                    // SAFETY: AVX2 presence checked; panel slices hold
                    // exactly kgroups full groups.
                    unsafe {
                        kernels_x86::qkernel_4x8(kgroups, apanel.as_ptr(), buf.as_ptr(), &mut acc);
                    }
                } else {
                    qkernel_scalar(kgroups, apanel, &buf, &mut acc);
                }
                #[cfg(not(target_arch = "x86_64"))]
                qkernel_scalar(kgroups, apanel, &buf, &mut acc);
                // SAFETY: rows/cols of this tile are in-bounds and the
                // caller guarantees disjoint column ranges.
                unsafe {
                    write_tile(&acc, qw, rp, j0, jcount, n, tb, c, bias, relu, s_x);
                }
            }
        }
    });
}

/// Quantize + pack `jcount` B columns starting at `j0` into the
/// `[kgroup][col][4]` u8 layout. Padding (k edge, missing columns) is the
/// activation zero point, which the zero-padded weights annihilate.
#[allow(clippy::too_many_arguments)]
fn pack_b_panel(
    b: &[f32],
    tb: bool,
    k: usize,
    n: usize,
    j0: usize,
    jcount: usize,
    kgroups: usize,
    inv_sx: f32,
    buf: &mut [u8],
) {
    debug_assert_eq!(buf.len(), kgroups * NR * KG);
    // Full-width direct-layout panels take the vectorized quantize+
    // transpose; everything else (linear layout, ragged column edge) goes
    // through the scalar loop below, which uses the same nearest-even
    // rounding so both paths are bit-identical.
    #[cfg(target_arch = "x86_64")]
    if !tb && jcount == NR && kernels_x86::avx2_available() {
        let full_groups = k / KG;
        // SAFETY: AVX2 checked; jcount == NR means columns j0..j0+8 are
        // in-bounds for every row of the k × n matrix.
        unsafe {
            kernels_x86::pack_b_panel_avx2(
                b.as_ptr(),
                n,
                j0,
                full_groups,
                inv_sx,
                buf.as_mut_ptr(),
            );
        }
        // k tail (k % 4 != 0): scalar quantize, zero-point padding.
        if full_groups * KG < k {
            buf[full_groups * NR * KG..].fill(ACT_ZERO as u8);
            for jj in 0..jcount {
                for kidx in full_groups * KG..k {
                    let q = quantize_act(b[kidx * n + j0 + jj], inv_sx);
                    let (g, kk) = (kidx / KG, kidx % KG);
                    buf[(g * NR + jj) * KG + kk] = q;
                }
            }
        }
        return;
    }
    buf.fill(ACT_ZERO as u8);
    for jj in 0..jcount {
        let j = j0 + jj;
        for kidx in 0..k {
            let x = if tb { b[j * k + kidx] } else { b[kidx * n + j] };
            let (g, kk) = (kidx / KG, kidx % KG);
            buf[(g * NR + jj) * KG + kk] = quantize_act(x, inv_sx);
        }
    }
}

/// Quantize one activation to the biased-u8 domain, rounding to nearest
/// even via the magic-constant trick (a couple of adds instead of the slow
/// `f32::round` lowering) — the same rounding `cvtps_epi32` performs, so
/// the scalar and AVX2 pack paths are bit-identical.
#[inline]
fn quantize_act(x: f32, inv_sx: f32) -> u8 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23: shifts ties-to-even into the mantissa
    let clamped = (x * inv_sx).clamp(-ACT_QMAX, ACT_QMAX);
    let rounded = (clamped + MAGIC) - MAGIC;
    (rounded as i32 + ACT_ZERO) as u8
}

/// Portable reference micro-kernel: bit-identical i32 accumulators to the
/// AVX2 path (integer arithmetic is exact).
fn qkernel_scalar(kgroups: usize, apanel: &[i8], bpanel: &[u8], acc: &mut [i32; MR * NR]) {
    for g in 0..kgroups {
        let ab = &apanel[g * MR * KG..(g + 1) * MR * KG];
        let bb = &bpanel[g * NR * KG..(g + 1) * NR * KG];
        for i in 0..MR {
            let w = &ab[i * KG..(i + 1) * KG];
            for j in 0..NR {
                let x = &bb[j * KG..(j + 1) * KG];
                let mut s = 0i32;
                for kk in 0..KG {
                    s += x[kk] as i32 * w[kk] as i32;
                }
                acc[i * NR + j] += s;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod kernels_x86 {
    use super::{KG, MR, NR};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    static AVX2: OnceLock<bool> = OnceLock::new();

    pub fn avx2_available() -> bool {
        *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// 4×8 int8 micro-kernel: per k-group, one 32-byte B load gives the
    /// 4-deep slice of all 8 columns; each row's 4 weights broadcast as an
    /// i32; `maddubs` (u8×i8 → paired i16) then `madd` against ones
    /// (i16 → summed i32) produce the 8 column dots, accumulated in i32.
    ///
    /// # Safety
    /// AVX2 must be available. `apanel` must hold `kgroups*MR*KG` i8 and
    /// `bpanel` `kgroups*NR*KG` u8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qkernel_4x8(
        kgroups: usize,
        apanel: *const i8,
        bpanel: *const u8,
        acc: &mut [i32; MR * NR],
    ) {
        let ones = _mm256_set1_epi16(1);
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        // Two k-groups per iteration: halves the loop overhead and gives
        // the scheduler two independent maddubs/madd chains per
        // accumulator to interleave.
        let mut g = 0;
        while g + 2 <= kgroups {
            let bv0 = _mm256_loadu_si256(bpanel.add(g * NR * KG) as *const __m256i);
            let bv1 = _mm256_loadu_si256(bpanel.add((g + 1) * NR * KG) as *const __m256i);
            let wb0 = apanel.add(g * MR * KG) as *const i32;
            let wb1 = apanel.add((g + 1) * MR * KG) as *const i32;
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv0, _mm256_set1_epi32(wb0.read_unaligned())),
                    ones,
                ),
            );
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv0, _mm256_set1_epi32(wb0.add(1).read_unaligned())),
                    ones,
                ),
            );
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv0, _mm256_set1_epi32(wb0.add(2).read_unaligned())),
                    ones,
                ),
            );
            acc3 = _mm256_add_epi32(
                acc3,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv0, _mm256_set1_epi32(wb0.add(3).read_unaligned())),
                    ones,
                ),
            );
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv1, _mm256_set1_epi32(wb1.read_unaligned())),
                    ones,
                ),
            );
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv1, _mm256_set1_epi32(wb1.add(1).read_unaligned())),
                    ones,
                ),
            );
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv1, _mm256_set1_epi32(wb1.add(2).read_unaligned())),
                    ones,
                ),
            );
            acc3 = _mm256_add_epi32(
                acc3,
                _mm256_madd_epi16(
                    _mm256_maddubs_epi16(bv1, _mm256_set1_epi32(wb1.add(3).read_unaligned())),
                    ones,
                ),
            );
            g += 2;
        }
        if g < kgroups {
            let bv = _mm256_loadu_si256(bpanel.add(g * NR * KG) as *const __m256i);
            let wbase = apanel.add(g * MR * KG) as *const i32;
            let w0 = _mm256_set1_epi32(wbase.read_unaligned());
            let w1 = _mm256_set1_epi32(wbase.add(1).read_unaligned());
            let w2 = _mm256_set1_epi32(wbase.add(2).read_unaligned());
            let w3 = _mm256_set1_epi32(wbase.add(3).read_unaligned());
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, w0), ones));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, w1), ones));
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, w2), ones));
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(_mm256_maddubs_epi16(bv, w3), ones));
        }
        let out = acc.as_mut_ptr() as *mut __m256i;
        _mm256_storeu_si256(out, acc0);
        _mm256_storeu_si256(out.add(1), acc1);
        _mm256_storeu_si256(out.add(2), acc2);
        _mm256_storeu_si256(out.add(3), acc3);
    }

    /// Vectorized quantize+transpose pack of one full-width B panel in the
    /// direct (`k × n`) layout: for each k-group, loads 8 f32 from each of
    /// the 4 rows, quantizes (`cvtps_epi32`, nearest-even, matching the
    /// scalar path's magic-constant rounding), narrows 4×8 i32 → 32 u8,
    /// and shuffles into the `[col][k]` interleave the micro-kernel reads.
    ///
    /// # Safety
    /// AVX2 must be available; rows `0..full_groups*4` × columns
    /// `j0..j0+8` must be in-bounds; `buf` must hold `full_groups*32` u8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pack_b_panel_avx2(
        b: *const f32,
        n: usize,
        j0: usize,
        full_groups: usize,
        inv_sx: f32,
        buf: *mut u8,
    ) {
        let inv = _mm256_set1_ps(inv_sx);
        let lo = _mm256_set1_ps(-super::ACT_QMAX);
        let hi = _mm256_set1_ps(super::ACT_QMAX);
        let zero_point = _mm256_set1_epi32(super::ACT_ZERO);
        // Per 128-bit lane: bytes [t0j0..3, t1j0..3, t2j0..3, t3j0..3] →
        // [j0: t0..t3, j1: t0..t3, j2..., j3...].
        let interleave = _mm256_setr_epi8(
            0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15, //
            0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
        );
        for g in 0..full_groups {
            let base = b.add(g * KG * n + j0);
            let t0 = quant_row(base, inv, lo, hi, zero_point);
            let t1 = quant_row(base.add(n), inv, lo, hi, zero_point);
            let t2 = quant_row(base.add(2 * n), inv, lo, hi, zero_point);
            let t3 = quant_row(base.add(3 * n), inv, lo, hi, zero_point);
            // packs/packus operate per 128-bit lane, so after both packs
            // lane 0 holds columns j0..j3 and lane 1 columns j4..j7 —
            // exactly the contiguous output order once interleaved.
            let s01 = _mm256_packs_epi32(t0, t1);
            let s23 = _mm256_packs_epi32(t2, t3);
            let bytes = _mm256_packus_epi16(s01, s23);
            let shuffled = _mm256_shuffle_epi8(bytes, interleave);
            _mm256_storeu_si256(buf.add(g * NR * KG) as *mut __m256i, shuffled);
        }
    }

    /// Load, scale, clamp, and quantize 8 activations into biased-u8 range
    /// (still widened in i32 lanes).
    ///
    /// # Safety
    /// AVX2 must be available; `p` must point at 8 readable f32.
    #[target_feature(enable = "avx2")]
    unsafe fn quant_row(
        p: *const f32,
        inv: __m256,
        lo: __m256,
        hi: __m256,
        zp: __m256i,
    ) -> __m256i {
        let v = _mm256_loadu_ps(p);
        let clamped = _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(v, inv), lo), hi);
        _mm256_add_epi32(_mm256_cvtps_epi32(clamped), zp)
    }

    /// Vectorized dequant write-back for one full 8-wide tile row:
    /// `(acc − corr) · deq + bias`, optional ReLU, contiguous store.
    ///
    /// # Safety
    /// AVX2 must be available; `acc_row` must hold 8 i32; `dst` 8 f32.
    #[target_feature(enable = "avx2")]
    pub unsafe fn write_row_avx2(
        acc_row: *const i32,
        corr: i32,
        deq: f32,
        badd: f32,
        relu: bool,
        dst: *mut f32,
    ) {
        let a = _mm256_loadu_si256(acc_row as *const __m256i);
        let a = _mm256_sub_epi32(a, _mm256_set1_epi32(corr));
        let f = _mm256_cvtepi32_ps(a);
        let mut v = _mm256_add_ps(_mm256_mul_ps(f, _mm256_set1_ps(deq)), _mm256_set1_ps(badd));
        if relu {
            v = _mm256_max_ps(v, _mm256_setzero_ps());
        }
        _mm256_storeu_ps(dst, v);
    }
}

/// Dequantize one accumulator tile and write it back with the fused
/// epilogue. `tb` selects the direct (`C[row, col]`) or transposed
/// (`C[col, row]`) layout.
///
/// # Safety
/// Caller must guarantee `c` points to an `m×n` (or `n×m`) buffer and that
/// concurrent callers cover disjoint `j0` ranges.
#[allow(clippy::too_many_arguments)]
unsafe fn write_tile(
    acc: &[i32; MR * NR],
    qw: &QuantizedWeights,
    rp: usize,
    j0: usize,
    jcount: usize,
    n: usize,
    tb: bool,
    c: CPtr,
    bias: Option<&[f32]>,
    relu: bool,
    s_x: f32,
) {
    let m = qw.rows;
    let rows_here = MR.min(m - rp * MR);
    // Fast path: full-width tile in the direct layout — one vectorized
    // dequant+bias+ReLU store per row. The transposed (linear) layout and
    // ragged edges fall through to the scalar loop.
    #[cfg(target_arch = "x86_64")]
    if !tb && jcount == NR && kernels_x86::avx2_available() {
        for i in 0..rows_here {
            let row = rp * MR + i;
            // SAFETY: AVX2 checked; row*n+j0+8 <= m*n for a full tile.
            unsafe {
                kernels_x86::write_row_avx2(
                    acc.as_ptr().add(i * NR),
                    ACT_ZERO * qw.row_sums[row],
                    qw.scales[row] * s_x,
                    bias.map_or(0.0, |b| b[row]),
                    relu,
                    c.0.add(row * n + j0),
                );
            }
        }
        return;
    }
    for i in 0..rows_here {
        let row = rp * MR + i;
        let deq = qw.scales[row] * s_x;
        let correction = ACT_ZERO * qw.row_sums[row];
        let badd = bias.map_or(0.0, |b| b[row]);
        for jj in 0..jcount {
            let raw = acc[i * NR + jj] - correction;
            let mut v = deq * raw as f32 + badd;
            if relu && v < 0.0 {
                v = 0.0;
            }
            let idx = if tb {
                (j0 + jj) * m + row
            } else {
                row * n + (j0 + jj)
            };
            // SAFETY: idx < m*n by construction; disjointness per caller.
            unsafe { *c.0.add(idx) = v };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm_ep, Epilogue};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Same xorshift idiom as the GEMM proptests: deterministic, no deps.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Per-element error bound for `qgemm` vs the exact f32 product:
    /// activation rounding (≤ s_x/2) against each |w|, weight rounding
    /// (≤ s_i/2) against each |x|, plus the cross term.
    fn error_bound(w_row: &[f32], x_col: &[f32], s_w: f32, s_x: f32) -> f32 {
        let wsum: f32 = w_row.iter().map(|v| v.abs()).sum();
        let xsum: f32 = x_col.iter().map(|v| v.abs()).sum();
        0.5 * s_x * wsum + 0.5 * s_w * xsum + 0.25 * s_x * s_w * w_row.len() as f32 + 1e-4
    }

    fn check_against_f32(
        m: usize,
        n: usize,
        k: usize,
        tb: bool,
        bias: bool,
        relu: bool,
        seed: u64,
    ) {
        let w = rand_vec(m * k, seed);
        let x = rand_vec(k * n, seed.wrapping_add(1));
        let bvec = rand_vec(m, seed.wrapping_add(2));
        let bias_opt = bias.then_some(&bvec[..]);
        let qw = QuantizedWeights::quantize(&w, m, k);
        let mut qc = vec![0f32; m * n];
        qgemm(&qw, &x, tb, n, &mut qc, bias_opt, relu);

        // f32 reference on the same operands/layout.
        let mut fc = vec![0f32; m * n];
        if tb {
            // x is [n, k]; reference C is [n, m] = x · wᵀ.
            gemm_ep(
                false,
                true,
                n,
                m,
                k,
                1.0,
                &x,
                &w,
                0.0,
                &mut fc,
                Epilogue {
                    bias_col: bias_opt,
                    relu,
                    ..Default::default()
                },
            );
        } else {
            gemm_ep(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &w,
                &x,
                0.0,
                &mut fc,
                Epilogue {
                    bias_row: bias_opt,
                    relu,
                    ..Default::default()
                },
            );
        }

        let maxabs = x.iter().fold(0f32, |a, &v| a.max(v.abs()));
        let s_x = if maxabs > 0.0 { maxabs / ACT_QMAX } else { 0.0 };
        for row in 0..m {
            let wrow = &w[row * k..(row + 1) * k];
            for j in 0..n {
                let xcol: Vec<f32> = if tb {
                    x[j * k..(j + 1) * k].to_vec()
                } else {
                    (0..k).map(|kk| x[kk * n + j]).collect()
                };
                let bound = error_bound(wrow, &xcol, qw.scales[row], s_x);
                let (got, want) = if tb {
                    (qc[j * m + row], fc[j * m + row])
                } else {
                    (qc[row * n + j], fc[row * n + j])
                };
                // ReLU only shrinks the error, so the linear bound holds.
                assert!(
                    (got - want).abs() <= bound,
                    "({row},{j}) got {got} want {want} bound {bound} tb={tb}"
                );
            }
        }
    }

    #[test]
    fn matches_f32_gemm_conv_layout() {
        check_against_f32(17, 33, 29, false, false, false, 7);
        check_against_f32(32, 64, 48, false, true, false, 11);
        check_against_f32(5, 9, 3, false, true, true, 13);
    }

    #[test]
    fn matches_f32_gemm_linear_layout() {
        check_against_f32(19, 7, 31, true, false, false, 17);
        check_against_f32(24, 16, 40, true, true, true, 19);
        check_against_f32(3, 1, 10, true, true, false, 23);
    }

    #[test]
    fn tile_edge_sizes_are_exact_shapes() {
        for &(m, n, k) in &[(1, 1, 1), (4, 8, 4), (5, 9, 5), (8, 16, 8), (13, 25, 17)] {
            check_against_f32(m, n, k, false, true, true, 100 + m as u64);
        }
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let w = rand_vec(23 * 41, 3);
        let qw = QuantizedWeights::quantize(&w, 23, 41);
        let back = qw.dequantize();
        for r in 0..23 {
            let s = qw.scales[r];
            for c in 0..41 {
                let err = (w[r * 41 + c] - back[r * 41 + c]).abs();
                assert!(
                    err <= s * 0.5 + 1e-7,
                    "row {r} col {c}: err {err} scale {s}"
                );
            }
        }
    }

    #[test]
    fn zero_matrix_quantizes_to_zero() {
        let w = vec![0f32; 12];
        let qw = QuantizedWeights::quantize(&w, 3, 4);
        assert!(qw.scales().iter().all(|&s| s == 0.0));
        let mut c = vec![1f32; 3 * 2];
        qgemm(&qw, &[1.0; 8], false, 2, &mut c, None, false);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_activations_yield_bias_only() {
        let w = rand_vec(8 * 6, 5);
        let qw = QuantizedWeights::quantize(&w, 8, 6);
        let bias: Vec<f32> = (0..8).map(|i| i as f32 - 4.0).collect();
        let mut c = vec![9f32; 8 * 3];
        qgemm(&qw, &[0f32; 6 * 3], false, 3, &mut c, Some(&bias), true);
        for i in 0..8 {
            for j in 0..3 {
                assert_eq!(c[i * 3 + j], bias[i].max(0.0));
            }
        }
    }

    #[test]
    fn scalar_and_dispatch_kernels_agree_bitwise() {
        // The i32 accumulators are exact integers, so whatever kernel the
        // dispatcher picks must produce bitwise-equal output to a forced
        // scalar pass over the same packed operands.
        let (m, n, k) = (9, 21, 14);
        let w = rand_vec(m * k, 31);
        let x = rand_vec(k * n, 37);
        let qw = QuantizedWeights::quantize(&w, m, k);
        let mut via_dispatch = vec![0f32; m * n];
        qgemm(&qw, &x, false, n, &mut via_dispatch, None, false);

        let maxabs = x.iter().fold(0f32, |a, &v| a.max(v.abs()));
        let s_x = maxabs / ACT_QMAX;
        let inv_sx = 1.0 / s_x;
        let kgroups = qw.kgroups;
        let mut scalar = vec![0f32; m * n];
        let mut buf = vec![0u8; kgroups * NR * KG];
        for cp in 0..n.div_ceil(NR) {
            let j0 = cp * NR;
            let jcount = NR.min(n - j0);
            pack_b_panel(&x, false, k, n, j0, jcount, kgroups, inv_sx, &mut buf);
            for rp in 0..m.div_ceil(MR) {
                let mut acc = [0i32; MR * NR];
                qkernel_scalar(kgroups, qw.panel(rp), &buf, &mut acc);
                let c = CPtr(scalar.as_mut_ptr());
                unsafe { write_tile(&acc, &qw, rp, j0, jcount, n, false, c, None, false, s_x) };
            }
        }
        assert_eq!(via_dispatch, scalar);
    }

    #[test]
    fn large_accumulation_does_not_saturate() {
        // Worst case for maddubs: extreme-magnitude operands over a deep k.
        let k = 1024;
        let w: Vec<f32> = (0..k)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let x = vec![1.0f32; k];
        let qw = QuantizedWeights::quantize(&w, 1, k);
        let mut c = vec![0f32; 1];
        qgemm(&qw, &x, false, 1, &mut c, None, false);
        // Exact answer is 0 (alternating ±1 against all-ones).
        assert!(c[0].abs() < 1e-3, "got {}", c[0]);
    }
}
