//! The `Tensor` type: contiguous row-major `f32` storage plus a shape.

use crate::ops;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wrap an existing buffer. Panics if `data.len() != product(dims)`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// Shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let new = Shape::new(dims);
        assert_eq!(new.numel(), self.numel(), "reshape element count mismatch");
        self.shape = new;
        self
    }

    /// Borrowing variant of [`Tensor::reshape`].
    pub fn reshaped(&self, dims: &[usize]) -> Tensor {
        self.clone().reshape(dims)
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a matrix");
        let cols = self.shape.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// New tensor with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Elementwise `self += other`. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        ops::axpy(1.0, &other.data, &mut self.data);
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        ops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Set all elements to zero (reuse allocation between steps).
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix product of two rank-2 tensors.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2);
        assert_eq!(other.shape.rank(), 2);
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        ops::gemm(
            false,
            false,
            m,
            n,
            k,
            1.0,
            &self.data,
            &other.data,
            0.0,
            &mut out.data,
        );
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties). Panics if empty.
    pub fn argmax(&self) -> usize {
        ops::argmax(&self.data)
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[2]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_count_checked() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn row_slices() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let c = a.matmul(&Tensor::eye(2));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn elementwise_helpers() {
        let mut a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![10., 20.], &[2]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11., 22.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[16., 32.]);
        a.scale(0.25);
        assert_eq!(a.data(), &[4., 8.]);
        a.zero_();
        assert_eq!(a.data(), &[0., 0.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1., 2., 3., 6.], &[4]);
        assert_eq!(t.sum(), 12.0);
        assert_eq!(t.mean(), 3.0);
        assert_eq!(t.argmax(), 3);
        assert!((t.norm() - 50.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec(vec![-1., 2.], &[2]).map(|x| x.max(0.0));
        assert_eq!(t.data(), &[0., 2.]);
    }
}
