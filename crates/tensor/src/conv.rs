//! 2-D convolution via im2col/col2im.
//!
//! The forward pass unfolds the **whole `[B, C, H, W]` batch** into one
//! `[col_rows, B·col_cols]` matrix and runs a **single GEMM per layer call**
//! (with the bias — and optionally ReLU — fused into the GEMM's output
//! loop), instead of one im2col + one GEMM per image. The backward passes
//! stay per-image GEMMs over the same packed kernel. All scratch (im2col
//! matrix, GEMM staging) comes from a [`Workspace`], so steady-state
//! inference allocates nothing.
//!
//! Layout conventions (all row-major, contiguous):
//! * input:   `[batch, in_c, in_h, in_w]`
//! * weights: `[out_c, in_c, kh, kw]`
//! * output:  `[batch, out_c, out_h, out_w]`
//! * im2col matrix for one image: `[in_c*kh*kw, out_h*out_w]`
//! * batched im2col matrix: `[in_c*kh*kw, batch*out_h*out_w]`, image `b`
//!   occupying columns `[b*col_cols, (b+1)*col_cols)`

use crate::ops::{gemm, gemm_ep, Epilogue};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Static description of a convolution (shapes, stride, padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub in_c: usize,
    pub out_c: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2dSpec {
    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the im2col matrix (= elements per output patch).
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Columns of the im2col matrix (= output pixels), for one image.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validate that the spec is internally consistent.
    pub fn validate(&self) {
        assert!(self.stride >= 1, "stride must be >= 1");
        assert!(
            self.in_h + 2 * self.pad >= self.kh && self.in_w + 2 * self.pad >= self.kw,
            "kernel larger than padded input"
        );
    }
}

/// Copy one im2col row segment for image data `img_c` (a single channel),
/// kernel offset `(ky, kx)`, into `dst` (`col_cols` long).
#[inline]
fn unfold_row(spec: &Conv2dSpec, img_c: &[f32], ky: usize, kx: usize, dst: &mut [f32]) {
    let (oh, ow) = (spec.out_h(), spec.out_w());
    for oy in 0..oh {
        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
        let d = &mut dst[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy >= spec.in_h as isize {
            d.fill(0.0);
            continue;
        }
        let img_row = &img_c[iy as usize * spec.in_w..(iy as usize + 1) * spec.in_w];
        if spec.stride == 1 {
            // Stride 1 ⇒ the in-bounds span `ox ∈ [lo, hi)` (where
            // `ix = ox + kx - pad` stays inside the row) is one contiguous
            // memcpy; only the padded fringes need zero fills.
            let ix0 = kx as isize - spec.pad as isize;
            let lo = (-ix0).clamp(0, ow as isize) as usize;
            let hi = (spec.in_w as isize - ix0).clamp(lo as isize, ow as isize) as usize;
            d[..lo].fill(0.0);
            d[hi..].fill(0.0);
            if lo < hi {
                let src = (lo as isize + ix0) as usize;
                d[lo..hi].copy_from_slice(&img_row[src..src + (hi - lo)]);
            }
        } else {
            for (ox, v) in d.iter_mut().enumerate() {
                let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                *v = if ix < 0 || ix >= spec.in_w as isize {
                    0.0
                } else {
                    img_row[ix as usize]
                };
            }
        }
    }
}

/// Unfold one image (`[in_c, in_h, in_w]`) into the im2col matrix `col`
/// (`[col_rows, col_cols]`). Out-of-bounds (padding) entries become 0.
pub fn im2col(spec: &Conv2dSpec, img: &[f32], col: &mut [f32]) {
    assert_eq!(img.len(), spec.in_c * spec.in_h * spec.in_w);
    assert_eq!(col.len(), spec.col_rows() * spec.col_cols());
    let cols = spec.col_cols();
    for c in 0..spec.in_c {
        let img_c = &img[c * spec.in_h * spec.in_w..(c + 1) * spec.in_h * spec.in_w];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (c * spec.kh + ky) * spec.kw + kx;
                unfold_row(spec, img_c, ky, kx, &mut col[row * cols..(row + 1) * cols]);
            }
        }
    }
}

/// Unfold a whole `[batch, in_c, in_h, in_w]` batch into one
/// `[col_rows, batch*col_cols]` matrix: image `b` fills columns
/// `[b*col_cols, (b+1)*col_cols)` of every row, so a single GEMM covers the
/// entire batch.
pub fn im2col_batch(spec: &Conv2dSpec, batch: usize, input: &[f32], col: &mut [f32]) {
    let img_len = spec.in_c * spec.in_h * spec.in_w;
    let cols = spec.col_cols();
    let bcols = batch * cols;
    assert_eq!(input.len(), batch * img_len);
    assert_eq!(col.len(), spec.col_rows() * bcols);
    for c in 0..spec.in_c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (c * spec.kh + ky) * spec.kw + kx;
                let out_row = &mut col[row * bcols..(row + 1) * bcols];
                for b in 0..batch {
                    let img_c =
                        &input[b * img_len + c * spec.in_h * spec.in_w..][..spec.in_h * spec.in_w];
                    unfold_row(spec, img_c, ky, kx, &mut out_row[b * cols..(b + 1) * cols]);
                }
            }
        }
    }
}

/// Fold the im2col matrix back, *accumulating* into `img` (used for the
/// gradient w.r.t. the input). `img` must be zeroed by the caller first if a
/// fresh gradient is wanted.
pub fn col2im(spec: &Conv2dSpec, col: &[f32], img: &mut [f32]) {
    let (oh, ow) = (spec.out_h(), spec.out_w());
    assert_eq!(img.len(), spec.in_c * spec.in_h * spec.in_w);
    assert_eq!(col.len(), spec.col_rows() * spec.col_cols());
    let cols = oh * ow;
    for c in 0..spec.in_c {
        let img_c = &mut img[c * spec.in_h * spec.in_w..(c + 1) * spec.in_h * spec.in_w];
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (c * spec.kh + ky) * spec.kw + kx;
                let src_row = &col[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    if iy < 0 || iy >= spec.in_h as isize {
                        continue;
                    }
                    let img_row =
                        &mut img_c[iy as usize * spec.in_w..(iy as usize + 1) * spec.in_w];
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if ix >= 0 && ix < spec.in_w as isize {
                            img_row[ix as usize] += src_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution for a batch: **one GEMM per call**, not per image.
///
/// The batch is unfolded into a single `[col_rows, B·col_cols]` matrix, one
/// `[out_c, col_rows] × [col_rows, B·col_cols]` GEMM computes every output
/// channel for every image, and the result is scattered back into the NCHW
/// output. `bias` and `relu` are fused into the GEMM's output loop. All
/// scratch comes from `ws`.
pub fn conv2d_forward(
    spec: &Conv2dSpec,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    relu: bool,
    output: &mut Tensor,
    ws: &mut Workspace,
) {
    spec.validate();
    let batch = input.dims()[0];
    assert_eq!(input.dims(), &[batch, spec.in_c, spec.in_h, spec.in_w]);
    assert_eq!(weight.dims(), &[spec.out_c, spec.in_c, spec.kh, spec.kw]);
    let (oh, ow) = (spec.out_h(), spec.out_w());
    assert_eq!(output.dims(), &[batch, spec.out_c, oh, ow]);
    if let Some(bias) = bias {
        assert_eq!(bias.numel(), spec.out_c, "bias length");
    }
    if batch == 0 {
        return;
    }

    let (rows, cols) = (spec.col_rows(), spec.col_cols());
    let bcols = batch * cols;
    let ep = Epilogue {
        bias_row: bias.map(|b| b.data()),
        bias_col: None,
        relu,
    };

    if batch == 1 {
        // [1, out_c, oh, ow] is exactly the GEMM output layout: no staging.
        let col = ws.col_buf(rows * cols);
        im2col(spec, input.data(), col);
        gemm_ep(
            false,
            false,
            spec.out_c,
            cols,
            rows,
            1.0,
            weight.data(),
            col,
            0.0,
            output.data_mut(),
            ep,
        );
        return;
    }

    let (col, stage) = ws.col_and_stage(rows * bcols, spec.out_c * bcols);
    im2col_batch(spec, batch, input.data(), col);
    // stage[oc, b*cols + pix] = W[oc, :] · col[:, b*cols + pix] (+bias, relu)
    gemm_ep(
        false,
        false,
        spec.out_c,
        bcols,
        rows,
        1.0,
        weight.data(),
        col,
        0.0,
        stage,
        ep,
    );
    // Scatter [out_c, B, cols] → [B, out_c, cols].
    let out_len = spec.out_c * cols;
    let out = output.data_mut();
    for b in 0..batch {
        for oc in 0..spec.out_c {
            out[b * out_len + oc * cols..b * out_len + (oc + 1) * cols]
                .copy_from_slice(&stage[oc * bcols + b * cols..oc * bcols + (b + 1) * cols]);
        }
    }
}

/// Pre-rewrite forward convolution: one im2col + one baseline GEMM **per
/// image**, bias applied in a separate pass. Retained as the numerical
/// reference for parity tests and the "before" side of the
/// `BENCH_inference.json` speedup record.
pub fn conv2d_forward_ref(
    spec: &Conv2dSpec,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    output: &mut Tensor,
) {
    spec.validate();
    let batch = input.dims()[0];
    let (oh, ow) = (spec.out_h(), spec.out_w());
    let img_len = spec.in_c * spec.in_h * spec.in_w;
    let out_len = spec.out_c * oh * ow;
    let (rows, cols) = (spec.col_rows(), spec.col_cols());
    let mut scratch = vec![0.0f32; rows * cols];

    for b in 0..batch {
        let img = &input.data()[b * img_len..(b + 1) * img_len];
        im2col(spec, img, &mut scratch);
        let out = &mut output.data_mut()[b * out_len..(b + 1) * out_len];
        crate::ops::baseline::gemm(
            false,
            false,
            spec.out_c,
            cols,
            rows,
            1.0,
            weight.data(),
            &scratch,
            0.0,
            out,
        );
        if let Some(bias) = bias {
            for oc in 0..spec.out_c {
                let bv = bias.data()[oc];
                for v in &mut out[oc * cols..(oc + 1) * cols] {
                    *v += bv;
                }
            }
        }
    }
}

/// Backward convolution: computes gradients w.r.t. input, weight and bias.
///
/// `grad_out` is `[batch, out_c, oh, ow]`. `grad_input`/`grad_weight`/
/// `grad_bias` are *accumulated into* (zero them for fresh gradients);
/// accumulation lets a training step sum gradients over micro-batches.
/// Scratch (the im2col matrix and the col-form gradient) comes from `ws`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    spec: &Conv2dSpec,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    grad_input: &mut Tensor,
    grad_weight: &mut Tensor,
    grad_bias: Option<&mut Tensor>,
    ws: &mut Workspace,
) {
    spec.validate();
    let batch = input.dims()[0];
    let (oh, ow) = (spec.out_h(), spec.out_w());
    let (rows, cols) = (spec.col_rows(), spec.col_cols());
    let img_len = spec.in_c * spec.in_h * spec.in_w;
    let out_len = spec.out_c * oh * ow;
    assert_eq!(grad_out.dims(), &[batch, spec.out_c, oh, ow]);
    assert_eq!(grad_input.dims(), input.dims());
    assert_eq!(grad_weight.dims(), weight.dims());

    // col holds the im2col of the input (for dW); col_grad the col-form
    // gradient (for dX).
    let (col, col_grad) = ws.col_and_stage(rows * cols, rows * cols);

    if let Some(gb) = grad_bias {
        debug_assert_eq!(gb.numel(), spec.out_c);
        for b in 0..batch {
            let go = &grad_out.data()[b * out_len..(b + 1) * out_len];
            for oc in 0..spec.out_c {
                gb.data_mut()[oc] += go[oc * cols..(oc + 1) * cols].iter().sum::<f32>();
            }
        }
    }

    for b in 0..batch {
        let img = &input.data()[b * img_len..(b + 1) * img_len];
        let go = &grad_out.data()[b * out_len..(b + 1) * out_len];

        // dW[oc, r] += GO[oc, pix] * col[r, pix]ᵀ
        im2col(spec, img, col);
        gemm(
            false,
            true,
            spec.out_c,
            rows,
            cols,
            1.0,
            go,
            col,
            1.0,
            grad_weight.data_mut(),
        );

        // col_grad[r, pix] = Wᵀ[r, oc] * GO[oc, pix], then fold back.
        gemm(
            true,
            false,
            rows,
            cols,
            spec.out_c,
            1.0,
            weight.data(),
            go,
            0.0,
            col_grad,
        );
        let gi = &mut grad_input.data_mut()[b * img_len..(b + 1) * img_len];
        col2im(spec, col_grad, gi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec3x3() -> Conv2dSpec {
        Conv2dSpec {
            in_c: 2,
            out_c: 3,
            in_h: 5,
            in_w: 5,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        }
    }

    /// Direct (nested-loop) convolution used as a reference.
    fn conv_ref(
        spec: &Conv2dSpec,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
    ) -> Tensor {
        let batch = input.dims()[0];
        let (oh, ow) = (spec.out_h(), spec.out_w());
        let mut out = Tensor::zeros(&[batch, spec.out_c, oh, ow]);
        for b in 0..batch {
            for oc in 0..spec.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |bt| bt.data()[oc]);
                        for ic in 0..spec.in_c {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= spec.in_h as isize
                                        || ix >= spec.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at(&[b, ic, iy as usize, ix as usize])
                                        * weight.at(&[oc, ic, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[b, oc, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
    }

    #[test]
    fn spec_output_dims() {
        let s = spec3x3();
        assert_eq!((s.out_h(), s.out_w()), (5, 5)); // same-padding
        let s2 = Conv2dSpec { pad: 0, ..s };
        assert_eq!((s2.out_h(), s2.out_w()), (3, 3));
        let s3 = Conv2dSpec { stride: 2, ..s };
        assert_eq!((s3.out_h(), s3.out_w()), (3, 3));
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let spec = spec3x3();
        let input = rand_tensor(&[2, 2, 5, 5], 1);
        let weight = rand_tensor(&[3, 2, 3, 3], 2);
        let bias = rand_tensor(&[3], 3);
        let mut out = Tensor::zeros(&[2, 3, 5, 5]);
        let mut ws = Workspace::new();
        conv2d_forward(
            &spec,
            &input,
            &weight,
            Some(&bias),
            false,
            &mut out,
            &mut ws,
        );
        let reference = conv_ref(&spec, &input, &weight, Some(&bias));
        for (a, b) in out.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_forward_matches_per_image_reference() {
        let spec = spec3x3();
        let input = rand_tensor(&[5, 2, 5, 5], 40);
        let weight = rand_tensor(&[3, 2, 3, 3], 41);
        let bias = rand_tensor(&[3], 42);
        let mut fast = Tensor::zeros(&[5, 3, 5, 5]);
        let mut ws = Workspace::new();
        conv2d_forward(
            &spec,
            &input,
            &weight,
            Some(&bias),
            false,
            &mut fast,
            &mut ws,
        );
        let mut reference = Tensor::zeros(&[5, 3, 5, 5]);
        conv2d_forward_ref(&spec, &input, &weight, Some(&bias), &mut reference);
        for (a, b) in fast.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_relu_matches_separate_relu() {
        let spec = spec3x3();
        let input = rand_tensor(&[3, 2, 5, 5], 50);
        let weight = rand_tensor(&[3, 2, 3, 3], 51);
        let bias = rand_tensor(&[3], 52);
        let mut ws = Workspace::new();
        let mut fused = Tensor::zeros(&[3, 3, 5, 5]);
        conv2d_forward(
            &spec,
            &input,
            &weight,
            Some(&bias),
            true,
            &mut fused,
            &mut ws,
        );
        let mut plain = Tensor::zeros(&[3, 3, 5, 5]);
        conv2d_forward(
            &spec,
            &input,
            &weight,
            Some(&bias),
            false,
            &mut plain,
            &mut ws,
        );
        for (f, p) in fused.data().iter().zip(plain.data()) {
            assert_eq!(*f, p.max(0.0), "fused ReLU must equal separate ReLU");
        }
    }

    #[test]
    fn im2col_batch_stacks_per_image_blocks() {
        let spec = spec3x3();
        let input = rand_tensor(&[3, 2, 5, 5], 60);
        let (rows, cols) = (spec.col_rows(), spec.col_cols());
        let mut batched = vec![0.0f32; rows * 3 * cols];
        im2col_batch(&spec, 3, input.data(), &mut batched);
        let img_len = spec.in_c * spec.in_h * spec.in_w;
        let mut single = vec![0.0f32; rows * cols];
        for b in 0..3 {
            im2col(
                &spec,
                &input.data()[b * img_len..(b + 1) * img_len],
                &mut single,
            );
            for r in 0..rows {
                assert_eq!(
                    &batched[r * 3 * cols + b * cols..r * 3 * cols + (b + 1) * cols],
                    &single[r * cols..(r + 1) * cols],
                    "row {r} image {b}"
                );
            }
        }
    }

    #[test]
    fn forward_stride2_no_pad() {
        let spec = Conv2dSpec {
            in_c: 1,
            out_c: 1,
            in_h: 6,
            in_w: 6,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        let input = rand_tensor(&[1, 1, 6, 6], 4);
        let weight = rand_tensor(&[1, 1, 2, 2], 5);
        let mut out = Tensor::zeros(&[1, 1, 3, 3]);
        let mut ws = Workspace::new();
        conv2d_forward(&spec, &input, &weight, None, false, &mut out, &mut ws);
        let reference = conv_ref(&spec, &input, &weight, None);
        for (a, b) in out.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
        let spec = spec3x3();
        let x = rand_tensor(&[1, 2, 5, 5], 7);
        let rows = spec.col_rows() * spec.col_cols();
        let y = rand_tensor(&[rows], 8);
        let mut col = vec![0.0; rows];
        im2col(&spec, x.data(), &mut col);
        let lhs: f32 = col.iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let mut back = vec![0.0; x.numel()];
        col2im(&spec, y.data(), &mut back);
        let rhs: f32 = x.data().iter().zip(&back).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let spec = Conv2dSpec {
            in_c: 1,
            out_c: 2,
            in_h: 4,
            in_w: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let input = rand_tensor(&[1, 1, 4, 4], 10);
        let mut weight = rand_tensor(&[2, 1, 3, 3], 11);
        let go = rand_tensor(&[1, 2, 4, 4], 12);
        let mut gi = Tensor::zeros(&[1, 1, 4, 4]);
        let mut gw = Tensor::zeros(&[2, 1, 3, 3]);
        let mut gb = Tensor::zeros(&[2]);
        let mut ws = Workspace::new();
        conv2d_backward(
            &spec,
            &input,
            &weight,
            &go,
            &mut gi,
            &mut gw,
            Some(&mut gb),
            &mut ws,
        );

        // loss = sum(out * go); d loss / d w ~ finite difference.
        let eps = 1e-3;
        let loss = |w: &Tensor, ws: &mut Workspace| -> f32 {
            let mut out = Tensor::zeros(&[1, 2, 4, 4]);
            conv2d_forward(&spec, &input, w, None, false, &mut out, ws);
            out.data().iter().zip(go.data()).map(|(&o, &g)| o * g).sum()
        };
        for idx in [0usize, 4, 8, 17] {
            let orig = weight.data()[idx];
            weight.data_mut()[idx] = orig + eps;
            let lp = loss(&weight, &mut ws);
            weight.data_mut()[idx] = orig - eps;
            let lm = loss(&weight, &mut ws);
            weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = gw.data()[idx];
            assert!((fd - an).abs() < 1e-2, "dW[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let spec = Conv2dSpec {
            in_c: 1,
            out_c: 1,
            in_h: 4,
            in_w: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut input = rand_tensor(&[1, 1, 4, 4], 20);
        let weight = rand_tensor(&[1, 1, 3, 3], 21);
        let go = rand_tensor(&[1, 1, 4, 4], 22);
        let mut gi = Tensor::zeros(&[1, 1, 4, 4]);
        let mut gw = Tensor::zeros(&[1, 1, 3, 3]);
        let mut ws = Workspace::new();
        conv2d_backward(&spec, &input, &weight, &go, &mut gi, &mut gw, None, &mut ws);

        let eps = 1e-3;
        let loss = |x: &Tensor, ws: &mut Workspace| -> f32 {
            let mut out = Tensor::zeros(&[1, 1, 4, 4]);
            conv2d_forward(&spec, x, &weight, None, false, &mut out, ws);
            out.data().iter().zip(go.data()).map(|(&o, &g)| o * g).sum()
        };
        for idx in [0usize, 5, 10, 15] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let lp = loss(&input, &mut ws);
            input.data_mut()[idx] = orig - eps;
            let lm = loss(&input, &mut ws);
            input.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = gi.data()[idx];
            assert!((fd - an).abs() < 1e-2, "dX[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn bias_gradient_sums_grad_out() {
        let spec = Conv2dSpec {
            in_c: 1,
            out_c: 2,
            in_h: 3,
            in_w: 3,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input = rand_tensor(&[1, 1, 3, 3], 30);
        let weight = rand_tensor(&[2, 1, 1, 1], 31);
        let go = Tensor::ones(&[1, 2, 3, 3]);
        let mut gi = Tensor::zeros(&[1, 1, 3, 3]);
        let mut gw = Tensor::zeros(&[2, 1, 1, 1]);
        let mut gb = Tensor::zeros(&[2]);
        let mut ws = Workspace::new();
        conv2d_backward(
            &spec,
            &input,
            &weight,
            &go,
            &mut gi,
            &mut gw,
            Some(&mut gb),
            &mut ws,
        );
        assert_eq!(gb.data(), &[9.0, 9.0]);
    }
}
