//! Low-level kernels: GEMM, AXPY, softmax, reductions.
//!
//! `gemm` is the hot path of the whole DNN (both fully-connected layers and
//! im2col convolutions reduce to it), so it gets a cache-blocked kernel with
//! a transposed-B fast path. Everything else is straightforward.

/// Cache block size (elements) for the GEMM k/j loops. 64 f32 = 256 B per
/// row strip, small enough to keep three strips in L1.
const BLOCK: usize = 64;

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// `op(A)` is `A` (m×k) if `!ta`, else `Aᵀ` where `A` is stored k×m.
/// Likewise `op(B)` is k×n if `!tb`, else `B` is stored n×k.
/// All matrices are contiguous row-major. `C` is m×n.
// BLAS-style signature on purpose: callers pass raw dims/flags.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), k * n, "B buffer size");
    assert_eq!(c.len(), m * n, "C buffer size");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (false, false) => gemm_nn(m, n, k, alpha, a, b, c),
        (false, true) => gemm_nt(m, n, k, alpha, a, b, c),
        (true, false) => gemm_tn(m, n, k, alpha, a, b, c),
        (true, true) => gemm_tt(m, n, k, alpha, a, b, c),
    }
}

/// C += alpha * A(m×k) * B(k×n). ikj loop order: the inner loop streams B and
/// C rows contiguously, and `a_ik` is hoisted to a register.
fn gemm_nn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for kb in (0..k).step_by(BLOCK) {
        let kend = (kb + BLOCK).min(k);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in kb..kend {
                let a_ip = alpha * a[i * k + p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += a_ip * bv;
                }
            }
        }
    }
}

/// C += alpha * A(m×k) * Bᵀ where B is stored n×k. Dot-product form: both
/// operand rows are contiguous, ideal for the FC backward-weight pass.
fn gemm_nt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// C += alpha * Aᵀ * B where A is stored k×m, B is k×n.
fn gemm_tn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let a_pi = alpha * a_row[i];
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_pi * bv;
            }
        }
    }
}

/// C += alpha * Aᵀ * Bᵀ where A is k×m, B is n×k.
fn gemm_tt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[j * k + p];
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// `y += alpha * x`, elementwise.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Index of the maximum element, first on ties. Panics on empty input.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically-stable in-place softmax over a single row.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Numerically-stable in-place log-softmax over a single row.
pub fn log_softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let logsum = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x.iter_mut() {
        *v -= logsum;
    }
}

/// Dot product.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop used as the reference implementation.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        ta: bool,
        tb: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let av = if ta { a[p * m + i] } else { a[i * k + p] };
                    let bv = if tb { b[j * k + p] } else { b[p * n + j] };
                    acc += av * bv;
                }
                c[i * n + j] = alpha * acc + beta * c[i * n + j];
            }
        }
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_variant(ta: bool, tb: bool, m: usize, n: usize, k: usize) {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let c0 = rand_vec(m * n, 3);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(ta, tb, m, n, k, 0.7, &a, &b, 0.3, &mut c_fast);
        gemm_ref(ta, tb, m, n, k, 0.7, &a, &b, 0.3, &mut c_ref);
        for (f, r) in c_fast.iter().zip(&c_ref) {
            assert!((f - r).abs() < 1e-4, "gemm({ta},{tb}) mismatch: {f} vs {r}");
        }
    }

    #[test]
    fn gemm_nn_matches_reference() {
        check_variant(false, false, 7, 9, 13);
        check_variant(false, false, 65, 70, 130); // exercise blocking
    }

    #[test]
    fn gemm_nt_matches_reference() {
        check_variant(false, true, 7, 9, 13);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        check_variant(true, false, 7, 9, 13);
    }

    #[test]
    fn gemm_tt_matches_reference() {
        check_variant(true, true, 7, 9, 13);
    }

    #[test]
    fn gemm_beta_zero_overwrites_garbage() {
        // beta = 0 must work even if C holds NaN.
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![f32::NAN; 4];
        gemm(false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn gemm_alpha_zero_scales_only() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![2.0f32; 4];
        gemm(false, false, 2, 2, 2, 0.0, &a, &b, 0.5, &mut c);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = vec![1000.0, 1001.0, 1002.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(x.iter().all(|&v| v.is_finite() && v > 0.0));
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x0 = vec![0.3f32, -1.2, 2.0, 0.0];
        let mut sm = x0.clone();
        softmax_inplace(&mut sm);
        let mut lsm = x0;
        log_softmax_inplace(&mut lsm);
        for (s, l) in sm.iter().zip(&lsm) {
            assert!((s.ln() - l).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn empty_softmax_is_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_inplace(&mut x);
        log_softmax_inplace(&mut x);
    }
}
