//! Low-level kernels: GEMM, AXPY, softmax, reductions.
//!
//! # GEMM kernel design
//!
//! `gemm` is the hot path of the whole DNN (fully-connected layers and
//! im2col convolutions both reduce to it), so it gets a BLIS-style packed,
//! register-blocked kernel:
//!
//! * **Packing.** The A operand is packed once per call into row panels of
//!   `MR` rows (panel-major over k, zero-padded at the edge); the B operand
//!   is packed per `NC`-column block into column panels of `NR` columns.
//!   Packing normalizes all four transpose variants into one layout, so a
//!   single micro-kernel serves `gemm(ta, tb, ...)` for every flag combo,
//!   and it turns the inner loop's memory traffic into two contiguous
//!   streams.
//! * **Micro-kernel.** The innermost loop computes an `MR×NR` (4×8) tile of
//!   C held entirely in registers: one pass over k, `MR·NR` independent
//!   accumulators, contiguous loads from the packed panels. This is the
//!   register-blocking that the previous cache-blocked kernel lacked — C is
//!   read and written once per tile instead of once per k-step.
//! * **Epilogue fusion.** [`gemm_ep`] applies an optional per-row bias
//!   (convolution: one bias per output channel), per-column bias (linear:
//!   one per output feature) and ReLU inside the tile write-back, so layers
//!   need no separate output pass.
//! * **Multithreading.** Above [`MT_FLOP_THRESHOLD`] (2·m·n·k flops) and
//!   when the persistent worker pool (see [`crate::pool`]) has more than
//!   one thread, the M dimension is partitioned into `MR`-aligned strips
//!   executed in parallel. Strips pack their own operand panels, so the
//!   result is bitwise identical to the single-threaded kernel.
//!
//! The previous generation of kernels is retained under [`baseline`] as the
//! numerical reference (proptests compare against it) and as the "before"
//! measurement for `BENCH_inference.json`.

use std::cell::RefCell;

/// Micro-kernel tile rows (accumulator rows held in registers).
const MR: usize = 4;
/// Micro-kernel tile columns (one or two SIMD vectors wide).
const NR: usize = 8;
/// Column block size: B panels of `k × NC` stay cache-resident while every
/// A panel streams past them. Multiple of `NR`.
const NC: usize = 512;
/// Flop count (2·m·n·k) above which `gemm`/`gemm_ep` dispatch to the
/// multithreaded path automatically (when the pool has >1 thread).
pub const MT_FLOP_THRESHOLD: usize = 8 * 1024 * 1024;

/// Optional operations fused into the GEMM output loop.
///
/// Biases are added and ReLU applied to the *final* value of each C element
/// (i.e. after `beta*C + alpha*op(A)op(B)` has been accumulated), exactly
/// once, during tile write-back.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// `c[i, j] += bias_row[i]` — per-output-channel conv bias.
    pub bias_row: Option<&'a [f32]>,
    /// `c[i, j] += bias_col[j]` — per-output-feature linear bias.
    pub bias_col: Option<&'a [f32]>,
    /// Clamp negative outputs to zero after the bias.
    pub relu: bool,
}

impl Epilogue<'_> {
    fn is_noop(&self) -> bool {
        self.bias_row.is_none() && self.bias_col.is_none() && !self.relu
    }
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// `op(A)` is `A` (m×k) if `!ta`, else `Aᵀ` where `A` is stored k×m.
/// Likewise `op(B)` is k×n if `!tb`, else `B` is stored n×k.
/// All matrices are contiguous row-major. `C` is m×n.
// BLAS-style signature on purpose: callers pass raw dims/flags.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    gemm_ep(ta, tb, m, n, k, alpha, a, b, beta, c, Epilogue::default());
}

/// [`gemm`] with a fused output epilogue (bias and/or ReLU).
#[allow(clippy::too_many_arguments)]
pub fn gemm_ep(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ep: Epilogue,
) {
    check_dims(m, n, k, a, b, c, &ep);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        epilogue_only(m, n, c, &ep);
        return;
    }
    let flops = 2 * m * n * k;
    if flops >= MT_FLOP_THRESHOLD && crate::pool::effective_parallelism() > 1 {
        gemm_strips_mt(ta, tb, m, n, k, alpha, a, b, c, &ep);
    } else {
        gemm_strip(ta, tb, m, n, k, alpha, a, b, c, &ep);
    }
}

/// Explicitly multithreaded [`gemm`]: partitions M-strips across the
/// persistent worker pool regardless of problem size (falls back to the
/// single-threaded kernel when the pool has one thread). Bitwise identical
/// to the single-threaded result.
#[allow(clippy::too_many_arguments)]
pub fn gemm_mt(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    let ep = Epilogue::default();
    check_dims(m, n, k, a, b, c, &ep);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_strips_mt(ta, tb, m, n, k, alpha, a, b, c, &ep);
}

fn check_dims(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32], ep: &Epilogue) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), k * n, "B buffer size");
    assert_eq!(c.len(), m * n, "C buffer size");
    if let Some(br) = ep.bias_row {
        assert_eq!(br.len(), m, "bias_row length");
    }
    if let Some(bc) = ep.bias_col {
        assert_eq!(bc.len(), n, "bias_col length");
    }
}

fn scale_c(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Degenerate path: no accumulation happened, but the epilogue still has to
/// be applied to the (beta-scaled) C.
fn epilogue_only(m: usize, n: usize, c: &mut [f32], ep: &Epilogue) {
    if ep.is_noop() {
        return;
    }
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        let br = ep.bias_row.map_or(0.0, |b| b[i]);
        for (j, v) in row.iter_mut().enumerate() {
            let mut x = *v + br + ep.bias_col.map_or(0.0, |b| b[j]);
            if ep.relu {
                x = x.max(0.0);
            }
            *v = x;
        }
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread packing buffers (A panels, B panels). Reused across calls
    /// so steady-state GEMM performs no heap allocation.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[inline(always)]
fn a_at(ta: bool, a: &[f32], m: usize, k: usize, i: usize, p: usize) -> f32 {
    if ta {
        a[p * m + i]
    } else {
        a[i * k + p]
    }
}

#[inline(always)]
fn b_at(tb: bool, b: &[f32], k: usize, n: usize, p: usize, j: usize) -> f32 {
    if tb {
        b[j * k + p]
    } else {
        b[p * n + j]
    }
}

/// Pack rows `[row0, row1)` of `op(A)` into `MR`-row panels, panel-major
/// over k, zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(ta: bool, a: &[f32], m: usize, k: usize, row0: usize, row1: usize, out: &mut Vec<f32>) {
    let rows = row1 - row0;
    let panels = rows.div_ceil(MR);
    out.clear();
    out.resize(panels * MR * k, 0.0);
    for ip in 0..panels {
        let base = ip * MR * k;
        let i0 = row0 + ip * MR;
        let live = MR.min(row1 - i0);
        if !ta && live == MR {
            // Fast path: gather four contiguous source rows.
            let r0 = &a[i0 * k..(i0 + 1) * k];
            let r1 = &a[(i0 + 1) * k..(i0 + 2) * k];
            let r2 = &a[(i0 + 2) * k..(i0 + 3) * k];
            let r3 = &a[(i0 + 3) * k..(i0 + 4) * k];
            let dst = &mut out[base..base + MR * k];
            for (p, d) in dst.chunks_exact_mut(MR).enumerate() {
                d[0] = r0[p];
                d[1] = r1[p];
                d[2] = r2[p];
                d[3] = r3[p];
            }
        } else {
            for p in 0..k {
                for i in 0..live {
                    out[base + p * MR + i] = a_at(ta, a, m, k, i0 + i, p);
                }
            }
        }
    }
}

/// Pack columns `[col0, col1)` of `op(B)` into `NR`-column panels,
/// panel-major over k, zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(tb: bool, b: &[f32], k: usize, n: usize, col0: usize, col1: usize, out: &mut Vec<f32>) {
    let cols = col1 - col0;
    let panels = cols.div_ceil(NR);
    out.clear();
    out.resize(panels * NR * k, 0.0);
    for jp in 0..panels {
        let base = jp * NR * k;
        let j0 = col0 + jp * NR;
        let live = NR.min(col1 - j0);
        if !tb && live == NR {
            // Fast path: each k-step copies NR contiguous B elements.
            let dst = &mut out[base..base + NR * k];
            for (p, d) in dst.chunks_exact_mut(NR).enumerate() {
                d.copy_from_slice(&b[p * n + j0..p * n + j0 + NR]);
            }
        } else {
            for p in 0..k {
                for j in 0..live {
                    out[base + p * NR + j] = b_at(tb, b, k, n, p, j0 + j);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Micro-kernel
// ---------------------------------------------------------------------------

/// Micro-kernel signature: accumulate one `MR×NR` tile over the full k
/// extent of two packed panels, returning the tile.
type Microkernel = fn(usize, &[f32], &[f32]) -> [[f32; NR]; MR];

/// Portable micro-kernel: `MR·NR` accumulators live in registers for the
/// entire loop (autovectorized; 2×4-lane on baseline x86-64).
fn microkernel_scalar(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a4, b8) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        for (&ai, acc_row) in a4.iter().zip(acc.iter_mut()) {
            for (av, &bv) in acc_row.iter_mut().zip(b8) {
                *av += ai * bv;
            }
        }
    }
    acc
}

/// Explicit AVX2+FMA micro-kernel, selected by runtime feature detection so
/// the crate still compiles to (and runs on) baseline x86-64.
#[cfg(target_arch = "x86_64")]
mod kernels_x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// Cached `avx2 && fma` runtime check.
    pub fn avx2_available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// 4×8 tile in four 256-bit FMA accumulators, with a second interleaved
    /// accumulator set over odd k-steps to cover FMA latency (the two sets
    /// are summed once at the end).
    ///
    /// # Safety
    /// Caller must ensure AVX2 and FMA are available (see
    /// [`avx2_available`]). `ap`/`bp` must hold at least `k*MR` / `k*NR`
    /// elements.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::needless_range_loop)] // i indexes two lockstep arrays
    pub unsafe fn microkernel_4x8(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
        debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
        let apt = ap.as_ptr();
        let bpt = bp.as_ptr();
        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];
        let mut p = 0;
        while p + 2 <= k {
            let b0 = _mm256_loadu_ps(bpt.add(p * NR));
            let b1 = _mm256_loadu_ps(bpt.add((p + 1) * NR));
            for i in 0..MR {
                let a0 = _mm256_set1_ps(*apt.add(p * MR + i));
                acc0[i] = _mm256_fmadd_ps(a0, b0, acc0[i]);
                let a1 = _mm256_set1_ps(*apt.add((p + 1) * MR + i));
                acc1[i] = _mm256_fmadd_ps(a1, b1, acc1[i]);
            }
            p += 2;
        }
        if p < k {
            let b0 = _mm256_loadu_ps(bpt.add(p * NR));
            for i in 0..MR {
                let a0 = _mm256_set1_ps(*apt.add(p * MR + i));
                acc0[i] = _mm256_fmadd_ps(a0, b0, acc0[i]);
            }
        }
        let mut out = [[0.0f32; NR]; MR];
        for i in 0..MR {
            _mm256_storeu_ps(out[i].as_mut_ptr(), _mm256_add_ps(acc0[i], acc1[i]));
        }
        out
    }
}

/// Pick the best micro-kernel for this machine (cached runtime detection).
fn select_microkernel() -> Microkernel {
    #[cfg(target_arch = "x86_64")]
    if kernels_x86::avx2_available() {
        // SAFETY: feature availability checked the line above.
        return |k, ap, bp| unsafe { kernels_x86::microkernel_4x8(k, ap, bp) };
    }
    microkernel_scalar
}

/// Base pointer of C, shareable across pool workers. Concurrent
/// [`gemm_block`] calls write disjoint row/column sub-rectangles, so the
/// per-tile-row slices they create never overlap.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
unsafe impl Sync for CPtr {}
unsafe impl Send for CPtr {}

/// Write an accumulated tile into C (rows `i0..`, columns `j0..` of the
/// full m×n matrix) with the epilogue fused in.
///
/// # Safety
/// The rectangle `[i0, i0+live_m) × [j0, j0+live_n)` must be inside C and
/// not concurrently accessed by any other thread.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn write_tile(
    acc: &[[f32; NR]; MR],
    alpha: f32,
    c: CPtr,
    n: usize,
    i0: usize,
    j0: usize,
    live_m: usize,
    live_n: usize,
    ep: &Epilogue,
) {
    for (i, acc_row) in acc.iter().enumerate().take(live_m) {
        let abs_row = i0 + i;
        // SAFETY: per the contract, this tile row is in bounds and
        // exclusively ours.
        let row = unsafe { std::slice::from_raw_parts_mut(c.0.add(abs_row * n + j0), live_n) };
        let br = ep.bias_row.map_or(0.0, |b| b[abs_row]);
        if ep.is_noop() {
            for (v, &a) in row.iter_mut().zip(acc_row) {
                *v += alpha * a;
            }
        } else {
            for (j, v) in row.iter_mut().enumerate() {
                let mut x = *v + alpha * acc_row[j] + br;
                if let Some(bc) = ep.bias_col {
                    x += bc[j0 + j];
                }
                if ep.relu {
                    x = x.max(0.0);
                }
                *v = x;
            }
        }
    }
}

/// Compute the C sub-rectangle rows `[row0, row1)` × columns `[col0, col1)`
/// on one thread: pack the A rows once, then stream `NC`-column B blocks
/// past them. `col0` must be `NC`-aligned so MT column strips produce the
/// same panel boundaries as the single-threaded kernel.
///
/// # Safety
/// The rectangle must be inside C and not concurrently written by any
/// other thread.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_block(
    ta: bool,
    tb: bool,
    row0: usize,
    row1: usize,
    col0: usize,
    col1: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: CPtr,
    ep: &Epilogue,
) {
    let kernel = select_microkernel();
    PACK_BUFS.with(|bufs| {
        let (apack, bpack) = &mut *bufs.borrow_mut();
        pack_a(ta, a, m, k, row0, row1, apack);
        let row_panels = (row1 - row0).div_ceil(MR);
        let mut jc = col0;
        while jc < col1 {
            let jc_end = (jc + NC).min(col1);
            pack_b(tb, b, k, n, jc, jc_end, bpack);
            let col_panels = (jc_end - jc).div_ceil(NR);
            for ip in 0..row_panels {
                let i0 = row0 + ip * MR;
                let live_m = MR.min(row1 - i0);
                let ap = &apack[ip * MR * k..(ip + 1) * MR * k];
                for jp in 0..col_panels {
                    let j0 = jc + jp * NR;
                    let live_n = NR.min(jc_end - j0);
                    let bp = &bpack[jp * NR * k..(jp + 1) * NR * k];
                    let acc = kernel(k, ap, bp);
                    // SAFETY: forwarded from this function's contract.
                    unsafe { write_tile(&acc, alpha, c, n, i0, j0, live_m, live_n, ep) };
                }
            }
            jc = jc_end;
        }
    });
}

/// Single-threaded kernel over the whole matrix.
#[allow(clippy::too_many_arguments)]
fn gemm_strip(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ep: &Epilogue,
) {
    // SAFETY: `c` is exclusively borrowed; the block is the full matrix.
    unsafe {
        gemm_block(
            ta,
            tb,
            0,
            m,
            0,
            n,
            m,
            n,
            k,
            alpha,
            a,
            b,
            CPtr(c.as_mut_ptr()),
            ep,
        )
    };
}

/// Partition C across the worker pool and run the strips in parallel.
///
/// The split dimension is chosen to duplicate the **cheaper** re-pack:
/// row strips share nothing and each re-packs all of B (`k·n`), column
/// strips each re-pack all of A (`m·k`) but pack disjoint parts of B. The
/// conv GEMM this crate serves (`m = out_c` small, `n = B·pixels` huge)
/// takes the column split; square/tall GEMMs take the row split. Strips
/// are `MR`/`NC`-aligned, so packing boundaries — and therefore every
/// element's accumulation order — are identical to the single-threaded
/// kernel (bitwise-equal results). The dispatch is allocation-free (see
/// [`crate::pool::run_strips`]), preserving the workspace path's
/// zero-heap-allocation steady state.
#[allow(clippy::too_many_arguments)]
fn gemm_strips_mt(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ep: &Epilogue,
) {
    let threads = crate::pool::effective_parallelism();
    let row_panels = m.div_ceil(MR);
    let col_blocks = n.div_ceil(NC);
    let c_ptr = CPtr(c.as_mut_ptr());
    let c_ptr = &c_ptr; // capture the Sync wrapper, not the raw pointer

    // Column split: duplicates the A pack, keeps every B element packed
    // exactly once. Preferred when A is the smaller operand (m < n) and
    // there are enough NC blocks to spread.
    if m < n && col_blocks >= 2 && threads > 1 {
        let strips = threads.min(col_blocks);
        let strip_cols = col_blocks.div_ceil(strips) * NC;
        let n_strips = n.div_ceil(strip_cols);
        crate::pool::run_strips(n_strips, &|s| {
            let col0 = s * strip_cols;
            let col1 = (col0 + strip_cols).min(n);
            // SAFETY: strip `s` covers columns [col0, col1); strips are
            // disjoint, so no two workers touch the same C element.
            unsafe {
                gemm_block(ta, tb, 0, m, col0, col1, m, n, k, alpha, a, b, *c_ptr, ep);
            }
        });
        return;
    }

    let strips = threads.min(row_panels).max(1);
    if strips <= 1 {
        gemm_strip(ta, tb, m, n, k, alpha, a, b, c, ep);
        return;
    }
    let strip_rows = row_panels.div_ceil(strips) * MR;
    let n_strips = m.div_ceil(strip_rows);
    crate::pool::run_strips(n_strips, &|s| {
        let row0 = s * strip_rows;
        let row1 = (row0 + strip_rows).min(m);
        // SAFETY: strip `s` covers rows [row0, row1); strips are disjoint,
        // so no two workers touch the same C element.
        unsafe {
            gemm_block(ta, tb, row0, row1, 0, n, m, n, k, alpha, a, b, *c_ptr, ep);
        }
    });
}

// ---------------------------------------------------------------------------
// Retained baseline kernels
// ---------------------------------------------------------------------------

/// The previous generation of GEMM kernels (scalar, single-threaded, coarse
/// cache blocking). Retained as the numerical reference for the packed
/// micro-kernel's parity tests and as the "before" side of the
/// `BENCH_inference.json` speedup record.
pub mod baseline {
    /// Cache block size (elements) for the GEMM k/j loops.
    const BLOCK: usize = 64;

    /// `C = alpha * op(A) * op(B) + beta * C`, pre-rewrite implementation.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        ta: bool,
        tb: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        assert_eq!(a.len(), m * k, "A buffer size");
        assert_eq!(b.len(), k * n, "B buffer size");
        assert_eq!(c.len(), m * n, "C buffer size");

        if beta == 0.0 {
            c.fill(0.0);
        } else if beta != 1.0 {
            for x in c.iter_mut() {
                *x *= beta;
            }
        }
        if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
            return;
        }

        match (ta, tb) {
            (false, false) => gemm_nn(m, n, k, alpha, a, b, c),
            (false, true) => gemm_nt(m, n, k, alpha, a, b, c),
            (true, false) => gemm_tn(m, n, k, alpha, a, b, c),
            (true, true) => gemm_tt(m, n, k, alpha, a, b, c),
        }
    }

    /// C += alpha * A(m×k) * B(k×n). ikj loop order.
    fn gemm_nn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
        for kb in (0..k).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(k);
            for i in 0..m {
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in kb..kend {
                    let a_ip = alpha * a[i * k + p];
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += a_ip * bv;
                    }
                }
            }
        }
    }

    /// C += alpha * A(m×k) * Bᵀ where B is stored n×k. Dot-product form.
    fn gemm_nt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                c[i * n + j] += alpha * acc;
            }
        }
    }

    /// C += alpha * Aᵀ * B where A is stored k×m, B is k×n.
    fn gemm_tn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for i in 0..m {
                let a_pi = alpha * a_row[i];
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += a_pi * bv;
                }
            }
        }
    }

    /// C += alpha * Aᵀ * Bᵀ where A is k×m, B is n×k.
    fn gemm_tt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[p * m + i] * b[j * k + p];
                }
                c[i * n + j] += alpha * acc;
            }
        }
    }
}

/// `y += alpha * x`, elementwise.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Index of the maximum element, first on ties. Panics on empty input.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically-stable in-place softmax over a single row.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Numerically-stable in-place log-softmax over a single row.
pub fn log_softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let logsum = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x.iter_mut() {
        *v -= logsum;
    }
}

/// Dot product.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop used as the reference implementation.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        ta: bool,
        tb: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let av = if ta { a[p * m + i] } else { a[i * k + p] };
                    let bv = if tb { b[j * k + p] } else { b[p * n + j] };
                    acc += av * bv;
                }
                c[i * n + j] = alpha * acc + beta * c[i * n + j];
            }
        }
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_variant(ta: bool, tb: bool, m: usize, n: usize, k: usize) {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let c0 = rand_vec(m * n, 3);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(ta, tb, m, n, k, 0.7, &a, &b, 0.3, &mut c_fast);
        gemm_ref(ta, tb, m, n, k, 0.7, &a, &b, 0.3, &mut c_ref);
        for (f, r) in c_fast.iter().zip(&c_ref) {
            assert!((f - r).abs() < 1e-4, "gemm({ta},{tb}) mismatch: {f} vs {r}");
        }
    }

    #[test]
    fn gemm_nn_matches_reference() {
        check_variant(false, false, 7, 9, 13);
        check_variant(false, false, 65, 70, 130); // exercise blocking
    }

    #[test]
    fn gemm_nt_matches_reference() {
        check_variant(false, true, 7, 9, 13);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        check_variant(true, false, 7, 9, 13);
    }

    #[test]
    fn gemm_tt_matches_reference() {
        check_variant(true, true, 7, 9, 13);
    }

    #[test]
    fn tile_straddling_shapes_match_reference() {
        // Exercise every edge-panel combination around the 4×8 tile.
        for &m in &[1usize, 3, 4, 5, 8, 9] {
            for &n in &[1usize, 7, 8, 9, 16, 17] {
                for &k in &[1usize, 2, 5] {
                    check_variant(false, false, m, n, k);
                    check_variant(true, true, m, n, k);
                }
            }
        }
    }

    #[test]
    fn gemm_beta_zero_overwrites_garbage() {
        // beta = 0 must work even if C holds NaN.
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![f32::NAN; 4];
        gemm(false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn gemm_alpha_zero_scales_only() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![2.0f32; 4];
        gemm(false, false, 2, 2, 2, 0.0, &a, &b, 0.5, &mut c);
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn epilogue_bias_row_and_relu() {
        // 2×2 result: [[2, 2], [2, 2]], bias_row = [1, -5] → [[3,3],[0,0]].
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![0.0f32; 4];
        let bias = [1.0f32, -5.0];
        gemm_ep(
            false,
            false,
            2,
            2,
            2,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            Epilogue {
                bias_row: Some(&bias),
                bias_col: None,
                relu: true,
            },
        );
        assert_eq!(c, vec![3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn epilogue_bias_col_matches_manual() {
        let a = rand_vec(3 * 4, 10);
        let b = rand_vec(4 * 5, 11);
        let bias = rand_vec(5, 12);
        let mut c_fused = vec![0.0f32; 15];
        gemm_ep(
            false,
            false,
            3,
            5,
            4,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_fused,
            Epilogue {
                bias_row: None,
                bias_col: Some(&bias),
                relu: false,
            },
        );
        let mut c_manual = vec![0.0f32; 15];
        gemm(false, false, 3, 5, 4, 1.0, &a, &b, 0.0, &mut c_manual);
        for i in 0..3 {
            for j in 0..5 {
                c_manual[i * 5 + j] += bias[j];
            }
        }
        assert_eq!(c_fused, c_manual);
    }

    #[test]
    fn epilogue_applied_when_alpha_zero() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![-1.0f32, 2.0, -3.0, 4.0];
        gemm_ep(
            false,
            false,
            2,
            2,
            2,
            0.0,
            &a,
            &b,
            1.0,
            &mut c,
            Epilogue {
                bias_row: None,
                bias_col: None,
                relu: true,
            },
        );
        assert_eq!(c, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn mt_matches_single_threaded_bitwise() {
        let (m, n, k) = (67, 33, 29);
        let a = rand_vec(m * k, 20);
        let b = rand_vec(k * n, 21);
        let mut c_st = vec![0.0f32; m * n];
        let mut c_mt = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_st);
        gemm_mt(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_mt);
        assert_eq!(c_st, c_mt, "MT strips must be bitwise identical");
    }

    #[test]
    fn new_kernel_matches_baseline_kernel() {
        for &(m, n, k) in &[(13, 17, 19), (64, 64, 64), (100, 50, 75)] {
            let a = rand_vec(m * k, 30);
            let b = rand_vec(k * n, 31);
            let mut c_new = vec![0.0f32; m * n];
            let mut c_old = vec![0.0f32; m * n];
            gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_new);
            baseline::gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_old);
            for (x, y) in c_new.iter().zip(&c_old) {
                assert!((x - y).abs() < 1e-4 * k as f32, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = vec![1000.0, 1001.0, 1002.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(x.iter().all(|&v| v.is_finite() && v > 0.0));
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x0 = vec![0.3f32, -1.2, 2.0, 0.0];
        let mut sm = x0.clone();
        softmax_inplace(&mut sm);
        let mut lsm = x0;
        log_softmax_inplace(&mut lsm);
        for (s, l) in sm.iter().zip(&lsm) {
            assert!((s.ln() - l).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn empty_softmax_is_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_inplace(&mut x);
        log_softmax_inplace(&mut x);
    }
}
