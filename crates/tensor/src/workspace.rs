//! Reusable scratch memory for the inference hot path.
//!
//! A [`Workspace`] owns every transient buffer a forward pass needs — the
//! batched im2col matrix, the GEMM staging buffer, and a recycling pool of
//! activation buffers — so steady-state inference performs **zero heap
//! allocations**: buffers grow during the first (warm-up) pass and are
//! reused verbatim afterwards.
//!
//! Two usage styles:
//!
//! * **Explicit** — long-lived inference owners (evaluators, benchmark
//!   loops) hold a `Workspace` and thread it through `*_ws` forward
//!   methods.
//! * **Thread-local** — the allocation-free convenience for APIs that must
//!   stay `&self`-pure (e.g. `Conv2d::forward`): [`Workspace::with_thread`]
//!   hands out a per-thread instance, so repeated calls on one thread reuse
//!   scratch without any synchronization.

use std::cell::RefCell;

/// Scratch arena for forward passes. See the module docs.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Batched im2col matrix (`[col_rows, batch * col_cols]`).
    col: Vec<f32>,
    /// GEMM output staging (`[out_c, batch * col_cols]`), scattered into the
    /// NCHW output afterwards.
    stage: Vec<f32>,
    /// Recycled activation buffers, leased and released by layer forwards.
    pool: Vec<Vec<f32>>,
    /// Number of times any buffer had to grow (diagnostic: must stop
    /// increasing after warm-up).
    grow_events: u64,
}

impl Workspace {
    /// Empty workspace; buffers are grown on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// The im2col buffer, resized to `len` (contents unspecified).
    pub fn col_buf(&mut self, len: usize) -> &mut [f32] {
        if self.col.capacity() < len {
            self.grow_events += 1;
        }
        self.col.resize(len, 0.0);
        &mut self.col[..len]
    }

    /// The im2col buffer and the GEMM staging buffer together (distinct
    /// fields, so both can be borrowed mutably at once).
    pub fn col_and_stage(&mut self, col_len: usize, stage_len: usize) -> (&mut [f32], &mut [f32]) {
        if self.col.capacity() < col_len || self.stage.capacity() < stage_len {
            self.grow_events += 1;
        }
        self.col.resize(col_len, 0.0);
        self.stage.resize(stage_len, 0.0);
        (&mut self.col[..col_len], &mut self.stage[..stage_len])
    }

    /// Lease a buffer of exactly `numel` elements from the recycling pool
    /// (best capacity fit). Contents are unspecified — callers must fully
    /// overwrite the buffer. Pair with [`Workspace::release`] to keep
    /// steady-state inference allocation-free.
    pub fn lease(&mut self, numel: usize) -> Vec<f32> {
        // Best fit: smallest pooled buffer whose capacity suffices; if none
        // fits, take the largest and let it grow (capacities converge to the
        // working set's maxima after one pass).
        let mut best: Option<usize> = None;
        let mut largest: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= numel {
                if best.is_none_or(|j| self.pool[j].capacity() > b.capacity()) {
                    best = Some(i);
                }
            } else if largest.is_none_or(|j| self.pool[j].capacity() < b.capacity()) {
                largest = Some(i);
            }
        }
        let mut buf = match best.or(largest) {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        if buf.capacity() < numel {
            self.grow_events += 1;
        }
        buf.resize(numel, 0.0);
        buf
    }

    /// Return a leased buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// How many times any buffer grew. Stable across calls ⇔ steady-state
    /// forward passes are allocation-free.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Run `f` with this thread's shared workspace. Used by `&self`-pure
    /// forward APIs that cannot thread an explicit workspace.
    pub fn with_thread<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
        thread_local! {
            static WS: RefCell<Workspace> = RefCell::new(Workspace::new());
        }
        WS.with(|ws| f(&mut ws.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_release_roundtrip_reuses_capacity() {
        let mut ws = Workspace::new();
        let a = ws.lease(100);
        let grown = ws.grow_events();
        ws.release(a);
        let b = ws.lease(80);
        assert_eq!(b.len(), 80);
        assert_eq!(ws.grow_events(), grown, "reuse must not grow");
        ws.release(b);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.lease(10);
        let big = ws.lease(1000);
        let small_cap = small.capacity();
        ws.release(small);
        ws.release(big);
        let got = ws.lease(8);
        assert!(got.capacity() <= small_cap.max(10), "picked the big buffer");
        ws.release(got);
    }

    #[test]
    fn col_and_stage_are_independent() {
        let mut ws = Workspace::new();
        let (c, s) = ws.col_and_stage(16, 8);
        c[0] = 1.0;
        s[0] = 2.0;
        assert_eq!(c.len(), 16);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn grow_events_stabilize() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let (c, s) = ws.col_and_stage(64, 32);
            c[0] += 1.0;
            s[0] += 1.0;
            let b = ws.lease(128);
            ws.release(b);
        }
        let after_warmup = ws.grow_events();
        for _ in 0..10 {
            let (_, _) = ws.col_and_stage(64, 32);
            let b = ws.lease(128);
            ws.release(b);
        }
        assert_eq!(ws.grow_events(), after_warmup);
    }

    #[test]
    fn with_thread_persists_across_calls() {
        let g0 = Workspace::with_thread(|ws| {
            let b = ws.lease(256);
            ws.release(b);
            ws.grow_events()
        });
        let g1 = Workspace::with_thread(|ws| {
            let b = ws.lease(256);
            ws.release(b);
            ws.grow_events()
        });
        assert_eq!(g0, g1, "second call must reuse the pooled buffer");
    }
}
