//! A small persistent worker pool for multithreaded kernels.
//!
//! The pool exists so [`crate::ops::gemm_mt`] can partition M-strips across
//! cores without paying a thread-spawn per call: workers are started once
//! (lazily, on first parallel dispatch) and then sleep on a condvar between
//! jobs. Dispatch is **allocation-free**: [`run_strips`] publishes a single
//! caller-stack descriptor (a pointer to the strip closure plus atomic
//! work/completion counters) that workers pull strip indices from, so the
//! steady-state zero-heap-allocation guarantee of the inference workspace
//! holds even when GEMMs auto-engage the multithreaded path.
//!
//! Sizing: `available_parallelism()` capped at 8 (GEMM strips stop scaling
//! long before that on shared caches); `TENSOR_THREADS` overrides exactly,
//! uncapped. With one hardware thread the pool is never started and
//! [`run_strips`] degrades to an inline loop on the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock, shrugging off poison: a strip panic unwinds through `run_strips`
/// while locks in this module are held, but every state they guard (the
/// slot option, the dispatch counters) is consistent at each release
/// point, so later GEMMs must not die with an unrelated `PoisonError`.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One in-flight dispatch, owned by the caller's stack frame.
struct Dispatch {
    /// The strip closure. Raw pointer so the caller lifetime is erased;
    /// kept valid until every registered worker deregisters (see
    /// [`run_strips`]).
    task: *const (dyn Fn(usize) + Sync),
    strips: usize,
    /// Next strip index to claim.
    next: AtomicUsize,
    /// Strips fully executed.
    done: AtomicUsize,
    /// Workers currently holding a reference to this dispatch.
    active: AtomicUsize,
    /// First panic payload raised inside a worker-run strip, re-thrown on
    /// the caller.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// The published dispatch: a sequence number (so a worker never re-enters
/// a dispatch it already drained) plus the descriptor pointer.
#[derive(Clone, Copy)]
struct Slot {
    seq: u64,
    d: *const Dispatch,
}

// SAFETY: the pointers stay valid while reachable from the slot — the
// publishing caller does not return (and thus does not pop its stack
// frame) until `done == strips` and `active == 0`.
unsafe impl Send for Slot {}

struct Shared {
    slot: Mutex<Option<Slot>>,
    ready: Condvar,
}

struct PoolInner {
    shared: Arc<Shared>,
    /// Serializes concurrent [`run_strips`] callers (one dispatch owns the
    /// pool at a time; the loser blocks, it does not spin or allocate).
    dispatch_lock: Mutex<()>,
    /// Worker threads plus the caller (total usable parallelism).
    threads: usize,
}

static POOL: OnceLock<PoolInner> = OnceLock::new();
static SEQ: AtomicU64 = AtomicU64::new(1);

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("TENSOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn pool() -> &'static PoolInner {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let shared = Arc::new(Shared {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        // The caller participates, so spawn threads-1 workers.
        for _ in 1..threads {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tensor-gemm".into())
                .spawn(move || worker_loop(&sh))
                .expect("spawn tensor worker");
        }
        PoolInner {
            shared,
            dispatch_lock: Mutex::new(()),
            threads,
        }
    })
}

fn worker_loop(sh: &Shared) {
    let mut last_seq = 0u64;
    loop {
        let slot = {
            let mut guard = lock_unpoisoned(&sh.slot);
            loop {
                match *guard {
                    Some(s) if s.seq != last_seq => {
                        // Register under the lock so the caller cannot
                        // retire the dispatch before seeing us.
                        // SAFETY: slot is Some ⇒ the dispatch is alive.
                        unsafe { &*s.d }.active.fetch_add(1, Ordering::Relaxed);
                        break s;
                    }
                    _ => guard = sh.ready.wait(guard).unwrap(),
                }
            }
        };
        last_seq = slot.seq;
        // SAFETY: registered in `active`; the caller waits for active == 0
        // before retiring, so these references stay valid.
        let d = unsafe { &*slot.d };
        let task = unsafe { &*d.task };
        loop {
            let i = d.next.fetch_add(1, Ordering::Relaxed);
            if i >= d.strips {
                break;
            }
            if let Err(e) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut payload = lock_unpoisoned(&d.panic_payload);
                payload.get_or_insert(e);
            }
            d.done.fetch_add(1, Ordering::Release);
        }
        let _guard = lock_unpoisoned(&sh.slot);
        d.active.fetch_sub(1, Ordering::Release);
        sh.ready.notify_all();
    }
}

/// Usable parallelism: pool workers plus the calling thread.
pub fn parallelism() -> usize {
    pool().threads
}

// ---------------------------------------------------------------------------
// Core-budget arbiter
// ---------------------------------------------------------------------------
//
// The tensor pool is not the only thread population on the host: a serving
// layer runs session workers that spend most of their time inside forwards
// (which dispatch GEMM strips right back into this pool). Sizing the two
// populations independently oversubscribes small hosts. The arbiter gives
// both sides one shared budget: an external worker *reserves* a core for its
// lifetime (shrinking the parallelism GEMM dispatch will use) and *lends* it
// back for the stretches where it is blocked — parked on a queue condvar,
// or waiting for a coalesced batch leader. GEMM sizing then reads
// [`effective_parallelism`] instead of raw [`parallelism`].

/// Cores claimed by external (non-pool) worker threads.
static RESERVED_CORES: AtomicUsize = AtomicUsize::new(0);
/// Reserved cores currently lent back while their owner is blocked.
static LENT_CORES: AtomicUsize = AtomicUsize::new(0);

/// RAII guard for a core reserved by an external worker thread.
/// Dropping it returns the core to the tensor pool's budget.
#[derive(Debug)]
pub struct CoreReservation(());

/// Reserve one core from the shared budget for the lifetime of the returned
/// guard. Call once per long-lived external worker thread.
pub fn reserve_core() -> CoreReservation {
    RESERVED_CORES.fetch_add(1, Ordering::Relaxed);
    CoreReservation(())
}

impl Drop for CoreReservation {
    fn drop(&mut self) {
        RESERVED_CORES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII guard for a reserved core lent back to the pool while its owner is
/// blocked. Dropping it reclaims the core for the owner.
#[derive(Debug)]
pub struct CoreLease(());

/// Lend a reserved core back to the pool for the lifetime of the returned
/// guard. Hold it across blocking waits (condvar parks, batch-leader waits)
/// so GEMM dispatch can use the otherwise-idle core.
pub fn lend_core() -> CoreLease {
    LENT_CORES.fetch_add(1, Ordering::Relaxed);
    CoreLease(())
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        LENT_CORES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parallelism GEMM dispatch should actually use right now: pool threads,
/// minus cores reserved by external workers, plus reserved cores currently
/// lent back. Always at least 1 (the caller) and never above the pool size.
pub fn effective_parallelism() -> usize {
    let threads = pool().threads;
    let reserved = RESERVED_CORES.load(Ordering::Relaxed);
    let lent = LENT_CORES.load(Ordering::Relaxed).min(reserved);
    (threads + lent).saturating_sub(reserved).clamp(1, threads)
}

/// Run `task(0..strips)` with pool parallelism, blocking until every strip
/// has completed. Strip indices are claimed dynamically; the caller thread
/// participates. Panics in any strip are re-raised here after all strips
/// finish. Performs **no heap allocation**.
pub fn run_strips(strips: usize, task: &(dyn Fn(usize) + Sync)) {
    if strips == 0 {
        return;
    }
    let p = pool();
    if p.threads <= 1 || strips == 1 {
        for i in 0..strips {
            task(i);
        }
        return;
    }
    let _owner = lock_unpoisoned(&p.dispatch_lock);
    // SAFETY: only erases the caller lifetime from the fat pointer; this
    // function does not return (or unwind) until no worker can still
    // observe it (`done == strips && active == 0`).
    let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
            task as *const (dyn Fn(usize) + Sync),
        )
    };
    let d = Dispatch {
        task: task_ptr,
        strips,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        panic_payload: Mutex::new(None),
    };
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    {
        let mut slot = lock_unpoisoned(&p.shared.slot);
        *slot = Some(Slot { seq, d: &d });
        p.shared.ready.notify_all();
    }
    // The caller claims strips alongside the workers.
    let mut caller_panic = None;
    loop {
        let i = d.next.fetch_add(1, Ordering::Relaxed);
        if i >= strips {
            break;
        }
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            caller_panic = Some(e);
        }
        d.done.fetch_add(1, Ordering::Release);
    }
    // Retire the dispatch: every strip executed and no worker still holds
    // a reference (only then may this stack frame — which owns `d` and the
    // closure — unwind or return).
    {
        let mut slot = lock_unpoisoned(&p.shared.slot);
        while d.done.load(Ordering::Acquire) < strips || d.active.load(Ordering::Acquire) > 0 {
            slot = p.shared.ready.wait(slot).unwrap();
        }
        *slot = None;
    }
    // Re-raise: the caller's own panic wins, else the first worker panic
    // payload is forwarded intact.
    if let Some(e) = caller_panic {
        std::panic::resume_unwind(e);
    }
    let worker_panic = lock_unpoisoned(&d.panic_payload).take();
    if let Some(e) = worker_panic {
        std::panic::resume_unwind(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_strip_exactly_once() {
        let hits = AtomicU32::new(0);
        run_strips(16, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn strips_may_write_disjoint_caller_memory() {
        let out: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        run_strips(8, &|i| {
            out[i].store(i as u32 + 1, Ordering::Relaxed);
        });
        let vals: Vec<u32> = out.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn zero_strips_is_noop() {
        run_strips(0, &|_| panic!("must not run"));
    }

    #[test]
    fn back_to_back_dispatches_complete() {
        for round in 0..50u32 {
            let hits = AtomicU32::new(0);
            run_strips(4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "round {round}");
        }
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(parallelism() >= 1);
    }

    /// Serializes the arbiter tests: they assert on process-global counters.
    static ARBITER_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn reservation_shrinks_and_lease_restores_effective_parallelism() {
        let _g = lock_unpoisoned(&ARBITER_TEST_LOCK);
        let base = effective_parallelism();
        assert!(base >= 1 && base <= parallelism());
        {
            let _r: Vec<CoreReservation> = (0..parallelism() + 2).map(|_| reserve_core()).collect();
            // Over-reservation floors at 1, never 0.
            assert_eq!(effective_parallelism(), 1);
            let _l = lend_core();
            assert!(effective_parallelism() >= 1);
            drop(_l);
        }
        assert_eq!(effective_parallelism(), base);
    }

    #[test]
    fn lease_without_reservation_cannot_exceed_pool_size() {
        let _g = lock_unpoisoned(&ARBITER_TEST_LOCK);
        let _l = lend_core();
        assert!(effective_parallelism() <= parallelism());
    }

    #[test]
    fn reserve_then_lend_round_trips() {
        let _g = lock_unpoisoned(&ARBITER_TEST_LOCK);
        let base = effective_parallelism();
        let r = reserve_core();
        let shrunk = effective_parallelism();
        assert_eq!(shrunk, base.saturating_sub(1).max(1));
        let l = lend_core();
        // Lending the reserved core returns it to the budget.
        assert_eq!(effective_parallelism(), base);
        drop(l);
        assert_eq!(effective_parallelism(), shrunk);
        drop(r);
        assert_eq!(effective_parallelism(), base);
    }

    #[test]
    fn strip_panic_propagates_with_payload_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            run_strips(4, &|i| {
                if i == 2 {
                    panic!("strip boom");
                }
            });
        });
        let payload = result.expect_err("strip panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"strip boom"),
            "original payload must be forwarded"
        );
        // The pool (and its locks) must remain usable afterwards.
        let hits = AtomicU32::new(0);
        run_strips(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
