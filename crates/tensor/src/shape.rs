//! Tensor shapes and row-major stride arithmetic.

use serde::{Deserialize, Serialize};

/// Maximum supported tensor rank.
pub const MAX_RANK: usize = 6;

/// A tensor shape: a list of dimension extents, row-major.
///
/// Rank is small (≤ 4 in this project: `[batch, channels, h, w]`), so the
/// extents are stored **inline** in a fixed array — constructing a shape
/// (and therefore wrapping a buffer in a `Tensor`) performs no heap
/// allocation, which the zero-alloc inference workspace relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Create a shape from dimension extents. Panics above [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(dims.len() <= MAX_RANK, "rank {} > {MAX_RANK}", dims.len());
        let mut d = [0usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Extent of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.dims()[i + 1];
        }
        s
    }

    /// Flat offset of a multi-index. Debug-asserts bounds.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.rank()).rev() {
            debug_assert!(
                idx[i] < self.dims()[i],
                "index {idx:?} out of {:?}",
                self.dims()
            );
            off += idx[i] * stride;
            stride *= self.dims()[i];
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn empty_dim_gives_zero_numel() {
        assert_eq!(Shape::new(&[5, 0, 2]).numel(), 0);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert_eq!(off, i * strides[0] + j * strides[1] + k * strides[2]);
                }
            }
        }
    }

    #[test]
    fn offsets_are_dense_and_unique() {
        let s = Shape::new(&[3, 5]);
        let mut seen = [false; 15];
        for i in 0..3 {
            for j in 0..5 {
                let o = s.offset(&[i, j]);
                assert!(!seen[o]);
                seen[o] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[4, 15, 15]).to_string(), "[4×15×15]");
    }
}
