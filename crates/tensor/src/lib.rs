//! Minimal dense `f32` tensor library built from scratch for the DNN-MCTS
//! reproduction — now with a throughput-tuned inference path.
//!
//! The paper's DNN (5 convolution layers + 3 fully-connected layers on a
//! 15×15 board) is small by deep-learning standards, but it is evaluated
//! millions of times per search, so the hot kernels are engineered rather
//! than generic:
//!
//! * **[`ops::gemm`]** — a BLIS-style packed, register-blocked kernel: both
//!   operands are packed into `MR`/`NR` panels (normalizing all four
//!   transpose variants into one layout), the inner loop computes a 4×8
//!   tile of C entirely in registers, and an optional bias/ReLU epilogue
//!   ([`ops::gemm_ep`]) is fused into the tile write-back. Above a flop
//!   threshold the M dimension is partitioned into strips across a small
//!   persistent worker [`pool`] ([`ops::gemm_mt`] forces this), with
//!   bitwise-identical results. The previous scalar kernel is retained as
//!   [`ops::baseline`] for parity tests and before/after benchmarks.
//! * **[`conv`]** — im2col/col2im convolution where the forward pass
//!   unfolds the whole `[B, C, H, W]` batch into one
//!   `[col_rows, B·col_cols]` matrix and issues **one GEMM per layer call**
//!   instead of one per image.
//! * **[`workspace::Workspace`]** — a reusable scratch arena (im2col
//!   matrix, GEMM staging, recycled activation buffers) threaded through
//!   the forward path so steady-state inference performs zero heap
//!   allocations.
//! * contiguous row-major storage, `f32` only; deterministic parameter
//!   [`init`]ialization given a seed.
//!
//! Threading: the worker pool sizes itself from `available_parallelism()`
//! capped at 8; setting `TENSOR_THREADS` overrides that sizing exactly
//! (uncapped). The pool is only consulted for GEMMs above
//! [`ops::MT_FLOP_THRESHOLD`].
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod conv;
pub mod init;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use crate::tensor::Tensor;
pub use shape::Shape;
pub use workspace::Workspace;
