//! Minimal dense `f32` tensor library built from scratch for the DNN-MCTS
//! reproduction.
//!
//! The paper's DNN (5 convolution layers + 3 fully-connected layers on a
//! 15×15 board) is small by deep-learning standards, so this crate favors
//! simplicity and cache-friendly inner loops over exhaustive generality:
//!
//! * contiguous row-major storage, `f32` only;
//! * a register-blocked [`ops::gemm`] kernel (the workhorse of both the
//!   fully-connected layers and im2col-based convolution);
//! * [`conv`] with explicit im2col/col2im so forward and backward share the
//!   same GEMM path;
//! * deterministic parameter [`init`]ialization given a seed.
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod conv;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use crate::tensor::Tensor;
pub use shape::Shape;
