//! Property-based tests for the tensor substrate: algebraic identities
//! that must hold for arbitrary shapes and data.

use proptest::prelude::*;
use tensor::conv::{col2im, conv2d_forward, im2col, Conv2dSpec};
use tensor::ops::{gemm, log_softmax_inplace, softmax_inplace};
use tensor::Tensor;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    tensor::init::uniform(&mut rng, dims, -2.0, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)ᵀ == Bᵀ·Aᵀ — exercised through the transpose flags of `gemm`.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..10_000
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 1);
        // C1 = A·B (m×n).
        let mut c1 = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, 1.0, a.data(), b.data(), 0.0, &mut c1);
        // C2 = Bᵀ·Aᵀ computed as gemm(ta=true, tb=true) with operands
        // stored row-major: result is (n×m), compare transposed.
        let mut c2 = vec![0.0f32; n * m];
        gemm(true, true, n, m, k, 1.0, b.data(), a.data(), 0.0, &mut c2);
        for i in 0..m {
            for j in 0..n {
                let x = c1[i * n + j];
                let y = c2[j * m + i];
                prop_assert!((x - y).abs() < 1e-3, "({i},{j}): {x} vs {y}");
            }
        }
    }

    /// GEMM with alpha scales linearly: gemm(αA,B) == α·gemm(A,B).
    #[test]
    fn gemm_alpha_linearity(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        alpha in -3.0f32..3.0, seed in 0u64..10_000
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 2);
        let mut c1 = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, alpha, a.data(), b.data(), 0.0, &mut c1);
        let mut c2 = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, 1.0, a.data(), b.data(), 0.0, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - alpha * y).abs() < 1e-3);
        }
    }

    /// col2im is the exact adjoint of im2col: ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩
    /// for random conv geometries (the property that makes the conv
    /// backward pass correct).
    #[test]
    fn im2col_adjoint_property(
        in_c in 1usize..3, size in 3usize..7, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..10_000
    ) {
        prop_assume!(size + 2 * pad >= k);
        let spec = Conv2dSpec {
            in_c,
            out_c: 1,
            in_h: size,
            in_w: size,
            kh: k,
            kw: k,
            stride,
            pad,
        };
        let x = rand_tensor(&[in_c * size * size], seed);
        let cols = spec.col_rows() * spec.col_cols();
        let y = rand_tensor(&[cols], seed ^ 3);
        let mut col = vec![0.0f32; cols];
        im2col(&spec, x.data(), &mut col);
        let lhs: f64 = col.iter().zip(y.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let mut back = vec![0.0f32; x.numel()];
        col2im(&spec, y.data(), &mut back);
        let rhs: f64 = x.data().iter().zip(&back).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Convolving with a 1×1 identity kernel (single in/out channel) is
    /// the identity map for any stride-1 geometry.
    #[test]
    fn conv_identity_kernel(size in 2usize..8, seed in 0u64..10_000) {
        let spec = Conv2dSpec {
            in_c: 1,
            out_c: 1,
            in_h: size,
            in_w: size,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let x = rand_tensor(&[1, 1, size, size], seed);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let mut out = Tensor::zeros(&[1, 1, size, size]);
        let mut ws = tensor::Workspace::new();
        conv2d_forward(&spec, &x, &w, None, false, &mut out, &mut ws);
        for (a, b) in out.data().iter().zip(x.data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// softmax ∘ log == exp-normalization consistency: softmax equals
    /// exp(log_softmax) elementwise.
    #[test]
    fn softmax_exp_log_consistency(len in 1usize..16, seed in 0u64..10_000) {
        let x = rand_tensor(&[len], seed);
        let mut sm = x.data().to_vec();
        softmax_inplace(&mut sm);
        let mut lsm = x.data().to_vec();
        log_softmax_inplace(&mut lsm);
        for (s, l) in sm.iter().zip(&lsm) {
            prop_assert!((s - l.exp()).abs() < 1e-4);
        }
    }

    /// Tensor reshape round-trips and preserves the flat data.
    #[test]
    fn reshape_roundtrip(a in 1usize..6, b in 1usize..6, c in 1usize..6, seed in 0u64..10_000) {
        let t = rand_tensor(&[a, b, c], seed);
        let flat = t.reshaped(&[a * b * c]);
        let back = flat.reshaped(&[a, b, c]);
        prop_assert_eq!(back.data(), t.data());
        prop_assert_eq!(back.dims(), t.dims());
    }

    /// matmul against the identity is the identity (both sides).
    #[test]
    fn matmul_identity_both_sides(n in 1usize..8, seed in 0u64..10_000) {
        let a = rand_tensor(&[n, n], seed);
        let i = Tensor::eye(n);
        let right = a.matmul(&i);
        let left = i.matmul(&a);
        for ((r, l), orig) in right.data().iter().zip(left.data()).zip(a.data()) {
            prop_assert!((r - orig).abs() < 1e-4);
            prop_assert!((l - orig).abs() < 1e-4);
        }
    }
}
