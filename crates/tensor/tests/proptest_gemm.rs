//! Property-based parity tests for the packed, register-blocked GEMM
//! micro-kernel against the retained [`tensor::ops::baseline`] kernels:
//! all four transpose combinations, odd/tiny/tile-straddling shapes, fused
//! epilogues, and the multithreaded path.

use proptest::prelude::*;
use tensor::ops::{baseline, gemm, gemm_ep, gemm_mt, Epilogue};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Relative-error check scaled by the dot-product length: each output is a
/// k-term accumulation, so rounding grows with k.
fn assert_close(fast: &[f32], reference: &[f32], k: usize, what: &str) {
    for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
        let tol = 1e-5f32 * (k as f32).max(1.0) * r.abs().max(1.0);
        assert!((f - r).abs() <= tol, "{what}[{i}]: {f} vs {r} (tol {tol})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed kernel matches the baseline kernel for every transpose
    /// combination over arbitrary (including tile-straddling) shapes.
    #[test]
    fn packed_kernel_matches_baseline(
        m in 1usize..40, n in 1usize..40, k in 1usize..40,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY,
        alpha in -2.0f32..2.0, beta in -2.0f32..2.0,
        seed in 0u64..10_000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 1);
        let c0 = rand_vec(m * n, seed ^ 2);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c_fast);
        baseline::gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c_ref);
        assert_close(&c_fast, &c_ref, k, "gemm");
    }

    /// Shapes straddling the 4×8 tile boundaries (±1 around multiples of
    /// MR/NR) stay correct.
    #[test]
    fn tile_boundary_shapes(
        mi in 0usize..4, ni in 0usize..4, dm in 0usize..3, dn in 0usize..3,
        k in 1usize..20, seed in 0u64..10_000,
    ) {
        let m = (mi * 4 + dm).max(1);
        let n = (ni * 8 + dn).max(1);
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 3);
        let mut c_fast = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_fast);
        baseline::gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_ref);
        assert_close(&c_fast, &c_ref, k, "gemm");
    }

    /// The multithreaded strip partition is bitwise identical to the
    /// single-threaded kernel (same packing, same accumulation order).
    #[test]
    fn mt_is_bitwise_identical_to_st(
        m in 1usize..80, n in 1usize..40, k in 1usize..24,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY, seed in 0u64..10_000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 4);
        let c0 = rand_vec(m * n, seed ^ 5);
        let mut c_st = c0.clone();
        let mut c_mt = c0;
        gemm(ta, tb, m, n, k, 0.9, &a, &b, 0.4, &mut c_st);
        gemm_mt(ta, tb, m, n, k, 0.9, &a, &b, 0.4, &mut c_mt);
        prop_assert_eq!(c_st, c_mt);
    }

    /// The fused bias+ReLU epilogue equals the separate passes exactly.
    #[test]
    fn epilogue_matches_separate_passes(
        m in 1usize..20, n in 1usize..20, k in 1usize..16,
        relu in proptest::bool::ANY, seed in 0u64..10_000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 6);
        let bias_row = rand_vec(m, seed ^ 7);
        let bias_col = rand_vec(n, seed ^ 8);
        let mut c_fused = vec![0.0f32; m * n];
        gemm_ep(
            false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_fused,
            Epilogue { bias_row: Some(&bias_row), bias_col: Some(&bias_col), relu },
        );
        let mut c_plain = vec![0.0f32; m * n];
        gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c_plain);
        for i in 0..m {
            for j in 0..n {
                let mut v = c_plain[i * n + j] + bias_row[i] + bias_col[j];
                if relu {
                    v = v.max(0.0);
                }
                c_plain[i * n + j] = v;
            }
        }
        prop_assert_eq!(c_fused, c_plain);
    }
}
