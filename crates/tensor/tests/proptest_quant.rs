//! Property-based guarantees of the int8 quantization path
//! ([`tensor::quant`]): the weight round-trip error bound and qgemm
//! parity with the f32 reference over arbitrary shapes.

use proptest::prelude::*;
use tensor::ops::{gemm_ep, Epilogue};
use tensor::quant::{qgemm, QuantizedWeights};

fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-output-channel symmetric quantization: every dequantized
    /// weight is within half a quantization step of the original (the
    /// round-to-nearest bound), where the step is that row's scale.
    #[test]
    fn weight_round_trip_error_bounded_by_half_scale(
        rows in 1usize..24, cols in 1usize..48,
        seed in 0u64..10_000, scale in 0.01f32..8.0,
    ) {
        let w = rand_vec(rows * cols, seed, scale);
        let q = QuantizedWeights::quantize(&w, rows, cols);
        let back = q.dequantize();
        for r in 0..rows {
            let step = q.scales()[r];
            for c in 0..cols {
                let (orig, rt) = (w[r * cols + c], back[r * cols + c]);
                prop_assert!(
                    (orig - rt).abs() <= 0.5 * step + 1e-7,
                    "row {r} col {c}: {orig} -> {rt}, step {step}"
                );
            }
        }
    }

    /// A row's scale is exactly its max |w| over the quantized range, so
    /// the relative round-trip error of the largest element is zero.
    #[test]
    fn row_scales_track_row_maxima(
        rows in 1usize..16, cols in 1usize..32, seed in 0u64..10_000,
    ) {
        let w = rand_vec(rows * cols, seed, 2.0);
        let q = QuantizedWeights::quantize(&w, rows, cols);
        let back = q.dequantize();
        for r in 0..rows {
            let maxabs = w[r * cols..(r + 1) * cols]
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()));
            if maxabs > 0.0 {
                let (i, _) = w[r * cols..(r + 1) * cols]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                    .unwrap();
                let err = (w[r * cols + i] - back[r * cols + i]).abs();
                prop_assert!(
                    err <= 1e-6 * maxabs.max(1.0),
                    "row max must survive the round trip: err {err}"
                );
            }
        }
    }

    /// qgemm (quantize activations + int8 kernel + dequant epilogue)
    /// tracks the f32 GEMM within the combined quantization error bound,
    /// for both the conv ([k,n]) and linear ([n,k]) activation layouts.
    #[test]
    fn qgemm_matches_f32_within_quant_error(
        m in 1usize..20, n in 1usize..20, k in 1usize..32,
        tb in proptest::bool::ANY, relu in proptest::bool::ANY,
        seed in 0u64..10_000,
    ) {
        let w = rand_vec(m * k, seed, 1.0);
        let x = rand_vec(k * n, seed ^ 1, 1.0);
        let bias = rand_vec(m, seed ^ 2, 0.5);
        let qw = QuantizedWeights::quantize(&w, m, k);
        let mut c_q = vec![0.0f32; m * n];
        qgemm(&qw, &x, tb, n, &mut c_q, Some(&bias), relu);
        let mut c_f = vec![0.0f32; m * n];
        if tb {
            gemm_ep(false, true, n, m, k, 1.0, &x, &w, 0.0, &mut c_f, Epilogue {
                bias_col: Some(&bias), relu, ..Default::default()
            });
        } else {
            gemm_ep(false, false, m, n, k, 1.0, &w, &x, 0.0, &mut c_f, Epilogue {
                bias_row: Some(&bias), relu, ..Default::default()
            });
        }
        // Error bound: activation step × Σ|w| + weight step × Σ|x| per
        // output, plus the cross term (see tensor::quant unit tests).
        let s_x = x.iter().fold(0.0f32, |a, v| a.max(v.abs())) / 127.0;
        for row in 0..m {
            let s_w = qw.scales()[row];
            let w_row = &w[row * k..(row + 1) * k];
            let sum_w: f32 = w_row.iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let x_col: f32 = (0..k)
                    .map(|kk| if tb { x[j * k + kk] } else { x[kk * n + j] }.abs())
                    .sum();
                let bound =
                    0.5 * s_x * sum_w + 0.5 * s_w * x_col + 0.25 * s_x * s_w * k as f32 + 1e-4;
                let idx = if tb { j * m + row } else { row * n + j };
                let (q_v, f_v) = (c_q[idx], c_f[idx]);
                prop_assert!(
                    (q_v - f_v).abs() <= bound,
                    "[{row},{j}]: int8 {q_v} vs f32 {f_v} (bound {bound})"
                );
            }
        }
    }
}
