//! Truly overlapped training: a dedicated trainer thread consumes samples
//! while the caller's thread keeps producing them with tree-based search.
//!
//! §5.4 of the paper describes the CPU-GPU setup: "the tree-based search
//! process produces samples and the training process (completely offloaded
//! to GPU) consumes samples. The training process execution time is hidden
//! by the tree-based search time." [`crate::pipeline::Pipeline`] models
//! that overlap in its throughput accounting; this module *implements* it
//! with a producer/consumer pair:
//!
//! * the **producer** (caller thread) plays episodes with the most recent
//!   published network snapshot and ships each episode's samples over a
//!   FIFO channel;
//! * the **trainer** thread owns the authoritative network, folds incoming
//!   samples into its replay buffer, runs SGD, and publishes a fresh
//!   snapshot after every episode's updates.
//!
//! Searches therefore use slightly stale networks — exactly the staleness
//! real asynchronous AlphaZero-style systems exhibit.

use crate::metrics::{LossPoint, LossRecorder};
use crate::pipeline::PipelineConfig;
use crate::replay::{ReplayBuffer, Sample};
use crate::selfplay::play_episode;
use games::Game;
use mcts::{BatchEvaluator, NnEvaluator};
use nn::{Optimizer, PolicyValueNet, Sgd};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Summary of an overlapped run.
#[derive(Debug, Clone)]
pub struct OverlapReport {
    /// Samples (moves) produced by self-play.
    pub samples: u64,
    /// End-to-end wall-clock duration, seconds.
    pub wall_sec: f64,
    /// Samples per wall-clock second. Because the stages overlap, this is
    /// the *true* pipeline throughput (the paper's Figure 6 metric with
    /// `max` instead of sum in the denominator).
    pub samples_per_sec: f64,
    /// SGD steps the trainer completed.
    pub sgd_steps: u64,
    /// Loss curve recorded by the trainer (Figure 7 data).
    pub loss_curve: Vec<LossPoint>,
    /// Mean total loss over the last few updates.
    pub final_loss: Option<f32>,
    /// How many episodes were searched with a stale snapshot (the trainer
    /// had not yet published the previous episode's update).
    pub stale_searches: u64,
}

/// How search evaluators are built from published network snapshots.
pub type SnapshotEvaluatorFactory = Box<dyn Fn(Arc<PolicyValueNet>) -> Arc<dyn BatchEvaluator>>;

/// Run `cfg.episodes` of self-play with training overlapped on a second
/// thread. Returns the trained network and the run report.
///
/// `evaluator_factory` turns each network snapshot into the evaluator the
/// search uses (route through an `accel::Device` to emulate GPU inference);
/// `None` uses direct CPU inference ([`NnEvaluator`]).
pub fn run_overlapped<G: Game>(
    initial: &G,
    net: PolicyValueNet,
    cfg: PipelineConfig,
    evaluator_factory: Option<SnapshotEvaluatorFactory>,
) -> (PolicyValueNet, OverlapReport) {
    assert_eq!(
        net.config.actions,
        initial.action_space(),
        "network action space must match the game"
    );
    if cfg.augment_symmetries {
        let (_, h, w) = initial.encoded_shape();
        assert_eq!(h, w, "symmetry augmentation requires a square board");
    }
    let factory =
        evaluator_factory.unwrap_or_else(|| Box::new(|snap| Arc::new(NnEvaluator::new(snap))));

    let started = Instant::now();
    // The latest published snapshot, read by the producer per episode.
    let slot: Arc<RwLock<Arc<PolicyValueNet>>> = Arc::new(RwLock::new(Arc::new(net.clone())));
    // Generation counter: lets the producer detect staleness for the report.
    let generation = Arc::new(RwLock::new(0u64));
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<Sample>>();

    let trainer_slot = Arc::clone(&slot);
    let trainer_gen = Arc::clone(&generation);
    let (channels, board, _) = initial.encoded_shape();
    let state_len = initial.encoded_len();
    let action_space = initial.action_space();

    let trainer = std::thread::Builder::new()
        .name("overlap-trainer".into())
        .spawn(move || {
            let mut net = net;
            let mut optimizer = Sgd::new(&net.params(), cfg.lr, cfg.momentum, cfg.weight_decay);
            let mut replay = ReplayBuffer::new(cfg.replay_capacity, state_len, action_space);
            let mut recorder = LossRecorder::new();
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_696E);
            let mut grads = net.grad_buffers();
            let mut sgd_steps = 0u64;
            let mut episodes_seen = 0u64;

            while let Ok(samples) = rx.recv() {
                for s in samples {
                    if cfg.augment_symmetries {
                        crate::augment::push_augmented(&mut replay, &s, channels, board);
                    } else {
                        replay.push(s);
                    }
                }
                if let Some(schedule) = cfg.lr_schedule {
                    optimizer.set_lr(schedule.at(episodes_seen));
                }
                episodes_seen += 1;
                if replay.len() >= cfg.batch_size.min(8) {
                    let c = net.config;
                    for _ in 0..cfg.sgd_iters {
                        let k = cfg.batch_size.min(replay.len());
                        let (states, pis, zs) = replay.sample_batch(&mut rng, k);
                        let x = states.reshape(&[k, c.in_c, c.h, c.w]);
                        grads.zero();
                        let caches = net.forward_train(&x);
                        let parts = net.backward(&caches, &pis, &zs, &mut grads);
                        let flat = grads.flat();
                        optimizer.step(&mut net.params_mut(), &flat);
                        recorder.record(parts);
                        sgd_steps += 1;
                    }
                }
                // Publish the updated snapshot for subsequent searches.
                *trainer_slot.write() = Arc::new(net.clone());
                *trainer_gen.write() += 1;
            }
            (net, recorder, sgd_steps)
        })
        .expect("spawn trainer thread");

    // ---- Producer: self-play episodes on this thread. ----
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut samples_total = 0u64;
    let mut stale_searches = 0u64;
    for episode in 0..cfg.episodes as u64 {
        let snapshot = slot.read().clone();
        if *generation.read() < episode {
            // The trainer hasn't published the previous episode's update
            // yet — this search runs on a stale network.
            stale_searches += 1;
        }
        let evaluator = factory(snapshot);
        let mut search = cfg.scheme.build::<G>(cfg.mcts, evaluator);
        let outcome = play_episode(
            initial,
            search.as_mut(),
            cfg.temperature_moves,
            cfg.max_moves,
            &mut rng,
        );
        samples_total += outcome.moves as u64;
        if tx.send(outcome.samples).is_err() {
            break; // trainer died; join below will propagate the panic
        }
    }
    drop(tx);
    let (net, recorder, sgd_steps) = trainer.join().expect("trainer thread panicked");

    let wall_sec = started.elapsed().as_secs_f64();
    let report = OverlapReport {
        samples: samples_total,
        wall_sec,
        samples_per_sec: if wall_sec > 0.0 {
            samples_total as f64 / wall_sec
        } else {
            0.0
        },
        sgd_steps,
        final_loss: recorder.recent_mean(5),
        loss_curve: recorder.points().to_vec(),
        stale_searches,
    };
    (net, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;
    use mcts::Scheme;
    use nn::NetConfig;

    fn smoke_cfg(episodes: usize) -> PipelineConfig {
        let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
        cfg.episodes = episodes;
        cfg
    }

    #[test]
    fn overlapped_run_trains_and_reports() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 41);
        let (trained, report) = run_overlapped(&TicTacToe::new(), net.clone(), smoke_cfg(3), None);
        assert!(report.samples >= 15, "3 episodes of ≥5 moves");
        assert!(report.sgd_steps > 0, "trainer must run SGD");
        assert!(!report.loss_curve.is_empty());
        assert!(report.wall_sec > 0.0 && report.samples_per_sec > 0.0);
        // Training actually changed the parameters.
        let x = tensor::Tensor::ones(&[1, 4, 3, 3]);
        assert_ne!(net.forward(&x).0.data(), trained.forward(&x).0.data());
    }

    #[test]
    fn sgd_step_count_matches_config() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 42);
        let cfg = smoke_cfg(4);
        let (_, report) = run_overlapped(&TicTacToe::new(), net, cfg, None);
        // Every episode with enough replay runs exactly sgd_iters steps;
        // at most the first episode can fall short of the replay minimum.
        let per = cfg.sgd_iters as u64;
        assert!(
            report.sgd_steps >= 3 * per && report.sgd_steps <= 4 * per,
            "steps {}",
            report.sgd_steps
        );
    }

    #[test]
    fn augmentation_flows_through_overlap() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 43);
        let mut cfg = smoke_cfg(2);
        cfg.augment_symmetries = true;
        let (_, report) = run_overlapped(&TicTacToe::new(), net, cfg, None);
        assert!(report.sgd_steps > 0);
        assert!(report.final_loss.unwrap().is_finite());
    }

    #[test]
    fn custom_evaluator_factory_is_used() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 44);
        let factory: SnapshotEvaluatorFactory = Box::new(|snap| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            Arc::new(NnEvaluator::new(snap))
        });
        let (_, report) = run_overlapped(&TicTacToe::new(), net, smoke_cfg(3), Some(factory));
        assert_eq!(CALLS.load(Ordering::Relaxed), 3, "one snapshot per episode");
        assert!(report.samples > 0);
    }

    #[test]
    #[should_panic(expected = "action space")]
    fn mismatched_network_rejected() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 4, 4, 16), 45);
        let _ = run_overlapped(&TicTacToe::new(), net, smoke_cfg(1), None);
    }
}
