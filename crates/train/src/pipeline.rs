//! The outer training loop (Algorithm 1): alternate self-play data
//! collection with SGD updates, measuring throughput and loss over time.

use crate::metrics::{LossRecorder, ThroughputMeter};
use crate::replay::ReplayBuffer;
use crate::selfplay::play_episode;
use games::Game;
use mcts::{BatchEvaluator, MctsConfig, NnEvaluator, Scheme};
use nn::{LrSchedule, Optimizer, PolicyValueNet, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a training run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Self-play episodes (Algorithm 1 line 2).
    pub episodes: usize,
    /// SGD iterations per episode (line 13).
    pub sgd_iters: usize,
    /// SGD mini-batch size (line 14).
    pub batch_size: usize,
    /// Learning rate, momentum, L2 weight decay.
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    /// Replay-buffer capacity in samples.
    pub replay_capacity: usize,
    /// Moves played with temperature 1.0 before turning greedy.
    pub temperature_moves: usize,
    /// Hard cap on episode length.
    pub max_moves: usize,
    /// Parallel scheme used for the tree-based search stage.
    pub scheme: Scheme,
    /// Search hyper-parameters.
    pub mcts: MctsConfig,
    /// RNG seed (self-play sampling + batch sampling).
    pub seed: u64,
    /// Learning-rate schedule applied per episode (None ⇒ constant `lr`).
    pub lr_schedule: Option<LrSchedule>,
    /// Model training as overlapped with search (GPU-offloaded trainer,
    /// §5.4) rather than serialized (CPU trainer).
    pub overlapped_training: bool,
    /// Expand every sample into its 8 dihedral board symmetries before
    /// storing (AlphaGo-Zero-style augmentation). Requires a square board
    /// encoding.
    pub augment_symmetries: bool,
}

impl PipelineConfig {
    /// Small smoke-test configuration for a given scheme.
    pub fn smoke(scheme: Scheme, workers: usize) -> Self {
        PipelineConfig {
            episodes: 2,
            sgd_iters: 4,
            batch_size: 16,
            lr: 2e-3,
            momentum: 0.9,
            weight_decay: 1e-4,
            replay_capacity: 4096,
            temperature_moves: 4,
            max_moves: 60,
            scheme,
            mcts: MctsConfig {
                playouts: 32,
                workers,
                ..Default::default()
            },
            seed: 17,
            lr_schedule: None,
            overlapped_training: false,
            augment_symmetries: false,
        }
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Processed samples per second (paper §5.4 metric).
    pub samples_per_sec: f64,
    /// Total samples generated.
    pub samples: u64,
    /// Episodes played.
    pub episodes: usize,
    /// Final smoothed loss (mean of the last few updates).
    pub final_loss: Option<f32>,
    /// Full loss curve (Figure 7 data).
    pub loss_curve: Vec<crate::metrics::LossPoint>,
    /// Total time in tree-based search, ns.
    pub search_ns: u64,
    /// Total time in SGD training, ns.
    pub train_ns: u64,
}

type EvaluatorFactory = Box<dyn Fn(Arc<PolicyValueNet>) -> Arc<dyn BatchEvaluator>>;

/// The training pipeline for one game type.
pub struct Pipeline<G: Game> {
    initial: G,
    net: PolicyValueNet,
    cfg: PipelineConfig,
    replay: ReplayBuffer,
    recorder: LossRecorder,
    meter: ThroughputMeter,
    rng: StdRng,
    optimizer: Sgd,
    evaluator_factory: EvaluatorFactory,
    episodes_run: u64,
}

impl<G: Game> Pipeline<G> {
    /// Create a pipeline training `net` by self-play from `initial`.
    pub fn new(initial: G, net: PolicyValueNet, cfg: PipelineConfig) -> Self {
        assert_eq!(
            net.config.actions,
            initial.action_space(),
            "network action space must match the game"
        );
        if cfg.augment_symmetries {
            let (_, h, w) = initial.encoded_shape();
            assert_eq!(h, w, "symmetry augmentation requires a square board");
        }
        let optimizer = Sgd::new(&net.params(), cfg.lr, cfg.momentum, cfg.weight_decay);
        Pipeline {
            replay: ReplayBuffer::new(
                cfg.replay_capacity,
                initial.encoded_len(),
                initial.action_space(),
            ),
            recorder: LossRecorder::new(),
            meter: ThroughputMeter {
                overlapped: cfg.overlapped_training,
                ..Default::default()
            },
            rng: StdRng::seed_from_u64(cfg.seed),
            optimizer,
            evaluator_factory: Box::new(|net| Arc::new(NnEvaluator::new(net))),
            episodes_run: 0,
            initial,
            net,
            cfg,
        }
    }

    /// Replace how search evaluators are built from network snapshots
    /// (e.g. to route inference through an `accel::Device`).
    pub fn set_evaluator_factory(
        &mut self,
        f: impl Fn(Arc<PolicyValueNet>) -> Arc<dyn BatchEvaluator> + 'static,
    ) {
        self.evaluator_factory = Box::new(f);
    }

    /// The current network.
    pub fn net(&self) -> &PolicyValueNet {
        &self.net
    }

    /// The replay buffer (for inspection).
    pub fn replay(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// Run the configured number of episodes; returns the report.
    pub fn run(&mut self) -> PipelineReport {
        for _ in 0..self.cfg.episodes {
            self.run_episode();
        }
        self.report()
    }

    /// One data-collection episode followed by SGD updates.
    pub fn run_episode(&mut self) {
        // Apply the learning-rate schedule per episode.
        if let Some(schedule) = self.cfg.lr_schedule {
            self.optimizer.set_lr(schedule.at(self.episodes_run));
        }
        self.episodes_run += 1;
        // --- Tree-based search stage (Algorithm 1, lines 3-12). ---
        // The search uses a frozen snapshot of the current network.
        let snapshot = Arc::new(self.net.clone());
        let evaluator = (self.evaluator_factory)(snapshot);
        let mut search = self.cfg.scheme.build::<G>(self.cfg.mcts, evaluator);
        let outcome = play_episode(
            &self.initial,
            search.as_mut(),
            self.cfg.temperature_moves,
            self.cfg.max_moves,
            &mut self.rng,
        );
        self.meter.samples += outcome.moves as u64;
        self.meter.search_ns += outcome.search_stats.move_ns;
        let (channels, board, _) = self.initial.encoded_shape();
        for s in outcome.samples {
            if self.cfg.augment_symmetries {
                crate::augment::push_augmented(&mut self.replay, &s, channels, board);
            } else {
                self.replay.push(s);
            }
        }

        // --- DNN training stage (lines 13-15). ---
        if self.replay.len() < self.cfg.batch_size.min(8) {
            return;
        }
        let t0 = Instant::now();
        let c = self.net.config;
        let mut grads = self.net.grad_buffers();
        for _ in 0..self.cfg.sgd_iters {
            let k = self.cfg.batch_size.min(self.replay.len());
            let (states, pis, zs) = self.replay.sample_batch(&mut self.rng, k);
            let x = states.reshape(&[k, c.in_c, c.h, c.w]);
            grads.zero();
            let caches = self.net.forward_train(&x);
            let parts = self.net.backward(&caches, &pis, &zs, &mut grads);
            let flat = grads.flat();
            self.optimizer.step(&mut self.net.params_mut(), &flat);
            self.recorder.record(parts);
        }
        self.meter.train_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Build the final report.
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            samples_per_sec: self.meter.samples_per_sec(),
            samples: self.meter.samples,
            episodes: self.cfg.episodes,
            final_loss: self.recorder.recent_mean(5),
            loss_curve: self.recorder.points().to_vec(),
            search_ns: self.meter.search_ns,
            train_ns: self.meter.train_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;
    use nn::NetConfig;

    fn tiny_pipeline(scheme: Scheme, workers: usize) -> Pipeline<TicTacToe> {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 11);
        Pipeline::new(
            TicTacToe::new(),
            net,
            PipelineConfig::smoke(scheme, workers),
        )
    }

    #[test]
    fn serial_pipeline_produces_samples_and_losses() {
        let mut p = tiny_pipeline(Scheme::Serial, 1);
        let report = p.run();
        assert!(report.samples >= 10, "samples {}", report.samples);
        assert!(!report.loss_curve.is_empty());
        assert!(report.samples_per_sec > 0.0);
        assert!(report.final_loss.unwrap() > 0.0);
    }

    #[test]
    fn parallel_schemes_also_train() {
        for scheme in [Scheme::LocalTree, Scheme::SharedTree] {
            let mut p = tiny_pipeline(scheme, 2);
            let report = p.run();
            assert!(report.samples > 0, "{scheme}: no samples");
            assert!(!report.loss_curve.is_empty(), "{scheme}: no training");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 12);
        let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
        cfg.episodes = 8;
        cfg.sgd_iters = 12;
        cfg.lr = 5e-3;
        let mut p = Pipeline::new(TicTacToe::new(), net, cfg);
        let report = p.run();
        let curve = &report.loss_curve;
        assert!(curve.len() >= 20);
        let head: f32 = curve[..5].iter().map(|p| p.total).sum::<f32>() / 5.0;
        let tail: f32 = curve[curve.len() - 5..]
            .iter()
            .map(|p| p.total)
            .sum::<f32>()
            / 5.0;
        assert!(
            tail < head,
            "loss should trend down: head {head}, tail {tail}"
        );
    }

    #[test]
    fn replay_buffer_fills_up() {
        let mut p = tiny_pipeline(Scheme::Serial, 1);
        p.run();
        assert!(!p.replay().is_empty());
        assert_eq!(p.replay().total_pushed(), p.report().samples);
    }

    #[test]
    fn report_timings_are_consistent() {
        let mut p = tiny_pipeline(Scheme::Serial, 1);
        let report = p.run();
        assert!(report.search_ns > 0);
        assert!(report.train_ns > 0);
    }

    #[test]
    fn lr_schedule_is_applied_per_episode() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 13);
        let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
        cfg.episodes = 4;
        cfg.lr_schedule = Some(LrSchedule::StepDecay {
            base: 0.01,
            factor: 0.1,
            every: 2,
            min: 1e-5,
        });
        let mut p = Pipeline::new(TicTacToe::new(), net, cfg);
        p.run_episode();
        assert!((p.optimizer.lr() - 0.01).abs() < 1e-9);
        p.run_episode();
        p.run_episode();
        assert!(
            (p.optimizer.lr() - 0.001).abs() < 1e-9,
            "lr {}",
            p.optimizer.lr()
        );
    }

    #[test]
    fn augmentation_multiplies_replay_samples() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 14);
        let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
        cfg.episodes = 1;
        cfg.augment_symmetries = true;
        let mut p = Pipeline::new(TicTacToe::new(), net, cfg);
        let report = p.run();
        // Every move contributes 8 stored samples; `samples` counts moves.
        assert_eq!(p.replay().total_pushed(), 8 * report.samples);
    }

    #[test]
    #[should_panic(expected = "action space")]
    fn mismatched_network_rejected() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 4, 4, 16), 1);
        let _ = Pipeline::new(
            TicTacToe::new(),
            net,
            PipelineConfig::smoke(Scheme::Serial, 1),
        );
    }
}
