//! The complete DNN-MCTS training pipeline (Algorithm 1): iterate
//! tree-based-search data collection and SGD training.
//!
//! * [`replay`] — the dataset of `(state, π, z)` tuples produced by
//!   self-play (Algorithm 1 line 12) and sampled for SGD (line 14);
//! * [`selfplay`] — one episode of move-by-move search and play,
//!   generating training samples with game outcomes as ground truth;
//! * [`pipeline`] — the outer loop combining both stages, measuring the
//!   training throughput (processed samples/second, §5.4) and the loss
//!   over wall-clock time (§5.5);
//! * [`metrics`] — loss-curve and throughput recording, CSV export;
//! * [`arena`] — head-to-head matches between agents (strength checks).

pub mod arena;
pub mod augment;
pub mod metrics;
pub mod overlap;
pub mod pipeline;
pub mod replay;
pub mod selfplay;

pub use arena::{elo_diff, play_match, EloTracker, MatchResult};
pub use augment::push_augmented;
pub use metrics::{LossPoint, LossRecorder, ThroughputMeter};
pub use overlap::{run_overlapped, OverlapReport};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};
pub use replay::{ReplayBuffer, Sample};
pub use selfplay::{play_episode, EpisodeOutcome};
