//! Head-to-head evaluation arena: pit two search agents against each
//! other over many games, alternating colors. Used to measure whether a
//! trained network (or a different parallel configuration) actually plays
//! better — the behavioural counterpart of Figure 7's loss curves.

use games::{Game, Player, Status};
use mcts::SearchScheme;
use rand::Rng;

/// Aggregate result of a match, from agent A's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchResult {
    /// Games won by agent A.
    pub wins_a: u32,
    /// Games won by agent B.
    pub wins_b: u32,
    /// Drawn (or length-capped) games.
    pub draws: u32,
}

impl MatchResult {
    /// Total games played.
    pub fn games(&self) -> u32 {
        self.wins_a + self.wins_b + self.draws
    }

    /// A's score in [0, 1]: wins + half-draws over games.
    pub fn score_a(&self) -> f64 {
        if self.games() == 0 {
            return 0.5;
        }
        (self.wins_a as f64 + 0.5 * self.draws as f64) / self.games() as f64
    }
}

/// The Elo rating difference implied by a match score `s ∈ (0, 1)`:
/// `diff = 400·log₁₀(s / (1 − s))`. Scores are clamped away from 0/1 so a
/// clean sweep maps to a large-but-finite difference.
pub fn elo_diff(score: f64) -> f64 {
    let s = score.clamp(1e-3, 1.0 - 1e-3);
    400.0 * (s / (1.0 - s)).log10()
}

/// Incremental Elo ratings for a league of agents (e.g. successive
/// checkpoints of a training run).
#[derive(Debug, Clone)]
pub struct EloTracker {
    ratings: Vec<f64>,
    k: f64,
}

impl EloTracker {
    /// `n` agents starting at 1500 with update factor `k` (32 is standard).
    pub fn new(n: usize, k: f64) -> Self {
        assert!(k > 0.0, "K factor must be positive");
        EloTracker {
            ratings: vec![1500.0; n],
            k,
        }
    }

    /// Current rating of agent `i`.
    pub fn rating(&self, i: usize) -> f64 {
        self.ratings[i]
    }

    /// Expected score of `i` against `j` under the logistic Elo model.
    pub fn expected(&self, i: usize, j: usize) -> f64 {
        1.0 / (1.0 + 10f64.powf((self.ratings[j] - self.ratings[i]) / 400.0))
    }

    /// Record a result: `score_i ∈ [0, 1]` is agent `i`'s score against
    /// agent `j` (1 = win, 0.5 = draw, 0 = loss; match averages work too).
    pub fn record(&mut self, i: usize, j: usize, score_i: f64) {
        assert!(i != j, "an agent cannot play itself");
        assert!((0.0..=1.0).contains(&score_i), "score in [0,1]");
        let e = self.expected(i, j);
        let delta = self.k * (score_i - e);
        self.ratings[i] += delta;
        self.ratings[j] -= delta;
    }
}

/// Play `games` between two agents, alternating who takes Black. Moves
/// are sampled with `temperature` for the first `temperature_moves` plies
/// of each game (0.0 ⇒ fully greedy, deterministic matches).
#[allow(clippy::too_many_arguments)]
pub fn play_match<G: Game, R: Rng + ?Sized>(
    initial: &G,
    agent_a: &mut dyn SearchScheme<G>,
    agent_b: &mut dyn SearchScheme<G>,
    games: u32,
    temperature: f32,
    temperature_moves: usize,
    max_moves: usize,
    rng: &mut R,
) -> MatchResult {
    let mut result = MatchResult::default();
    for round in 0..games {
        let a_is_black = round % 2 == 0;
        let mut game = initial.clone();
        let mut moves = 0usize;
        // A fresh game: stateful agents (tree reuse) must drop any tree
        // retained from the previous round.
        agent_a.reset();
        agent_b.reset();
        while game.status() == Status::Ongoing && moves < max_moves {
            let a_turn = (game.to_move() == Player::Black) == a_is_black;
            let search = if a_turn {
                agent_a.search(&game)
            } else {
                agent_b.search(&game)
            };
            let t = if moves < temperature_moves {
                temperature
            } else {
                0.0
            };
            let action = search.sample_action(t, rng);
            debug_assert!(game.is_legal(action));
            game.apply(action);
            // Both agents observe the move actually played, so reuse
            // trees track the game through the opponent's turns too.
            agent_a.advance(action);
            agent_b.advance(action);
            moves += 1;
        }
        let a_player = if a_is_black {
            Player::Black
        } else {
            Player::White
        };
        match game.status() {
            Status::Won(w) if w == a_player => result.wins_a += 1,
            Status::Won(_) => result.wins_b += 1,
            _ => result.draws += 1,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;
    use mcts::{serial::SerialSearch, MctsConfig, UniformEvaluator};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn agent(playouts: usize) -> SerialSearch {
        SerialSearch::new(
            MctsConfig {
                playouts,
                ..Default::default()
            },
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        )
    }

    #[test]
    fn symmetric_agents_split_or_draw() {
        let mut a = agent(64);
        let mut b = agent(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = play_match(&TicTacToe::new(), &mut a, &mut b, 6, 0.8, 3, 20, &mut rng);
        assert_eq!(r.games(), 6);
        // Identical agents should land near 50%.
        assert!(
            (r.score_a() - 0.5).abs() <= 0.34,
            "symmetric match skewed: {r:?}"
        );
    }

    #[test]
    fn stronger_search_budget_wins_more() {
        // 256-playout search vs 4-playout search: A should score >= 50%.
        let mut a = agent(256);
        let mut b = agent(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let r = play_match(&TicTacToe::new(), &mut a, &mut b, 8, 0.8, 2, 20, &mut rng);
        assert!(
            r.score_a() >= 0.5,
            "deeper search should not lose the match: {r:?}"
        );
        assert!(r.wins_b <= r.wins_a, "{r:?}");
    }

    #[test]
    fn greedy_match_is_deterministic() {
        let run = || {
            let mut a = agent(32);
            let mut b = agent(32);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            play_match(&TicTacToe::new(), &mut a, &mut b, 2, 0.0, 0, 20, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_match_scores_half() {
        assert_eq!(MatchResult::default().score_a(), 0.5);
    }

    #[test]
    fn elo_diff_at_even_score_is_zero() {
        assert!(elo_diff(0.5).abs() < 1e-9);
    }

    #[test]
    fn elo_diff_known_anchors() {
        // 64% score ≈ +100 Elo; 76% ≈ +200 (standard table values).
        assert!((elo_diff(0.64) - 100.0).abs() < 5.0);
        assert!((elo_diff(0.76) - 200.0).abs() < 5.0);
        // Symmetry: diff(s) = -diff(1-s).
        assert!((elo_diff(0.3) + elo_diff(0.7)).abs() < 1e-9);
    }

    #[test]
    fn elo_diff_clamps_sweeps() {
        assert!(elo_diff(1.0).is_finite());
        assert!(elo_diff(0.0).is_finite());
        assert!(elo_diff(1.0) > 1000.0);
    }

    #[test]
    fn tracker_conserves_total_rating() {
        let mut t = EloTracker::new(3, 32.0);
        let total0: f64 = (0..3).map(|i| t.rating(i)).sum();
        t.record(0, 1, 1.0);
        t.record(1, 2, 0.0);
        t.record(2, 0, 0.5);
        let total1: f64 = (0..3).map(|i| t.rating(i)).sum();
        assert!((total0 - total1).abs() < 1e-9, "zero-sum updates");
    }

    #[test]
    fn winner_gains_loser_drops() {
        let mut t = EloTracker::new(2, 32.0);
        t.record(0, 1, 1.0);
        assert!(t.rating(0) > 1500.0);
        assert!(t.rating(1) < 1500.0);
        // Expected score now favors agent 0.
        assert!(t.expected(0, 1) > 0.5);
    }

    #[test]
    fn repeated_wins_converge_not_diverge() {
        // As the rating gap grows, each further win moves ratings less.
        let mut t = EloTracker::new(2, 32.0);
        let mut deltas = Vec::new();
        for _ in 0..10 {
            let before = t.rating(0);
            t.record(0, 1, 1.0);
            deltas.push(t.rating(0) - before);
        }
        for w in deltas.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "update magnitude must shrink");
        }
    }

    #[test]
    #[should_panic(expected = "cannot play itself")]
    fn self_play_rating_rejected() {
        let mut t = EloTracker::new(2, 32.0);
        t.record(1, 1, 0.5);
    }

    #[test]
    fn score_accounts_draws_as_half() {
        let r = MatchResult {
            wins_a: 1,
            wins_b: 1,
            draws: 2,
        };
        assert_eq!(r.score_a(), 0.5);
        assert_eq!(r.games(), 4);
    }
}
