//! One self-play episode (Algorithm 1, lines 3–12): play a full game with
//! tree-based search choosing every move, collecting `(s, π)` pairs and
//! labeling them with the final outcome `z`.

use games::{Game, Player, Status};
use mcts::{SearchScheme, SearchStats};
use rand::Rng;

use crate::replay::Sample;

/// Result of one episode.
#[derive(Debug, Clone)]
pub struct EpisodeOutcome {
    /// Training samples in move order.
    pub samples: Vec<Sample>,
    /// Number of moves played.
    pub moves: usize,
    /// Final status of the game.
    pub status: Status,
    /// Accumulated search statistics over all moves.
    pub search_stats: SearchStats,
}

/// Play one episode from `initial` using `search` for every move.
///
/// * `temperature_moves`: moves sampled with temperature 1.0 (exploration)
///   before switching to greedy play, the standard AlphaZero schedule.
/// * `max_moves`: hard cap (states beyond get labeled as a draw), needed
///   on large boards where random-priors games can run very long.
pub fn play_episode<G: Game, R: Rng + ?Sized>(
    initial: &G,
    search: &mut dyn SearchScheme<G>,
    temperature_moves: usize,
    max_moves: usize,
    rng: &mut R,
) -> EpisodeOutcome {
    let mut game = initial.clone();
    let mut pending: Vec<(Vec<f32>, Vec<f32>, Player)> = Vec::new();
    let mut stats = SearchStats::default();
    let mut moves = 0usize;
    // A fresh episode: stateful schemes drop any tree retained from a
    // previous episode played with the same searcher.
    search.reset();

    while game.status() == Status::Ongoing && moves < max_moves {
        let result = search.search(&game);
        accumulate(&mut stats, &result.stats);

        let mut state = vec![0.0f32; game.encoded_len()];
        game.encode(&mut state);
        pending.push((state, result.probs.clone(), game.to_move()));

        let temperature = if moves < temperature_moves { 1.0 } else { 0.0 };
        let action = result.sample_action(temperature, rng);
        debug_assert!(game.is_legal(action), "search proposed illegal move");
        game.apply(action);
        // Stateful schemes (tree reuse) re-root on the played move.
        search.advance(action);
        moves += 1;
    }

    let status = game.status();
    let samples = pending
        .into_iter()
        .map(|(state, pi, player)| Sample {
            state,
            pi,
            z: status.reward_for(player),
        })
        .collect();

    EpisodeOutcome {
        samples,
        moves,
        status,
        search_stats: stats,
    }
}

fn accumulate(total: &mut SearchStats, s: &SearchStats) {
    total.playouts += s.playouts;
    total.select_ns += s.select_ns;
    total.backup_ns += s.backup_ns;
    total.eval_ns += s.eval_ns;
    total.move_ns += s.move_ns;
    total.collisions += s.collisions;
    total.nodes += s.nodes;
    // Re-rooting schemes report nodes recycled onto the arena free-list;
    // the episode total quantifies how much memory tree reuse saved.
    total.reclaimed += s.reclaimed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;
    use mcts::{evaluator::UniformEvaluator, serial::SerialSearch, MctsConfig};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn searcher(playouts: usize) -> SerialSearch {
        SerialSearch::new(
            MctsConfig {
                playouts,
                ..Default::default()
            },
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        )
    }

    #[test]
    fn episode_reaches_terminal_state() {
        let mut s = searcher(50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = play_episode(&TicTacToe::new(), &mut s, 2, 20, &mut rng);
        assert!(out.status.is_terminal());
        assert_eq!(out.samples.len(), out.moves);
        assert!(out.moves >= 5, "TicTacToe needs ≥5 moves to finish");
    }

    #[test]
    fn outcomes_labeled_per_player_perspective() {
        let mut s = searcher(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let out = play_episode(&TicTacToe::new(), &mut s, 1, 20, &mut rng);
            match out.status {
                Status::Draw => {
                    assert!(out.samples.iter().all(|x| x.z == 0.0));
                }
                Status::Won(w) => {
                    // Alternating perspectives: samples where the winner
                    // was to move get +1, the loser's get -1.
                    for (i, sample) in out.samples.iter().enumerate() {
                        let mover = if i % 2 == 0 {
                            Player::Black
                        } else {
                            Player::White
                        };
                        let expect = if mover == w { 1.0 } else { -1.0 };
                        assert_eq!(sample.z, expect, "sample {i}");
                    }
                }
                Status::Ongoing => panic!("episode did not finish"),
            }
        }
    }

    #[test]
    fn pi_vectors_are_distributions() {
        let mut s = searcher(60);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let out = play_episode(&TicTacToe::new(), &mut s, 9, 20, &mut rng);
        for sample in &out.samples {
            let sum: f32 = sample.pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "pi sums to {sum}");
            assert!(sample.pi.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn max_moves_caps_episode() {
        let mut s = searcher(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let out = play_episode(&TicTacToe::new(), &mut s, 9, 3, &mut rng);
        assert_eq!(out.moves, 3);
        // Capped episodes are labeled like draws (z = 0 for ongoing).
        assert!(out.samples.iter().all(|x| x.z == 0.0));
    }

    #[test]
    fn reuse_episode_reports_reclaimed_nodes() {
        use mcts::ReusableSearch;
        let mut s = ReusableSearch::new(
            MctsConfig {
                playouts: 60,
                ..Default::default()
            },
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let out = play_episode(&TicTacToe::new(), &mut s, 2, 20, &mut rng);
        assert!(out.status.is_terminal());
        assert!(
            out.search_stats.reclaimed > 0,
            "in-place re-rooting must reclaim discarded siblings"
        );
        // The retained tree's accounting stays closed.
        let stats = s.tree_stats().expect("tree retained after episode");
        assert_eq!(stats.live + stats.free, stats.high_water);
        assert!(stats.reclaimed_total >= out.search_stats.reclaimed);
    }

    #[test]
    fn search_stats_accumulate_across_moves() {
        let mut s = searcher(30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let out = play_episode(&TicTacToe::new(), &mut s, 2, 20, &mut rng);
        assert_eq!(out.search_stats.playouts, 30 * out.moves as u64);
        assert!(out.search_stats.move_ns > 0);
    }
}
