//! Loss-over-time and throughput instrumentation (Figures 6 and 7).

use nn::LossParts;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One point on the loss curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossPoint {
    /// Wall-clock seconds since recording started.
    pub t_sec: f64,
    /// Value-head MSE component.
    pub value: f32,
    /// Policy cross-entropy component.
    pub policy: f32,
    /// Total loss (Eq. 2).
    pub total: f32,
}

/// Records `(wall-clock, loss)` points — the data behind Figure 7.
#[derive(Debug)]
pub struct LossRecorder {
    start: Instant,
    points: Vec<LossPoint>,
}

impl Default for LossRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LossRecorder {
    /// Start recording now.
    pub fn new() -> Self {
        LossRecorder {
            start: Instant::now(),
            points: Vec::new(),
        }
    }

    /// Record a loss observation at the current wall-clock time.
    pub fn record(&mut self, parts: LossParts) {
        self.points.push(LossPoint {
            t_sec: self.start.elapsed().as_secs_f64(),
            value: parts.value,
            policy: parts.policy,
            total: parts.total,
        });
    }

    /// Recorded points in chronological order.
    pub fn points(&self) -> &[LossPoint] {
        &self.points
    }

    /// Mean total loss over the last `k` points (smoothing for reports).
    pub fn recent_mean(&self, k: usize) -> Option<f32> {
        if self.points.is_empty() {
            return None;
        }
        let tail = &self.points[self.points.len().saturating_sub(k)..];
        Some(tail.iter().map(|p| p.total).sum::<f32>() / tail.len() as f32)
    }

    /// CSV with header, one row per point.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_sec,value_loss,policy_loss,total_loss\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{:.6},{:.6},{:.6}\n",
                p.t_sec, p.value, p.policy, p.total
            ));
        }
        out
    }
}

/// Samples-per-second accounting (Figure 6). One sample = one move's
/// tree-based search (1600 iterations in the paper's setup).
#[derive(Debug, Default, Clone, Copy)]
pub struct ThroughputMeter {
    /// Samples produced by self-play.
    pub samples: u64,
    /// Time spent in tree-based search, ns.
    pub search_ns: u64,
    /// Time spent in DNN training (SGD), ns.
    pub train_ns: u64,
    /// Search and training overlap (producer/consumer pipelining)?
    pub overlapped: bool,
}

impl ThroughputMeter {
    /// Throughput = samples / Σ(tree-based search time + DNN update time)
    /// (§5.1). With an overlapped (GPU-offloaded) trainer the denominator
    /// is the max of the stages instead of the sum.
    pub fn samples_per_sec(&self) -> f64 {
        let denom_ns = if self.overlapped {
            self.search_ns.max(self.train_ns)
        } else {
            self.search_ns + self.train_ns
        };
        if denom_ns == 0 {
            return 0.0;
        }
        self.samples as f64 / (denom_ns as f64 * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts(total: f32) -> LossParts {
        LossParts {
            value: total / 2.0,
            policy: total / 2.0,
            total,
        }
    }

    #[test]
    fn recorder_orders_points_in_time() {
        let mut r = LossRecorder::new();
        r.record(parts(3.0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.record(parts(2.0));
        let pts = r.points();
        assert_eq!(pts.len(), 2);
        assert!(pts[1].t_sec >= pts[0].t_sec);
        assert_eq!(pts[1].total, 2.0);
    }

    #[test]
    fn recent_mean_smooths() {
        let mut r = LossRecorder::new();
        for t in [4.0, 3.0, 2.0, 1.0] {
            r.record(parts(t));
        }
        assert_eq!(r.recent_mean(2), Some(1.5));
        assert_eq!(r.recent_mean(100), Some(2.5));
        assert_eq!(LossRecorder::new().recent_mean(3), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = LossRecorder::new();
        r.record(parts(1.0));
        let csv = r.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("t_sec,"));
        assert!(lines[1].contains("1.000000"));
    }

    #[test]
    fn throughput_sum_vs_overlap() {
        let m = ThroughputMeter {
            samples: 100,
            search_ns: 1_000_000_000,
            train_ns: 1_000_000_000,
            overlapped: false,
        };
        assert!((m.samples_per_sec() - 50.0).abs() < 1e-9);
        let o = ThroughputMeter {
            overlapped: true,
            ..m
        };
        assert!((o.samples_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_throughput_is_zero() {
        assert_eq!(ThroughputMeter::default().samples_per_sec(), 0.0);
    }
}
