//! The self-play dataset: a bounded ring buffer of training samples.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::Tensor;

/// One training datapoint `(s_t, π_t, z_t)` (paper §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Encoded state planes (flattened `[c, h, w]`).
    pub state: Vec<f32>,
    /// MCTS visit distribution over the action space.
    pub pi: Vec<f32>,
    /// Final outcome from the perspective of the player to move at `s_t`.
    pub z: f32,
}

/// Bounded FIFO replay buffer with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    samples: Vec<Sample>,
    capacity: usize,
    /// Next overwrite position once full.
    cursor: usize,
    /// Total pushes ever (for stats).
    pushed: u64,
    state_len: usize,
    action_space: usize,
}

impl ReplayBuffer {
    /// Buffer for samples of the given shapes.
    pub fn new(capacity: usize, state_len: usize, action_space: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            samples: Vec::with_capacity(capacity.min(4096)),
            capacity,
            cursor: 0,
            pushed: 0,
            state_len,
            action_space,
        }
    }

    /// Current number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (≥ `len()`).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a sample, evicting the oldest once at capacity.
    pub fn push(&mut self, sample: Sample) {
        assert_eq!(sample.state.len(), self.state_len, "state shape");
        assert_eq!(sample.pi.len(), self.action_space, "pi shape");
        debug_assert!((-1.0..=1.0).contains(&sample.z), "z out of range");
        self.pushed += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.cursor] = sample;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Sample `k` datapoints uniformly with replacement and pack them into
    /// training tensors: `(states [k, state_len], pis [k, A], zs [k, 1])`.
    /// The caller reshapes `states` to NCHW.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> (Tensor, Tensor, Tensor) {
        assert!(!self.is_empty(), "sampling from an empty buffer");
        assert!(k > 0);
        let mut states = Vec::with_capacity(k * self.state_len);
        let mut pis = Vec::with_capacity(k * self.action_space);
        let mut zs = Vec::with_capacity(k);
        for _ in 0..k {
            let s = &self.samples[rng.gen_range(0..self.samples.len())];
            states.extend_from_slice(&s.state);
            pis.extend_from_slice(&s.pi);
            zs.push(s.z);
        }
        (
            Tensor::from_vec(states, &[k, self.state_len]),
            Tensor::from_vec(pis, &[k, self.action_space]),
            Tensor::from_vec(zs, &[k, 1]),
        )
    }

    /// Direct access to a stored sample (for tests/inspection).
    pub fn get(&self, i: usize) -> &Sample {
        &self.samples[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample(tag: f32) -> Sample {
        Sample {
            state: vec![tag; 4],
            pi: vec![0.5, 0.5],
            z: 0.0,
        }
    }

    #[test]
    fn grows_until_capacity_then_evicts_fifo() {
        let mut b = ReplayBuffer::new(3, 4, 2);
        for i in 0..5 {
            b.push(sample(i as f32));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_pushed(), 5);
        // Oldest (0, 1) evicted; 2, 3, 4 remain (in ring order).
        let tags: Vec<f32> = (0..3).map(|i| b.get(i).state[0]).collect();
        let mut sorted = tags.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn batch_shapes_are_correct() {
        let mut b = ReplayBuffer::new(10, 4, 2);
        for i in 0..4 {
            b.push(sample(i as f32));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (s, p, z) = b.sample_batch(&mut rng, 7);
        assert_eq!(s.dims(), &[7, 4]);
        assert_eq!(p.dims(), &[7, 2]);
        assert_eq!(z.dims(), &[7, 1]);
    }

    #[test]
    fn batch_draws_only_stored_samples() {
        let mut b = ReplayBuffer::new(10, 4, 2);
        b.push(sample(7.0));
        b.push(sample(9.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (s, _, _) = b.sample_batch(&mut rng, 20);
        for row in 0..20 {
            let v = s.data()[row * 4];
            assert!(v == 7.0 || v == 9.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_buffer_panics() {
        let b = ReplayBuffer::new(4, 4, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = b.sample_batch(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "state shape")]
    fn wrong_state_shape_rejected() {
        let mut b = ReplayBuffer::new(4, 4, 2);
        b.push(Sample {
            state: vec![0.0; 3],
            pi: vec![0.5, 0.5],
            z: 0.0,
        });
    }

    #[test]
    fn uniformish_sampling() {
        let mut b = ReplayBuffer::new(4, 4, 2);
        for i in 0..2 {
            b.push(sample(i as f32));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (s, _, _) = b.sample_batch(&mut rng, 4000);
        let zeros = (0..4000).filter(|&r| s.data()[r * 4] == 0.0).count();
        let frac = zeros as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }
}
