//! Symmetry-based data augmentation for the replay buffer.
//!
//! AlphaGo-Zero-style training expands every self-play sample into the
//! eight dihedral variants of the board (rotations/reflections), permuting
//! the policy target to match while the outcome `z` is invariant. This
//! multiplies the effective dataset by 8× per episode at negligible cost —
//! particularly valuable in short runs like Figure 7's loss curves.

use crate::replay::{ReplayBuffer, Sample};
use games::symmetry::augment_sample;

/// Push `sample` plus its seven symmetric variants into `replay`.
///
/// * `channels` — number of encoding planes (`Game::encoded_shape().0`);
/// * `board` — board side length (the encoding must be square).
///
/// Policies longer than `board²` (e.g. Othello's trailing pass action)
/// keep their non-spatial entries fixed.
pub fn push_augmented(replay: &mut ReplayBuffer, sample: &Sample, channels: usize, board: usize) {
    assert_eq!(
        sample.state.len(),
        channels * board * board,
        "state is not a square {channels}-plane encoding"
    );
    assert!(
        sample.pi.len() >= board * board,
        "policy shorter than the board"
    );
    for (state, pi) in augment_sample(&sample.state, &sample.pi, channels, board) {
        replay.push(Sample {
            state,
            pi,
            z: sample.z,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marked_sample() -> Sample {
        // 1 channel, 3×3 board: a single hot cell at (0,1), policy massed
        // on the matching action.
        let mut state = vec![0.0; 9];
        state[1] = 1.0;
        let mut pi = vec![0.0; 9];
        pi[1] = 1.0;
        Sample { state, pi, z: 0.5 }
    }

    #[test]
    fn pushes_eight_variants_with_invariant_z() {
        let mut buf = ReplayBuffer::new(64, 9, 9);
        push_augmented(&mut buf, &marked_sample(), 1, 3);
        assert_eq!(buf.len(), 8);
        for i in 0..8 {
            assert_eq!(buf.get(i).z, 0.5);
            // Policy mass stays on the cell the state marks.
            let s = buf.get(i);
            let hot_state = s.state.iter().position(|&v| v == 1.0).unwrap();
            let hot_pi = s.pi.iter().position(|&v| v == 1.0).unwrap();
            assert_eq!(hot_state, hot_pi, "state/policy must rotate together");
        }
    }

    #[test]
    fn identity_variant_is_first() {
        let mut buf = ReplayBuffer::new(64, 9, 9);
        let s = marked_sample();
        push_augmented(&mut buf, &s, 1, 3);
        assert_eq!(buf.get(0).state, s.state);
        assert_eq!(buf.get(0).pi, s.pi);
    }

    #[test]
    fn pass_action_entry_survives_augmentation() {
        // 4×4 board with a trailing pass entry in the policy.
        let mut state = vec![0.0; 16];
        state[5] = 1.0;
        let mut pi = vec![0.0; 17];
        pi[16] = 0.25;
        pi[5] = 0.75;
        let mut buf = ReplayBuffer::new(64, 16, 17);
        push_augmented(&mut buf, &Sample { state, pi, z: -1.0 }, 1, 4);
        assert_eq!(buf.len(), 8);
        for i in 0..8 {
            assert_eq!(buf.get(i).pi[16], 0.25, "pass probability must be fixed");
            let sum: f32 = buf.get(i).pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_encoding_rejected() {
        let mut buf = ReplayBuffer::new(8, 6, 6);
        let s = Sample {
            state: vec![0.0; 6],
            pi: vec![0.0; 6],
            z: 0.0,
        };
        push_augmented(&mut buf, &s, 1, 3);
    }
}
