//! Zobrist hashing tables for incremental position fingerprints.
//!
//! Each (cell, player) pair gets a fixed pseudo-random 64-bit key; a position
//! hash is the XOR of the keys of all occupied cells plus a side-to-move key.
//! XOR-ing a key in/out updates the hash in O(1) per move.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Precomputed Zobrist keys for a board with `cells` squares and two players.
#[derive(Debug, Clone)]
pub struct ZobristTable {
    /// `keys[player][cell]`.
    keys: [Vec<u64>; 2],
    /// XOR-ed in when White is to move.
    pub side_key: u64,
}

impl ZobristTable {
    /// Build a table for `cells` squares using a fixed seed so hashes are
    /// stable across runs (needed for reproducible tests and transpositions).
    pub fn new(cells: usize) -> Self {
        // Fixed seed: hashes must be identical across processes.
        let mut rng = StdRng::seed_from_u64(0x5EED_0B57_AC1E_u64);
        let mut keys = [Vec::with_capacity(cells), Vec::with_capacity(cells)];
        for side in &mut keys {
            for _ in 0..cells {
                side.push(rng.gen::<u64>());
            }
        }
        let side_key = rng.gen::<u64>();
        ZobristTable { keys, side_key }
    }

    /// Key for `player` occupying `cell`.
    #[inline]
    pub fn key(&self, player: usize, cell: usize) -> u64 {
        self.keys[player][cell]
    }

    /// Number of cells this table covers.
    pub fn cells(&self) -> usize {
        self.keys[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = ZobristTable::new(64);
        let b = ZobristTable::new(64);
        for c in 0..64 {
            assert_eq!(a.key(0, c), b.key(0, c));
            assert_eq!(a.key(1, c), b.key(1, c));
        }
        assert_eq!(a.side_key, b.side_key);
    }

    #[test]
    fn keys_are_distinct() {
        let t = ZobristTable::new(225);
        let mut seen = std::collections::HashSet::new();
        for p in 0..2 {
            for c in 0..225 {
                assert!(seen.insert(t.key(p, c)), "duplicate key at ({p},{c})");
            }
        }
        assert!(seen.insert(t.side_key));
    }

    #[test]
    fn xor_roundtrip_restores_hash() {
        let t = ZobristTable::new(9);
        let h0 = 0xDEAD_BEEFu64;
        let h1 = h0 ^ t.key(0, 4);
        assert_ne!(h0, h1);
        assert_eq!(h1 ^ t.key(0, 4), h0);
    }

    #[test]
    fn cells_reports_size() {
        assert_eq!(ZobristTable::new(42).cells(), 42);
    }
}
