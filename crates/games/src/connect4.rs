//! Connect-Four (7×6) with a two-bitboard representation.
//!
//! Mid-sized benchmark between TicTacToe and Gomoku: action space of 7,
//! games of at most 42 plies, and a well-known first-player-wins theory.
//! Used in integration tests and as the second domain-specific example.
//!
//! Bitboard layout follows the classic 7-column × (6+1)-row scheme: each
//! column occupies 7 bits with the top bit always empty, which makes the
//! four-direction win test four shift-and operations.

use crate::traits::{Action, Game, Player, Status};

/// Columns on the board.
pub const COLS: usize = 7;
/// Playable rows per column.
pub const ROWS: usize = 6;
/// Bits per column (one sentinel row on top).
const COL_BITS: usize = ROWS + 1;

/// Connect-Four position. `Copy`-cheap: two u64 bitboards plus metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Connect4 {
    /// Stones of each player; bit `col * 7 + row` (row 0 = bottom).
    boards: [u64; 2],
    /// Number of stones in each column.
    heights: [u8; COLS],
    to_move: Player,
    last_move: Option<Action>,
    moves: u8,
}

impl Connect4 {
    /// Empty board, Black to move.
    pub fn new() -> Self {
        Connect4 {
            boards: [0, 0],
            heights: [0; COLS],
            to_move: Player::Black,
            last_move: None,
            moves: 0,
        }
    }

    /// Does bitboard `b` contain four in a row?
    #[inline]
    fn has_four(b: u64) -> bool {
        // directions: vertical 1, horizontal 7, diag 6, anti-diag 8
        for shift in [1u32, 7, 6, 8] {
            let m = b & (b >> shift);
            if m & (m >> (2 * shift)) != 0 {
                return true;
            }
        }
        false
    }

    /// Stone at `(row, col)` with row 0 at the bottom.
    pub fn stone_at(&self, row: usize, col: usize) -> Option<Player> {
        let bit = 1u64 << (col * COL_BITS + row);
        if self.boards[0] & bit != 0 {
            Some(Player::Black)
        } else if self.boards[1] & bit != 0 {
            Some(Player::White)
        } else {
            None
        }
    }

    /// Height (stones placed) of `col`.
    pub fn height(&self, col: usize) -> usize {
        self.heights[col] as usize
    }
}

impl Default for Connect4 {
    fn default() -> Self {
        Self::new()
    }
}

impl Game for Connect4 {
    fn action_space(&self) -> usize {
        COLS
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, ROWS, COLS)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        if Self::has_four(self.boards[0]) {
            Status::Won(Player::Black)
        } else if Self::has_four(self.boards[1]) {
            Status::Won(Player::White)
        } else if self.moves as usize == COLS * ROWS {
            Status::Draw
        } else {
            Status::Ongoing
        }
    }

    fn is_legal(&self, a: Action) -> bool {
        (a as usize) < COLS
            && self.heights[a as usize] < ROWS as u8
            && self.status() == Status::Ongoing
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.status() != Status::Ongoing {
            return;
        }
        out.extend((0..COLS as u16).filter(|&c| self.heights[c as usize] < ROWS as u8));
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal move {a}");
        let col = a as usize;
        let row = self.heights[col] as usize;
        self.boards[self.to_move.index()] |= 1u64 << (col * COL_BITS + row);
        self.heights[col] += 1;
        self.moves += 1;
        self.last_move = Some(a);
        self.to_move = self.to_move.other();
    }

    fn encode(&self, out: &mut [f32]) {
        let plane = ROWS * COLS;
        assert_eq!(out.len(), 4 * plane);
        out.fill(0.0);
        let me = self.to_move.index();
        for row in 0..ROWS {
            for col in 0..COLS {
                let bit = 1u64 << (col * COL_BITS + row);
                let idx = row * COLS + col;
                if self.boards[me] & bit != 0 {
                    out[idx] = 1.0;
                } else if self.boards[1 - me] & bit != 0 {
                    out[plane + idx] = 1.0;
                }
            }
        }
        if let Some(a) = self.last_move {
            let col = a as usize;
            let row = self.heights[col] as usize - 1;
            out[2 * plane + row * COLS + col] = 1.0;
        }
        if self.to_move == Player::Black {
            out[3 * plane..].fill(1.0);
        }
    }

    fn hash(&self) -> u64 {
        // The classic Connect-4 perfect key: position + mask + bottom row.
        let mask = self.boards[0] | self.boards[1];
        self.boards[self.to_move.index()]
            .wrapping_add(mask)
            .wrapping_add(0x01_0101_0101_0101)
    }

    fn move_count(&self) -> usize {
        self.moves as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_stacks_stones() {
        let mut g = Connect4::new();
        g.apply(3);
        g.apply(3);
        g.apply(3);
        assert_eq!(g.stone_at(0, 3), Some(Player::Black));
        assert_eq!(g.stone_at(1, 3), Some(Player::White));
        assert_eq!(g.stone_at(2, 3), Some(Player::Black));
        assert_eq!(g.height(3), 3);
    }

    #[test]
    fn vertical_win() {
        let mut g = Connect4::new();
        for a in [0u16, 1, 0, 1, 0, 1, 0] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn horizontal_win() {
        let mut g = Connect4::new();
        for a in [0u16, 0, 1, 1, 2, 2, 3] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn diagonal_win() {
        let mut g = Connect4::new();
        // Build a / diagonal for Black: (0,0),(1,1),(2,2),(3,3)
        for a in [0u16, 1, 1, 2, 2, 3, 2, 3, 3, 6, 3] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn column_fills_up() {
        let mut g = Connect4::new();
        for _ in 0..ROWS {
            g.apply(5);
        }
        assert!(!g.is_legal(5));
        assert!(!g.legal_actions().contains(&5));
        assert_eq!(g.legal_actions().len(), 6);
    }

    #[test]
    fn no_false_wins_across_columns() {
        // Stones at top of col 0 and bottom of col 1 are NOT adjacent:
        // the sentinel row prevents wraparound.
        let mut g = Connect4::new();
        // Black: (0,0),(1,0)... no win expected from wraparound patterns.
        for a in [0u16, 6, 0, 6, 0, 6] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Ongoing);
    }

    #[test]
    fn random_games_terminate_legally() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let mut g = Connect4::new();
            let mut n = 0;
            while g.status() == Status::Ongoing {
                let acts = g.legal_actions();
                assert!(!acts.is_empty());
                g.apply(*acts.choose(&mut rng).unwrap());
                n += 1;
                assert!(n <= 42);
            }
        }
    }

    #[test]
    fn encode_buffer_layout() {
        let mut g = Connect4::new();
        g.apply(3);
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        let plane = 42;
        // White to move: Black's stone shows on opponent plane at (0,3).
        assert_eq!(buf[plane + 3], 1.0);
        assert_eq!(buf[2 * plane + 3], 1.0, "last-move plane");
        assert!(buf[3 * plane..].iter().all(|&x| x == 0.0));
    }

    /// Stone layout + side to move: everything the hash must identify
    /// (move-order metadata like `last_move` is deliberately excluded).
    fn canonical(g: &Connect4) -> (Vec<Option<Player>>, Player) {
        let mut cells = Vec::with_capacity(ROWS * COLS);
        for r in 0..ROWS {
            for c in 0..COLS {
                cells.push(g.stone_at(r, c));
            }
        }
        (cells, g.to_move())
    }

    #[test]
    fn hash_is_transposition_invariant() {
        // X: cols 0 and 2, O: col 1 — reached in either order.
        let mut a = Connect4::new();
        for m in [0u16, 1, 2] {
            a.apply(m);
        }
        let mut b = Connect4::new();
        for m in [2u16, 1, 0] {
            b.apply(m);
        }
        assert_eq!(canonical(&a), canonical(&b), "test setup: same position");
        assert_eq!(a.hash(), b.hash(), "transposed orders must collide");
    }

    #[test]
    fn hash_distinguishes_colors_and_mover() {
        // Same occupied cells, colors swapped: the key folds in the
        // mover's own bitboard, so these must differ.
        let mut a = Connect4::new();
        for m in [0u16, 1] {
            a.apply(m);
        }
        let mut b = Connect4::new();
        for m in [1u16, 0] {
            b.apply(m);
        }
        assert_ne!(a.hash(), b.hash(), "swapped colors, same mask");
        // Along any line of play every ply flips the mover and adds a
        // stone: all prefixes hash distinctly.
        let mut g = Connect4::new();
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(g.hash()));
        for m in [3u16, 3, 2, 4, 2, 5, 1] {
            g.apply(m);
            assert!(seen.insert(g.hash()), "prefix hashes must be distinct");
        }
    }

    #[test]
    fn hash_is_injective_over_random_playouts() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut seen: std::collections::HashMap<u64, (Vec<Option<Player>>, Player)> =
            Default::default();
        for _ in 0..300 {
            let mut g = Connect4::new();
            while g.status() == Status::Ongoing {
                let acts = g.legal_actions();
                g.apply(*acts.choose(&mut rng).unwrap());
                let key = canonical(&g);
                if let Some(prev) = seen.insert(g.hash(), key.clone()) {
                    assert_eq!(prev, key, "hash collision between distinct positions");
                }
            }
        }
        assert!(seen.len() > 1000, "playouts must cover many positions");
    }
}
