//! Dihedral-group (D4) board symmetries for data augmentation.
//!
//! AlphaZero-style training multiplies every self-play sample eightfold by
//! exploiting the symmetry of square boards: the state planes are rotated or
//! reflected and the policy vector is permuted to match. Games whose action
//! space carries trailing non-spatial actions (Othello's pass) keep those
//! entries fixed — only the leading `size²` spatial actions permute.
//!
//! Transforms are expressed as coordinate maps `(r, c) → (r', c')`; all
//! eight group elements and their inverses are provided so augmentation can
//! be undone (useful for symmetry-averaged inference).

/// One element of the dihedral group of the square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symmetry {
    /// Do nothing.
    Identity,
    /// Rotate 90° clockwise.
    Rot90,
    /// Rotate 180°.
    Rot180,
    /// Rotate 270° clockwise (90° counter-clockwise).
    Rot270,
    /// Mirror left–right (columns reverse).
    FlipH,
    /// Mirror top–bottom (rows reverse).
    FlipV,
    /// Transpose across the main diagonal.
    FlipDiag,
    /// Transpose across the anti-diagonal.
    FlipAnti,
}

impl Symmetry {
    /// All eight group elements, identity first.
    pub const ALL: [Symmetry; 8] = [
        Symmetry::Identity,
        Symmetry::Rot90,
        Symmetry::Rot180,
        Symmetry::Rot270,
        Symmetry::FlipH,
        Symmetry::FlipV,
        Symmetry::FlipDiag,
        Symmetry::FlipAnti,
    ];

    /// Where cell `(r, c)` of an `n × n` board lands under this transform.
    #[inline]
    pub fn apply_cell(self, n: usize, r: usize, c: usize) -> (usize, usize) {
        debug_assert!(r < n && c < n);
        match self {
            Symmetry::Identity => (r, c),
            Symmetry::Rot90 => (c, n - 1 - r),
            Symmetry::Rot180 => (n - 1 - r, n - 1 - c),
            Symmetry::Rot270 => (n - 1 - c, r),
            Symmetry::FlipH => (r, n - 1 - c),
            Symmetry::FlipV => (n - 1 - r, c),
            Symmetry::FlipDiag => (c, r),
            Symmetry::FlipAnti => (n - 1 - c, n - 1 - r),
        }
    }

    /// The group inverse (`s.inverse().apply_cell ∘ s.apply_cell = id`).
    #[inline]
    pub fn inverse(self) -> Symmetry {
        match self {
            Symmetry::Rot90 => Symmetry::Rot270,
            Symmetry::Rot270 => Symmetry::Rot90,
            other => other, // all remaining elements are involutions
        }
    }

    /// Transform plane-major feature maps: `planes` is `[channels * n * n]`
    /// row-major within each plane. Returns the transformed copy.
    pub fn transform_planes(self, planes: &[f32], channels: usize, n: usize) -> Vec<f32> {
        assert_eq!(planes.len(), channels * n * n, "plane buffer size");
        let mut out = vec![0.0; planes.len()];
        let area = n * n;
        for ch in 0..channels {
            let src = &planes[ch * area..(ch + 1) * area];
            let dst = &mut out[ch * area..(ch + 1) * area];
            for r in 0..n {
                for c in 0..n {
                    let (nr, nc) = self.apply_cell(n, r, c);
                    dst[nr * n + nc] = src[r * n + c];
                }
            }
        }
        out
    }

    /// Permute a policy vector over an `n × n` spatial action grid. Entries
    /// beyond `n²` (e.g. a pass action) are copied through unchanged.
    pub fn permute_policy(self, policy: &[f32], n: usize) -> Vec<f32> {
        assert!(policy.len() >= n * n, "policy shorter than the board");
        let mut out = policy.to_vec();
        for r in 0..n {
            for c in 0..n {
                let (nr, nc) = self.apply_cell(n, r, c);
                out[nr * n + nc] = policy[r * n + c];
            }
        }
        out
    }

    /// Map a single spatial action index; non-spatial indices (≥ `n²`) are
    /// returned unchanged.
    pub fn map_action(self, a: usize, n: usize) -> usize {
        if a >= n * n {
            return a;
        }
        let (nr, nc) = self.apply_cell(n, a / n, a % n);
        nr * n + nc
    }
}

/// Expand one training sample into all eight symmetric variants:
/// `(planes, policy)` pairs; the value target is symmetry-invariant so
/// callers reuse it. The identity variant is element 0.
pub fn augment_sample(
    planes: &[f32],
    policy: &[f32],
    channels: usize,
    n: usize,
) -> Vec<(Vec<f32>, Vec<f32>)> {
    Symmetry::ALL
        .iter()
        .map(|s| {
            (
                s.transform_planes(planes, channels, n),
                s.permute_policy(policy, n),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_are_distinct_on_a_marked_cell() {
        // Cell (0,1) on a 4×4 board sits on no symmetry axis, so it has a
        // distinct image under each group element.
        let images: Vec<(usize, usize)> = Symmetry::ALL
            .iter()
            .map(|s| s.apply_cell(4, 0, 1))
            .collect();
        let mut uniq = images.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "images: {images:?}");
    }

    #[test]
    fn inverse_undoes_every_element() {
        for s in Symmetry::ALL {
            for r in 0..4 {
                for c in 0..4 {
                    let (tr, tc) = s.apply_cell(4, r, c);
                    assert_eq!(s.inverse().apply_cell(4, tr, tc), (r, c), "{s:?}");
                }
            }
        }
    }

    #[test]
    fn rot90_four_times_is_identity() {
        for r in 0..5 {
            for c in 0..5 {
                let mut cur = (r, c);
                for _ in 0..4 {
                    cur = Symmetry::Rot90.apply_cell(5, cur.0, cur.1);
                }
                assert_eq!(cur, (r, c));
            }
        }
    }

    #[test]
    fn rot90_twice_is_rot180() {
        for r in 0..4 {
            for c in 0..4 {
                let once = Symmetry::Rot90.apply_cell(4, r, c);
                let twice = Symmetry::Rot90.apply_cell(4, once.0, once.1);
                assert_eq!(twice, Symmetry::Rot180.apply_cell(4, r, c));
            }
        }
    }

    #[test]
    fn plane_transform_moves_marked_cell() {
        let n = 3;
        let mut planes = vec![0.0; 2 * n * n];
        planes[1] = 1.0; // channel 0, (0,1)
        planes[9 + 8] = 2.0; // channel 1, (2,2)
        let out = Symmetry::Rot90.transform_planes(&planes, 2, n);
        // (0,1) → (1,2); (2,2) → (2,0).
        assert_eq!(out[5], 1.0);
        assert_eq!(out[9 + 6], 2.0);
        assert_eq!(out.iter().filter(|&&v| v != 0.0).count(), 2);
    }

    #[test]
    fn policy_permutation_preserves_mass_and_pass() {
        let n = 3;
        let mut policy = vec![0.0; n * n + 1];
        policy[1] = 0.7;
        policy[9] = 0.3; // pass
        for s in Symmetry::ALL {
            let out = s.permute_policy(&policy, n);
            assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-6);
            assert_eq!(out[9], 0.3, "pass entry must not move under {s:?}");
        }
    }

    #[test]
    fn map_action_matches_policy_permutation() {
        let n = 4;
        for s in Symmetry::ALL {
            for a in 0..n * n {
                let mut policy = vec![0.0; n * n];
                policy[a] = 1.0;
                let out = s.permute_policy(&policy, n);
                assert_eq!(out[s.map_action(a, n)], 1.0);
            }
            assert_eq!(s.map_action(n * n, n), n * n, "pass is fixed");
        }
    }

    #[test]
    fn augment_sample_yields_eight_variants_identity_first() {
        let n = 3;
        let planes: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let policy: Vec<f32> = (0..9).map(|v| v as f32 / 36.0).collect();
        let variants = augment_sample(&planes, &policy, 1, n);
        assert_eq!(variants.len(), 8);
        assert_eq!(variants[0].0, planes);
        assert_eq!(variants[0].1, policy);
        // Every variant is a permutation: sorted contents match.
        for (p, pi) in &variants {
            let mut sp = p.clone();
            let mut spi = pi.clone();
            sp.sort_by(f32::total_cmp);
            spi.sort_by(f32::total_cmp);
            let mut rp = planes.clone();
            let mut rpi = policy.clone();
            rp.sort_by(f32::total_cmp);
            rpi.sort_by(f32::total_cmp);
            assert_eq!(sp, rp);
            assert_eq!(spi, rpi);
        }
    }

    #[test]
    fn gomoku_encoding_transforms_consistently_with_moves() {
        // Encode a Gomoku position, transform it, and compare against
        // encoding the position built from transformed moves.
        use crate::gomoku::Gomoku;
        use crate::traits::Game;
        let moves = [(1usize, 2usize), (0, 0), (2, 1)];
        let s = Symmetry::Rot90;
        let n = 5;

        let mut direct = Gomoku::new(n, 4);
        let mut mapped = Gomoku::new(n, 4);
        for &(r, c) in &moves {
            direct.apply(direct.rc_to_action(r, c));
            let (mr, mc) = s.apply_cell(n, r, c);
            mapped.apply(mapped.rc_to_action(mr, mc));
        }
        let mut enc_direct = vec![0.0; direct.encoded_len()];
        direct.encode(&mut enc_direct);
        let mut enc_mapped = vec![0.0; mapped.encoded_len()];
        mapped.encode(&mut enc_mapped);
        let transformed = s.transform_planes(&enc_direct, 4, n);
        assert_eq!(transformed, enc_mapped);
    }

    #[test]
    #[should_panic(expected = "plane buffer")]
    fn transform_rejects_wrong_size() {
        let _ = Symmetry::Rot90.transform_planes(&[0.0; 5], 1, 3);
    }
}
