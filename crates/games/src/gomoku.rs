//! Gomoku (five-in-a-row), the benchmark game of the paper.
//!
//! The paper evaluates on a 15×15 board with a five-stone winning line; the
//! implementation here is parameterized over board size and line length so
//! tests can use small boards (e.g. 6×6 / four in a row) that reach terminal
//! states quickly.
//!
//! State is a flat occupancy array plus incremental metadata (move count,
//! last move, Zobrist hash), so `apply` and `status` are O(board) worst case
//! and win detection is O(win_len) scanning only through the last move.

use crate::traits::{Action, Game, Player, Status};
use crate::zobrist::ZobristTable;
use std::sync::Arc;

/// Cell contents: 0 = empty, 1 = black, 2 = white.
const EMPTY: u8 = 0;

/// Gomoku position. Cheap to clone (one `Vec<u8>` + `Arc` table).
#[derive(Clone)]
pub struct Gomoku {
    size: usize,
    win_len: usize,
    cells: Vec<u8>,
    to_move: Player,
    last_move: Option<Action>,
    moves: usize,
    status: Status,
    hash: u64,
    zobrist: Arc<ZobristTable>,
}

impl std::fmt::Debug for Gomoku {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Gomoku {}x{} (win {}):",
            self.size, self.size, self.win_len
        )?;
        for r in 0..self.size {
            for c in 0..self.size {
                let ch = match self.cells[r * self.size + c] {
                    1 => 'X',
                    2 => 'O',
                    _ => '.',
                };
                write!(f, "{ch} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Gomoku {
    /// The paper's configuration: 15×15 board, five in a row.
    pub fn standard() -> Self {
        Self::new(15, 5)
    }

    /// Custom board. `win_len` must be ≤ `size` and ≥ 2.
    pub fn new(size: usize, win_len: usize) -> Self {
        assert!((2..=32).contains(&size), "board size out of range");
        assert!(win_len >= 2 && win_len <= size, "win length out of range");
        Gomoku {
            size,
            win_len,
            cells: vec![EMPTY; size * size],
            to_move: Player::Black,
            last_move: None,
            moves: 0,
            status: Status::Ongoing,
            hash: 0,
            zobrist: Arc::new(ZobristTable::new(size * size)),
        }
    }

    /// Board side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Stones in a row needed to win.
    pub fn win_len(&self) -> usize {
        self.win_len
    }

    /// Cell contents at `(row, col)`: `None` if empty.
    pub fn stone_at(&self, row: usize, col: usize) -> Option<Player> {
        match self.cells[row * self.size + col] {
            1 => Some(Player::Black),
            2 => Some(Player::White),
            _ => None,
        }
    }

    /// The most recently played action, if any.
    pub fn last_move(&self) -> Option<Action> {
        self.last_move
    }

    /// Convert `(row, col)` to an action index.
    #[inline]
    pub fn rc_to_action(&self, row: usize, col: usize) -> Action {
        (row * self.size + col) as Action
    }

    /// Convert an action index to `(row, col)`.
    #[inline]
    pub fn action_to_rc(&self, a: Action) -> (usize, usize) {
        let a = a as usize;
        (a / self.size, a % self.size)
    }

    /// Does the stone just placed at `a` complete a `win_len` line?
    fn wins_at(&self, a: Action) -> bool {
        let (r, c) = self.action_to_rc(a);
        let me = self.cells[a as usize];
        debug_assert_ne!(me, EMPTY);
        let n = self.size as isize;
        // Four line directions; count contiguous stones both ways.
        const DIRS: [(isize, isize); 4] = [(0, 1), (1, 0), (1, 1), (1, -1)];
        for (dr, dc) in DIRS {
            let mut run = 1usize;
            for sign in [1isize, -1] {
                let (mut rr, mut cc) = (r as isize + sign * dr, c as isize + sign * dc);
                while rr >= 0
                    && rr < n
                    && cc >= 0
                    && cc < n
                    && self.cells[(rr * n + cc) as usize] == me
                {
                    run += 1;
                    rr += sign * dr;
                    cc += sign * dc;
                }
            }
            if run >= self.win_len {
                return true;
            }
        }
        false
    }
}

impl Game for Gomoku {
    fn action_space(&self) -> usize {
        self.size * self.size
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, self.size, self.size)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        self.status
    }

    fn is_legal(&self, a: Action) -> bool {
        self.status == Status::Ongoing
            && (a as usize) < self.cells.len()
            && self.cells[a as usize] == EMPTY
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.status != Status::Ongoing {
            return;
        }
        out.extend(
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == EMPTY)
                .map(|(i, _)| i as Action),
        );
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal move {a} in\n{self:?}");
        let mover = self.to_move;
        self.cells[a as usize] = mover.index() as u8 + 1;
        self.hash ^= self.zobrist.key(mover.index(), a as usize);
        self.hash ^= self.zobrist.side_key;
        self.moves += 1;
        self.last_move = Some(a);
        self.to_move = mover.other();
        if self.wins_at(a) {
            self.status = Status::Won(mover);
        } else if self.moves == self.cells.len() {
            self.status = Status::Draw;
        }
    }

    fn encode(&self, out: &mut [f32]) {
        let plane = self.size * self.size;
        assert_eq!(out.len(), 4 * plane, "encode buffer size mismatch");
        out.fill(0.0);
        let me = self.to_move.index() as u8 + 1;
        let opp = self.to_move.other().index() as u8 + 1;
        for (i, &c) in self.cells.iter().enumerate() {
            if c == me {
                out[i] = 1.0;
            } else if c == opp {
                out[plane + i] = 1.0;
            }
        }
        if let Some(a) = self.last_move {
            out[2 * plane + a as usize] = 1.0;
        }
        if self.to_move == Player::Black {
            out[3 * plane..4 * plane].fill(1.0);
        }
    }

    fn hash(&self) -> u64 {
        self.hash
    }

    fn move_count(&self) -> usize {
        self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn play(g: &mut Gomoku, rc: &[(usize, usize)]) {
        for &(r, c) in rc {
            let a = g.rc_to_action(r, c);
            g.apply(a);
        }
    }

    #[test]
    fn standard_dimensions() {
        let g = Gomoku::standard();
        assert_eq!(g.size(), 15);
        assert_eq!(g.win_len(), 5);
        assert_eq!(g.action_space(), 225);
        assert_eq!(g.encoded_shape(), (4, 15, 15));
        assert_eq!(g.encoded_len(), 4 * 225);
    }

    #[test]
    fn horizontal_win() {
        let mut g = Gomoku::new(9, 5);
        // Black plays row 0 cols 0..5, White replies on row 8.
        play(
            &mut g,
            &[
                (0, 0),
                (8, 0),
                (0, 1),
                (8, 1),
                (0, 2),
                (8, 2),
                (0, 3),
                (8, 3),
                (0, 4),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn vertical_win() {
        let mut g = Gomoku::new(9, 5);
        play(
            &mut g,
            &[
                (0, 0),
                (0, 8),
                (1, 0),
                (1, 8),
                (2, 0),
                (2, 8),
                (3, 0),
                (3, 8),
                (4, 0),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn diagonal_win() {
        let mut g = Gomoku::new(9, 5);
        play(
            &mut g,
            &[
                (0, 0),
                (0, 8),
                (1, 1),
                (1, 8),
                (2, 2),
                (2, 8),
                (3, 3),
                (3, 8),
                (4, 4),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn antidiagonal_win() {
        let mut g = Gomoku::new(9, 5);
        play(
            &mut g,
            &[
                (0, 8),
                (8, 8),
                (1, 7),
                (7, 8),
                (2, 6),
                (6, 8),
                (3, 5),
                (5, 8),
                (4, 4),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn white_can_win_too() {
        let mut g = Gomoku::new(9, 4);
        play(
            &mut g,
            &[
                (8, 0),
                (0, 0),
                (8, 1),
                (0, 1),
                (8, 3),
                (0, 2),
                (7, 7),
                (0, 3),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::White));
    }

    #[test]
    fn win_in_middle_of_line() {
        // Completing a line by filling the middle gap must be detected.
        let mut g = Gomoku::new(9, 5);
        play(
            &mut g,
            &[
                (0, 0),
                (8, 0),
                (0, 1),
                (8, 1),
                (0, 3),
                (8, 2),
                (0, 4),
                (8, 4),
                (0, 2),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn draw_on_full_board() {
        // 2x2 board with win_len 2 can't draw; use a 3x3 win_len 3 sequence
        // known to fill the board without a line.
        let mut g = Gomoku::new(3, 3);
        // X O X / X X O / O X O — no three in a row for either.
        let seq = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 1),
            (2, 0),
            (1, 0),
            (2, 2),
            (2, 1),
        ];
        play(&mut g, &seq);
        assert_eq!(g.status(), Status::Draw);
        assert!(g.legal_actions().is_empty());
    }

    #[test]
    fn no_moves_after_terminal() {
        let mut g = Gomoku::new(6, 2);
        play(&mut g, &[(0, 0), (5, 5), (0, 1)]);
        assert_eq!(g.status(), Status::Won(Player::Black));
        assert!(g.legal_actions().is_empty());
        assert!(!g.is_legal(g.rc_to_action(3, 3)));
    }

    #[test]
    fn legal_actions_shrink_by_one_per_move() {
        let mut g = Gomoku::new(6, 5);
        let mut expect = 36;
        for a in [0u16, 7, 14, 21, 28] {
            assert_eq!(g.legal_actions().len(), expect);
            g.apply(a);
            expect -= 1;
        }
        assert_eq!(g.legal_actions().len(), expect);
    }

    #[test]
    fn alternating_to_move() {
        let mut g = Gomoku::new(6, 5);
        assert_eq!(g.to_move(), Player::Black);
        g.apply(0);
        assert_eq!(g.to_move(), Player::White);
        g.apply(1);
        assert_eq!(g.to_move(), Player::Black);
    }

    #[test]
    fn hash_changes_and_is_positional() {
        let mut a = Gomoku::new(6, 5);
        let mut b = Gomoku::new(6, 5);
        // Different move orders reaching the same position share a hash
        // apart from side-to-move parity (same parity here).
        a.apply(0);
        a.apply(10);
        a.apply(5);
        b.apply(5);
        b.apply(10);
        b.apply(0);
        assert_eq!(a.hash(), b.hash());
        let mut c = Gomoku::new(6, 5);
        c.apply(0);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn encode_planes_are_consistent() {
        let mut g = Gomoku::new(6, 5);
        g.apply(0); // black
        g.apply(7); // white
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        let plane = 36;
        // Black to move: plane 0 = black stones, plane 1 = white stones.
        assert_eq!(buf[0], 1.0, "black stone at 0 on own plane");
        assert_eq!(buf[plane + 7], 1.0, "white stone on opponent plane");
        assert_eq!(buf[2 * plane + 7], 1.0, "last move plane");
        assert!(
            buf[3 * plane..].iter().all(|&x| x == 1.0),
            "black-to-move plane"
        );
        // Exactly one stone per occupancy plane.
        assert_eq!(buf[..plane].iter().sum::<f32>(), 1.0);
        assert_eq!(buf[plane..2 * plane].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn encode_perspective_flips_with_side() {
        let mut g = Gomoku::new(6, 5);
        g.apply(0); // black stone; now white to move
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        let plane = 36;
        // White to move: plane 0 is white stones (none), plane 1 black's.
        assert_eq!(buf[..plane].iter().sum::<f32>(), 0.0);
        assert_eq!(buf[plane], 1.0);
        assert!(buf[3 * plane..].iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn bad_board_size_rejected() {
        let _ = Gomoku::new(1, 1);
    }

    #[test]
    fn move_count_tracks() {
        let mut g = Gomoku::new(6, 5);
        assert_eq!(g.move_count(), 0);
        g.apply(0);
        g.apply(1);
        assert_eq!(g.move_count(), 2);
    }
}
