//! Board-game environments used as DNN-MCTS benchmarks.
//!
//! This crate is the *environment substrate* of the adaptive-parallel DNN-MCTS
//! reproduction. The paper evaluates on Gomoku (15×15, five in a row); we also
//! provide Connect-Four and TicTacToe, which have much smaller state spaces and
//! are convenient for fast unit/integration testing of the search machinery.
//!
//! All games implement the [`Game`] trait: a fixed, dense action space
//! (so a policy head can emit one logit per action), incremental move
//! application, terminal detection, and a plane-encoded tensor view of the
//! state for neural-network input.
//!
//! # Example
//!
//! ```
//! use games::{Game, Player, Status, gomoku::Gomoku};
//!
//! let mut g = Gomoku::standard(); // 15×15, five in a row
//! assert_eq!(g.action_space(), 225);
//! assert_eq!(g.to_move(), Player::Black);
//! let a = g.legal_actions()[0];
//! g.apply(a);
//! assert_eq!(g.status(), Status::Ongoing);
//! ```

pub mod connect4;
pub mod gomoku;
pub mod hex;
pub mod othello;
pub mod symmetry;
pub mod synthetic;
pub mod tictactoe;
pub mod traits;
pub mod zobrist;

pub use traits::{Action, Game, Player, Status};
