//! TicTacToe: the smallest benchmark, used to validate search correctness.
//!
//! Because the full game tree is tiny (~5500 states), exact properties are
//! checkable: perfect play draws, MCTS with enough playouts finds forced wins,
//! etc. The integration tests of the `mcts` crate rely on this.

use crate::traits::{Action, Game, Player, Status};

/// 3×3 TicTacToe, bitboard-backed (9 bits per player).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicTacToe {
    boards: [u16; 2], // bit i set ⇒ player owns cell i
    to_move: Player,
    last_move: Option<Action>,
    moves: u8,
}

/// All eight winning lines as bitmasks.
const LINES: [u16; 8] = [
    0b000_000_111,
    0b000_111_000,
    0b111_000_000,
    0b001_001_001,
    0b010_010_010,
    0b100_100_100,
    0b100_010_001,
    0b001_010_100,
];

const FULL: u16 = 0b111_111_111;

impl TicTacToe {
    /// Empty board, Black (X) to move.
    pub fn new() -> Self {
        TicTacToe {
            boards: [0, 0],
            to_move: Player::Black,
            last_move: None,
            moves: 0,
        }
    }

    #[inline]
    fn occupied(&self) -> u16 {
        self.boards[0] | self.boards[1]
    }

    #[inline]
    #[allow(clippy::manual_contains)] // predicate masks b with each line
    fn has_line(b: u16) -> bool {
        LINES.iter().any(|&l| b & l == l)
    }
}

impl Default for TicTacToe {
    fn default() -> Self {
        Self::new()
    }
}

impl Game for TicTacToe {
    fn action_space(&self) -> usize {
        9
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, 3, 3)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        if Self::has_line(self.boards[0]) {
            Status::Won(Player::Black)
        } else if Self::has_line(self.boards[1]) {
            Status::Won(Player::White)
        } else if self.occupied() == FULL {
            Status::Draw
        } else {
            Status::Ongoing
        }
    }

    fn is_legal(&self, a: Action) -> bool {
        a < 9 && self.occupied() & (1 << a) == 0 && self.status() == Status::Ongoing
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.status() != Status::Ongoing {
            return;
        }
        let occ = self.occupied();
        out.extend((0u16..9).filter(|&a| occ & (1 << a) == 0));
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal move {a}");
        self.boards[self.to_move.index()] |= 1 << a;
        self.last_move = Some(a);
        self.moves += 1;
        self.to_move = self.to_move.other();
    }

    fn encode(&self, out: &mut [f32]) {
        assert_eq!(out.len(), 36);
        out.fill(0.0);
        let me = self.to_move.index();
        let opp = 1 - me;
        for i in 0..9 {
            if self.boards[me] & (1 << i) != 0 {
                out[i] = 1.0;
            }
            if self.boards[opp] & (1 << i) != 0 {
                out[9 + i] = 1.0;
            }
        }
        if let Some(a) = self.last_move {
            out[18 + a as usize] = 1.0;
        }
        if self.to_move == Player::Black {
            out[27..36].fill(1.0);
        }
    }

    fn hash(&self) -> u64 {
        // 18 bits of board + 1 bit side: already a perfect hash.
        (self.boards[0] as u64)
            | ((self.boards[1] as u64) << 9)
            | ((self.to_move.index() as u64) << 18)
    }

    fn move_count(&self) -> usize {
        self.moves as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_board_has_nine_moves() {
        let g = TicTacToe::new();
        assert_eq!(g.legal_actions().len(), 9);
        assert_eq!(g.status(), Status::Ongoing);
    }

    #[test]
    fn row_win_detected() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn column_win_detected() {
        let mut g = TicTacToe::new();
        for a in [0u16, 1, 3, 2, 6] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn diagonal_win_for_white() {
        let mut g = TicTacToe::new();
        for a in [1u16, 0, 2, 4, 3, 8] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Won(Player::White));
    }

    #[test]
    fn known_draw_game() {
        let mut g = TicTacToe::new();
        // X O X / X X O / O X O
        for a in [0u16, 1, 2, 5, 4, 8, 3, 6, 7] {
            g.apply(a);
        }
        assert_eq!(g.status(), Status::Draw);
    }

    #[test]
    fn terminal_board_has_no_moves() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        assert!(g.legal_actions().is_empty());
    }

    #[test]
    fn hash_is_injective_over_random_play() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // The hash is positional: it identifies (boards, side-to-move) but
        // deliberately ignores move-order metadata like `last_move`.
        let mut seen: std::collections::HashMap<u64, ([u16; 2], Player)> = Default::default();
        for _ in 0..500 {
            let mut g = TicTacToe::new();
            while g.status() == Status::Ongoing {
                let acts = g.legal_actions();
                let &a = acts.choose(&mut rng).unwrap();
                g.apply(a);
                let key = (g.boards, g.to_move);
                if let Some(prev) = seen.insert(g.hash(), key) {
                    assert_eq!(prev, key, "hash collision");
                }
            }
        }
    }

    #[test]
    fn encode_shape_and_sum() {
        let mut g = TicTacToe::new();
        g.apply(4);
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        assert_eq!(buf.len(), 36);
        // One opponent stone (X at 4), no own stones, last-move at 4 set.
        assert_eq!(buf[..9].iter().sum::<f32>(), 0.0);
        assert_eq!(buf[9..18].iter().sum::<f32>(), 1.0);
        assert_eq!(buf[18 + 4], 1.0);
    }
}
