//! Core environment abstractions shared by every benchmark game.
//!
//! The MCTS crates are generic over [`Game`], so any two-player, zero-sum,
//! perfect-information game with a dense action space can be plugged into the
//! search and training pipeline.

use serde::{Deserialize, Serialize};

/// A move identifier. Actions are dense indices in `0..Game::action_space()`
/// so the policy head of the network can emit one probability per action.
pub type Action = u16;

/// The side to move. Games in this crate are two-player and zero-sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Player {
    /// First player (moves first from the initial position).
    Black,
    /// Second player.
    White,
}

impl Player {
    /// The opponent of `self`.
    #[inline]
    pub fn other(self) -> Player {
        match self {
            Player::Black => Player::White,
            Player::White => Player::Black,
        }
    }

    /// Index form (Black = 0, White = 1), used for plane encoding and tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Player::Black => 0,
            Player::White => 1,
        }
    }
}

/// Terminal status of a game state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Game still in progress.
    Ongoing,
    /// `Player` has won.
    Won(Player),
    /// No legal moves remain and nobody won.
    Draw,
}

impl Status {
    /// Whether the game has ended.
    #[inline]
    pub fn is_terminal(self) -> bool {
        !matches!(self, Status::Ongoing)
    }

    /// Reward from the perspective of `p`: +1 win, -1 loss, 0 draw/ongoing.
    #[inline]
    pub fn reward_for(self, p: Player) -> f32 {
        match self {
            Status::Won(w) if w == p => 1.0,
            Status::Won(_) => -1.0,
            _ => 0.0,
        }
    }
}

/// A two-player, zero-sum, perfect-information game environment.
///
/// Implementations must be cheap to `Clone`: tree-parallel MCTS clones the
/// state once per simulated playout (the paper's `game ← copy(environment)`,
/// Algorithm 2 line 2).
pub trait Game: Clone + Send + Sync + 'static {
    /// Total number of action indices. Legal actions are a subset.
    fn action_space(&self) -> usize;

    /// Shape of the tensor produced by [`Game::encode`]: `(channels, h, w)`.
    fn encoded_shape(&self) -> (usize, usize, usize);

    /// The player to move in this state.
    fn to_move(&self) -> Player;

    /// Terminal status of this state.
    fn status(&self) -> Status;

    /// Whether `a` may be played in this state.
    fn is_legal(&self, a: Action) -> bool;

    /// Collect the legal actions into `out` (cleared first). Using an
    /// out-parameter lets hot search loops reuse one buffer.
    fn legal_actions_into(&self, out: &mut Vec<Action>);

    /// Convenience wrapper around [`Game::legal_actions_into`].
    fn legal_actions(&self) -> Vec<Action> {
        let mut v = Vec::new();
        self.legal_actions_into(&mut v);
        v
    }

    /// Play `a` for the current player. Panics (debug) on illegal actions.
    fn apply(&mut self, a: Action);

    /// Write the NN input planes into `out`, which must have exactly
    /// `channels * h * w` elements (row-major, plane-contiguous).
    ///
    /// The canonical encoding (used by all games here) is 4 planes:
    /// 0. stones of the player to move,
    /// 1. stones of the opponent,
    /// 2. one-hot of the last move (all zeros if none),
    /// 3. constant plane: 1.0 if Black to move else 0.0.
    fn encode(&self, out: &mut [f32]);

    /// Number of `f32`s produced by [`Game::encode`].
    fn encoded_len(&self) -> usize {
        let (c, h, w) = self.encoded_shape();
        c * h * w
    }

    /// 64-bit incremental hash of the position (Zobrist), usable for
    /// transposition detection and as a deterministic state fingerprint.
    fn hash(&self) -> u64;

    /// Number of moves played from the initial position.
    fn move_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn player_other_roundtrip() {
        assert_eq!(Player::Black.other(), Player::White);
        assert_eq!(Player::White.other(), Player::Black);
        assert_eq!(Player::Black.other().other(), Player::Black);
    }

    #[test]
    fn player_index_distinct() {
        assert_ne!(Player::Black.index(), Player::White.index());
        assert!(Player::Black.index() < 2 && Player::White.index() < 2);
    }

    #[test]
    fn status_terminal_flags() {
        assert!(!Status::Ongoing.is_terminal());
        assert!(Status::Won(Player::Black).is_terminal());
        assert!(Status::Draw.is_terminal());
    }

    #[test]
    fn status_rewards_are_zero_sum() {
        for s in [
            Status::Won(Player::Black),
            Status::Won(Player::White),
            Status::Draw,
        ] {
            let rb = s.reward_for(Player::Black);
            let rw = s.reward_for(Player::White);
            assert_eq!(rb + rw, 0.0, "zero-sum violated for {s:?}");
        }
    }

    #[test]
    fn ongoing_reward_is_zero() {
        assert_eq!(Status::Ongoing.reward_for(Player::Black), 0.0);
        assert_eq!(Status::Ongoing.reward_for(Player::White), 0.0);
    }
}
