//! Othello (Reversi) — a second classical benchmark with two properties the
//! other games lack: moves *mutate* previously placed stones (flips), and a
//! player may have to **pass**. Both stress the search and encoding paths in
//! ways Gomoku cannot (the action space carries a dedicated pass action, and
//! Zobrist hashes must be updated for every flipped stone).
//!
//! Rules: a placement must bracket at least one contiguous run of opponent
//! stones against one of your own along any of the 8 directions; all
//! bracketed runs flip. If a player has no legal placement, their only legal
//! action is `pass`. The game ends when neither player can place (including
//! full board); the higher stone count wins.

use crate::traits::{Action, Game, Player, Status};
use crate::zobrist::ZobristTable;
use std::sync::Arc;

/// Cell contents: 0 = empty, 1 = black, 2 = white.
const EMPTY: u8 = 0;

const DIRS: [(isize, isize); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

/// Othello position. Cheap to clone (one `Vec<u8>` + `Arc` table).
#[derive(Clone)]
pub struct Othello {
    size: usize,
    cells: Vec<u8>,
    to_move: Player,
    last_move: Option<Action>,
    moves: usize,
    /// Whether the previous action was a pass (two in a row ends the game).
    prev_was_pass: bool,
    status: Status,
    hash: u64,
    zobrist: Arc<ZobristTable>,
}

impl std::fmt::Debug for Othello {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Othello {}x{}:", self.size, self.size)?;
        for r in 0..self.size {
            for c in 0..self.size {
                let ch = match self.cells[r * self.size + c] {
                    1 => 'X',
                    2 => 'O',
                    _ => '.',
                };
                write!(f, "{ch} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Othello {
    /// The standard 8×8 game.
    pub fn standard() -> Self {
        Self::new(8)
    }

    /// Custom even board size in `4..=16`.
    pub fn new(size: usize) -> Self {
        assert!(
            (4..=16).contains(&size) && size.is_multiple_of(2),
            "size must be even, 4..=16"
        );
        let zobrist = Arc::new(ZobristTable::new(size * size));
        let mut g = Othello {
            size,
            cells: vec![EMPTY; size * size],
            to_move: Player::Black,
            last_move: None,
            moves: 0,
            prev_was_pass: false,
            status: Status::Ongoing,
            hash: 0,
            zobrist,
        };
        // Standard central diamond: White on the main diagonal, Black off it.
        let m = size / 2;
        g.place_initial(m - 1, m - 1, Player::White);
        g.place_initial(m, m, Player::White);
        g.place_initial(m - 1, m, Player::Black);
        g.place_initial(m, m - 1, Player::Black);
        g
    }

    fn place_initial(&mut self, r: usize, c: usize, p: Player) {
        let cell = r * self.size + c;
        self.cells[cell] = p.index() as u8 + 1;
        self.hash ^= self.zobrist.key(p.index(), cell);
    }

    /// Board side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The dedicated pass action index (`size²`).
    #[inline]
    pub fn pass_action(&self) -> Action {
        (self.size * self.size) as Action
    }

    /// Stone at `(row, col)`, if any.
    pub fn stone_at(&self, row: usize, col: usize) -> Option<Player> {
        match self.cells[row * self.size + col] {
            1 => Some(Player::Black),
            2 => Some(Player::White),
            _ => None,
        }
    }

    /// The most recently played action (possibly the pass action).
    pub fn last_move(&self) -> Option<Action> {
        self.last_move
    }

    /// `(black, white)` stone counts.
    pub fn counts(&self) -> (usize, usize) {
        let black = self.cells.iter().filter(|&&c| c == 1).count();
        let white = self.cells.iter().filter(|&&c| c == 2).count();
        (black, white)
    }

    /// Convert `(row, col)` to an action index.
    #[inline]
    pub fn rc_to_action(&self, row: usize, col: usize) -> Action {
        (row * self.size + col) as Action
    }

    /// Stones flipped by `p` placing at `(r, c)`, or empty if illegal.
    /// O(8·size) scan; cells are returned as flat indices.
    fn flips_for(&self, r: usize, c: usize, p: Player) -> Vec<usize> {
        let mut flips = Vec::new();
        if self.cells[r * self.size + c] != EMPTY {
            return flips;
        }
        let me = p.index() as u8 + 1;
        let opp = p.other().index() as u8 + 1;
        let n = self.size as isize;
        for (dr, dc) in DIRS {
            let (mut rr, mut cc) = (r as isize + dr, c as isize + dc);
            let run_start = flips.len();
            while rr >= 0 && rr < n && cc >= 0 && cc < n {
                let cell = (rr * n + cc) as usize;
                if self.cells[cell] == opp {
                    flips.push(cell);
                } else if self.cells[cell] == me {
                    // Bracketed run; keep the collected flips.
                    break;
                } else {
                    // Empty: run is unbracketed, discard it.
                    flips.truncate(run_start);
                    break;
                }
                rr += dr;
                cc += dc;
            }
            // Unbracketed run (off the board, or stopped on a non-own
            // cell): discard the stones collected in this direction.
            let bracketed =
                rr >= 0 && rr < n && cc >= 0 && cc < n && self.cells[(rr * n + cc) as usize] == me;
            if !bracketed {
                flips.truncate(run_start);
            }
        }
        flips
    }

    /// Whether `p` has at least one legal *placement* (pass excluded).
    fn has_placement(&self, p: Player) -> bool {
        for r in 0..self.size {
            for c in 0..self.size {
                if self.cells[r * self.size + c] == EMPTY && !self.flips_for(r, c, p).is_empty() {
                    return true;
                }
            }
        }
        false
    }

    /// Recompute terminal status after a move: the game ends when neither
    /// player can place; the side with more stones wins.
    fn settle_status(&mut self) {
        if self.has_placement(self.to_move) || self.has_placement(self.to_move.other()) {
            return;
        }
        let (black, white) = self.counts();
        self.status = match black.cmp(&white) {
            std::cmp::Ordering::Greater => Status::Won(Player::Black),
            std::cmp::Ordering::Less => Status::Won(Player::White),
            std::cmp::Ordering::Equal => Status::Draw,
        };
    }
}

impl Game for Othello {
    fn action_space(&self) -> usize {
        self.size * self.size + 1 // +1: the pass action
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, self.size, self.size)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        self.status
    }

    fn is_legal(&self, a: Action) -> bool {
        if self.status.is_terminal() {
            return false;
        }
        if a == self.pass_action() {
            return !self.has_placement(self.to_move);
        }
        let a = a as usize;
        if a >= self.size * self.size {
            return false;
        }
        !self
            .flips_for(a / self.size, a % self.size, self.to_move)
            .is_empty()
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.status.is_terminal() {
            return;
        }
        for r in 0..self.size {
            for c in 0..self.size {
                if self.cells[r * self.size + c] == EMPTY
                    && !self.flips_for(r, c, self.to_move).is_empty()
                {
                    out.push(self.rc_to_action(r, c));
                }
            }
        }
        if out.is_empty() {
            out.push(self.pass_action());
        }
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal action {a}");
        if a == self.pass_action() {
            if self.prev_was_pass {
                // Second consecutive pass: game over by agreement.
                let (black, white) = self.counts();
                self.status = match black.cmp(&white) {
                    std::cmp::Ordering::Greater => Status::Won(Player::Black),
                    std::cmp::Ordering::Less => Status::Won(Player::White),
                    std::cmp::Ordering::Equal => Status::Draw,
                };
            }
            self.prev_was_pass = true;
        } else {
            let cell = a as usize;
            let me = self.to_move;
            let flips = self.flips_for(cell / self.size, cell % self.size, me);
            debug_assert!(!flips.is_empty(), "placement must flip");
            self.cells[cell] = me.index() as u8 + 1;
            self.hash ^= self.zobrist.key(me.index(), cell);
            for f in flips {
                self.cells[f] = me.index() as u8 + 1;
                self.hash ^= self.zobrist.key(me.other().index(), f); // remove opp
                self.hash ^= self.zobrist.key(me.index(), f); // add mine
            }
            self.prev_was_pass = false;
        }
        self.last_move = Some(a);
        self.moves += 1;
        self.to_move = self.to_move.other();
        self.hash ^= self.zobrist.side_key;
        if self.status == Status::Ongoing {
            self.settle_status();
        }
    }

    fn encode(&self, out: &mut [f32]) {
        let plane = self.size * self.size;
        assert_eq!(out.len(), 4 * plane, "encode buffer size");
        out.fill(0.0);
        let me = self.to_move.index() as u8 + 1;
        for (i, &cell) in self.cells.iter().enumerate() {
            if cell == me {
                out[i] = 1.0;
            } else if cell != EMPTY {
                out[plane + i] = 1.0;
            }
        }
        if let Some(last) = self.last_move {
            if (last as usize) < plane {
                out[2 * plane + last as usize] = 1.0;
            }
        }
        if self.to_move == Player::Black {
            out[3 * plane..4 * plane].fill(1.0);
        }
    }

    fn hash(&self) -> u64 {
        if self.to_move == Player::White {
            self.hash ^ self.zobrist.side_key
        } else {
            self.hash
        }
    }

    fn move_count(&self) -> usize {
        self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn play(g: &mut Othello, moves: &[(usize, usize)]) {
        for &(r, c) in moves {
            let a = g.rc_to_action(r, c);
            assert!(g.is_legal(a), "illegal {r},{c}\n{g:?}");
            g.apply(a);
        }
    }

    #[test]
    fn initial_position_is_standard() {
        let g = Othello::standard();
        assert_eq!(g.counts(), (2, 2));
        assert_eq!(g.stone_at(3, 3), Some(Player::White));
        assert_eq!(g.stone_at(4, 4), Some(Player::White));
        assert_eq!(g.stone_at(3, 4), Some(Player::Black));
        assert_eq!(g.stone_at(4, 3), Some(Player::Black));
        assert_eq!(g.to_move(), Player::Black);
        assert_eq!(g.status(), Status::Ongoing);
    }

    #[test]
    fn black_has_exactly_four_opening_moves() {
        let g = Othello::standard();
        let mut legal = g.legal_actions();
        legal.sort_unstable();
        let expected: Vec<Action> = [(2usize, 3usize), (3, 2), (4, 5), (5, 4)]
            .iter()
            .map(|&(r, c)| g.rc_to_action(r, c))
            .collect();
        assert_eq!(legal, expected);
    }

    #[test]
    fn placement_flips_bracketed_run() {
        let mut g = Othello::standard();
        play(&mut g, &[(2, 3)]); // Black plays; flips (3,3).
        assert_eq!(g.stone_at(3, 3), Some(Player::Black));
        assert_eq!(g.counts(), (4, 1));
        assert_eq!(g.to_move(), Player::White);
    }

    #[test]
    fn action_space_includes_pass() {
        let g = Othello::new(4);
        assert_eq!(g.action_space(), 17);
        assert_eq!(g.pass_action(), 16);
    }

    #[test]
    fn pass_is_illegal_when_placements_exist() {
        let g = Othello::standard();
        assert!(!g.is_legal(g.pass_action()));
    }

    #[test]
    fn multi_direction_flips() {
        // Build a position where one placement flips in two directions.
        let mut g = Othello::standard();
        play(&mut g, &[(2, 3), (2, 2), (3, 2)]);
        // Black at (3,2) flipped (3,3). White to move.
        assert_eq!(g.to_move(), Player::White);
        let (b, w) = g.counts();
        assert_eq!(b + w, 7);
    }

    #[test]
    fn full_4x4_game_reaches_terminal() {
        let mut g = Othello::new(4);
        let mut legal = Vec::new();
        let mut guard = 0;
        while g.status() == Status::Ongoing {
            g.legal_actions_into(&mut legal);
            assert!(!legal.is_empty());
            g.apply(legal[0]);
            guard += 1;
            assert!(guard < 64, "game should terminate");
        }
        let (b, w) = g.counts();
        match g.status() {
            Status::Won(Player::Black) => assert!(b > w),
            Status::Won(Player::White) => assert!(w > b),
            Status::Draw => assert_eq!(b, w),
            Status::Ongoing => unreachable!(),
        }
    }

    #[test]
    fn hash_changes_with_flips_and_is_reproducible() {
        let mut a = Othello::standard();
        let mut b = Othello::standard();
        assert_eq!(a.hash(), b.hash());
        let h0 = a.hash();
        a.apply(a.rc_to_action(2, 3));
        b.apply(b.rc_to_action(2, 3));
        assert_eq!(a.hash(), b.hash());
        assert_ne!(a.hash(), h0);
    }

    #[test]
    fn different_move_orders_same_position_same_hash() {
        // Two transposing openings that reach distinct positions must hash
        // differently; identical positions must hash identically (checked
        // via replay determinism above). Here: flips make most "transposed"
        // sequences yield different boards, so just verify hash ≠ for
        // different boards.
        let mut a = Othello::standard();
        a.apply(a.rc_to_action(2, 3));
        let mut b = Othello::standard();
        b.apply(b.rc_to_action(3, 2));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn encode_planes_follow_convention() {
        let g = Othello::standard();
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        let plane = 64;
        // Black to move: plane 0 holds black stones (2), plane 1 white (2).
        assert_eq!(buf[..plane].iter().sum::<f32>(), 2.0);
        assert_eq!(buf[plane..2 * plane].iter().sum::<f32>(), 2.0);
        // No last move yet.
        assert_eq!(buf[2 * plane..3 * plane].iter().sum::<f32>(), 0.0);
        // Black-to-move plane all ones.
        assert!(buf[3 * plane..].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn encode_swaps_perspective_after_move() {
        let mut g = Othello::standard();
        g.apply(g.rc_to_action(2, 3));
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        let plane = 64;
        // White to move: plane 0 = white stones (1), plane 1 = black (4).
        assert_eq!(buf[..plane].iter().sum::<f32>(), 1.0);
        assert_eq!(buf[plane..2 * plane].iter().sum::<f32>(), 4.0);
        // Last-move plane marks (2,3).
        assert_eq!(buf[2 * plane + 2 * 8 + 3], 1.0);
        // White to move → plane 3 all zeros.
        assert!(buf[3 * plane..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_independence() {
        let g = Othello::standard();
        let mut h = g.clone();
        h.apply(h.rc_to_action(2, 3));
        assert_eq!(g.counts(), (2, 2));
        assert_ne!(g.hash(), h.hash());
    }

    #[test]
    #[should_panic(expected = "size must be even")]
    fn odd_board_rejected() {
        let _ = Othello::new(5);
    }

    #[test]
    fn move_count_tracks_applies() {
        let mut g = Othello::standard();
        assert_eq!(g.move_count(), 0);
        g.apply(g.rc_to_action(2, 3));
        assert_eq!(g.move_count(), 1);
    }
}
