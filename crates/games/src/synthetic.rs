//! A synthetic game with exactly controllable tree geometry.
//!
//! The paper's design-time profiling runs on "a synthetic tree …
//! emulating the same fanout and depth limit defined by the DNN-MCTS
//! algorithm" (§4.2). `SyntheticGame` is the playable version of that
//! idea: every state has exactly `fanout` legal actions, games last
//! exactly `max_depth` plies, and terminal outcomes are a deterministic
//! pseudo-random function of the action path. It gives tests and
//! profilers a game whose branching factor and depth are free parameters,
//! independent of board-game rules.

use crate::traits::{Action, Game, Player, Status};

/// Deterministic fanout/depth-parameterized game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticGame {
    fanout: usize,
    max_depth: usize,
    /// Rolling hash of the action path (also the position hash).
    path: u64,
    depth: usize,
    to_move: Player,
}

/// splitmix64 finalizer: decorrelates path hashes.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SyntheticGame {
    /// A game tree with `fanout` moves per state and `max_depth` plies.
    /// `seed` selects which paths win/lose/draw.
    pub fn new(fanout: usize, max_depth: usize, seed: u64) -> Self {
        assert!(fanout >= 1 && fanout <= u16::MAX as usize, "fanout range");
        assert!(max_depth >= 1, "depth must be positive");
        SyntheticGame {
            fanout,
            max_depth,
            path: mix(seed),
            depth: 0,
            to_move: Player::Black,
        }
    }

    /// Branching factor.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Game length in plies.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current depth (== move count).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Game for SyntheticGame {
    fn action_space(&self) -> usize {
        self.fanout
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, 1, self.fanout)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        if self.depth < self.max_depth {
            return Status::Ongoing;
        }
        // Deterministic outcome from the path hash: 40% Black, 40% White,
        // 20% draw.
        match self.path % 10 {
            0..=3 => Status::Won(Player::Black),
            4..=7 => Status::Won(Player::White),
            _ => Status::Draw,
        }
    }

    fn is_legal(&self, a: Action) -> bool {
        (a as usize) < self.fanout && self.depth < self.max_depth
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.depth < self.max_depth {
            out.extend(0..self.fanout as Action);
        }
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal synthetic move {a}");
        self.path = mix(self.path ^ (a as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        self.depth += 1;
        self.to_move = self.to_move.other();
    }

    fn encode(&self, out: &mut [f32]) {
        assert_eq!(out.len(), 4 * self.fanout);
        // Deterministic pseudo-random planes from the path hash so states
        // have distinct, reproducible encodings.
        let mut h = self.path;
        for v in out.iter_mut() {
            h = mix(h);
            *v = (h % 1000) as f32 / 1000.0;
        }
    }

    fn hash(&self) -> u64 {
        self.path
    }

    fn move_count(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_exact() {
        let mut g = SyntheticGame::new(7, 3, 1);
        assert_eq!(g.action_space(), 7);
        for d in 0..3 {
            assert_eq!(g.status(), Status::Ongoing, "depth {d}");
            assert_eq!(g.legal_actions().len(), 7);
            g.apply((d % 7) as Action);
        }
        assert!(g.status().is_terminal());
        assert!(g.legal_actions().is_empty());
    }

    #[test]
    fn outcomes_are_deterministic_per_path() {
        let play = |actions: &[Action]| {
            let mut g = SyntheticGame::new(5, 4, 9);
            for &a in actions {
                g.apply(a);
            }
            g.status()
        };
        assert_eq!(play(&[0, 1, 2, 3]), play(&[0, 1, 2, 3]));
    }

    #[test]
    fn different_paths_reach_different_states() {
        let mut a = SyntheticGame::new(5, 4, 9);
        let mut b = SyntheticGame::new(5, 4, 9);
        a.apply(0);
        b.apply(1);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn outcome_mix_is_roughly_balanced() {
        let mut black = 0;
        let mut white = 0;
        let mut draw = 0;
        for seed in 0..300u64 {
            let mut g = SyntheticGame::new(3, 2, seed);
            g.apply((seed % 3) as Action);
            g.apply(((seed / 3) % 3) as Action);
            match g.status() {
                Status::Won(Player::Black) => black += 1,
                Status::Won(Player::White) => white += 1,
                Status::Draw => draw += 1,
                Status::Ongoing => unreachable!(),
            }
        }
        assert!(
            black > 60 && white > 60 && draw > 20,
            "{black}/{white}/{draw}"
        );
    }

    #[test]
    fn encode_is_deterministic_and_state_dependent() {
        let mut g = SyntheticGame::new(4, 3, 2);
        let mut e1 = vec![0.0; g.encoded_len()];
        g.encode(&mut e1);
        let mut e1b = vec![0.0; g.encoded_len()];
        g.encode(&mut e1b);
        assert_eq!(e1, e1b);
        g.apply(2);
        let mut e2 = vec![0.0; g.encoded_len()];
        g.encode(&mut e2);
        assert_ne!(e1, e2);
    }

    #[test]
    fn seeds_select_different_games() {
        let outcome = |seed: u64| {
            let mut g = SyntheticGame::new(2, 3, seed);
            for a in [0u16, 1, 0] {
                g.apply(a);
            }
            g.status()
        };
        let distinct: std::collections::HashSet<_> =
            (0..50).map(|s| format!("{:?}", outcome(s))).collect();
        assert!(distinct.len() >= 2, "seeds should vary outcomes");
    }
}
