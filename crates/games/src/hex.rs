//! The game of Hex — the benchmark used by the lock-free tree-parallel
//! MCTS work the paper compares against (Mirsoleimani et al., §2.2).
//!
//! Black connects the top and bottom edges, White connects left and
//! right; no draws are possible on a filled board (Hex theorem). Win
//! detection uses a union-find over cells with four virtual edge nodes,
//! giving O(α) incremental updates per move.

use crate::traits::{Action, Game, Player, Status};
use crate::zobrist::ZobristTable;
use std::sync::Arc;

/// Hex position on an `n × n` rhombus.
#[derive(Clone)]
pub struct Hex {
    size: usize,
    /// 0 empty, 1 black, 2 white.
    cells: Vec<u8>,
    /// Union-find parent array: cells ++ [top, bottom, left, right].
    parent: Vec<u32>,
    to_move: Player,
    last_move: Option<Action>,
    moves: usize,
    status: Status,
    hash: u64,
    zobrist: Arc<ZobristTable>,
}

impl std::fmt::Debug for Hex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Hex {0}x{0}:", self.size)?;
        for r in 0..self.size {
            write!(f, "{}", " ".repeat(r))?;
            for c in 0..self.size {
                let ch = match self.cells[r * self.size + c] {
                    1 => 'X',
                    2 => 'O',
                    _ => '.',
                };
                write!(f, "{ch} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Hex {
    /// An empty `size × size` board (common competitive sizes: 11, 13).
    pub fn new(size: usize) -> Self {
        assert!((2..=19).contains(&size), "hex size out of range");
        let cells = size * size;
        Hex {
            size,
            cells: vec![0; cells],
            parent: (0..cells as u32 + 4).collect(),
            to_move: Player::Black,
            last_move: None,
            moves: 0,
            status: Status::Ongoing,
            hash: 0,
            zobrist: Arc::new(ZobristTable::new(cells)),
        }
    }

    /// Board side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Stone at `(row, col)`.
    pub fn stone_at(&self, row: usize, col: usize) -> Option<Player> {
        match self.cells[row * self.size + col] {
            1 => Some(Player::Black),
            2 => Some(Player::White),
            _ => None,
        }
    }

    #[inline]
    fn edge_node(&self, which: usize) -> u32 {
        (self.size * self.size + which) as u32
    }

    fn find(&mut self, mut x: u32) -> u32 {
        // Path halving.
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }

    /// The six hex neighbours of `(r, c)`.
    fn neighbours(&self, r: usize, c: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        const DIRS: [(isize, isize); 6] = [(-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0)];
        let n = self.size as isize;
        DIRS.iter().filter_map(move |&(dr, dc)| {
            let (rr, cc) = (r as isize + dr, c as isize + dc);
            (rr >= 0 && rr < n && cc >= 0 && cc < n).then_some((rr as usize, cc as usize))
        })
    }
}

impl Game for Hex {
    fn action_space(&self) -> usize {
        self.size * self.size
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        (4, self.size, self.size)
    }

    fn to_move(&self) -> Player {
        self.to_move
    }

    fn status(&self) -> Status {
        self.status
    }

    fn is_legal(&self, a: Action) -> bool {
        self.status == Status::Ongoing
            && (a as usize) < self.cells.len()
            && self.cells[a as usize] == 0
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        if self.status != Status::Ongoing {
            return;
        }
        out.extend(
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == 0)
                .map(|(i, _)| i as Action),
        );
    }

    fn apply(&mut self, a: Action) {
        debug_assert!(self.is_legal(a), "illegal hex move {a}");
        let mover = self.to_move;
        let (r, c) = ((a as usize) / self.size, (a as usize) % self.size);
        let mine = mover.index() as u8 + 1;
        self.cells[a as usize] = mine;
        self.hash ^= self.zobrist.key(mover.index(), a as usize);
        self.hash ^= self.zobrist.side_key;
        self.moves += 1;
        self.last_move = Some(a);
        self.to_move = mover.other();

        // Connect to same-colored neighbours.
        let neighbours: Vec<(usize, usize)> = self.neighbours(r, c).collect();
        for (rr, cc) in neighbours {
            if self.cells[rr * self.size + cc] == mine {
                self.union(a as u32, (rr * self.size + cc) as u32);
            }
        }
        // Connect to the mover's edges.
        match mover {
            Player::Black => {
                if r == 0 {
                    let e = self.edge_node(0);
                    self.union(a as u32, e);
                }
                if r == self.size - 1 {
                    let e = self.edge_node(1);
                    self.union(a as u32, e);
                }
                let (top, bottom) = (self.edge_node(0), self.edge_node(1));
                if self.find(top) == self.find(bottom) {
                    self.status = Status::Won(Player::Black);
                }
            }
            Player::White => {
                if c == 0 {
                    let e = self.edge_node(2);
                    self.union(a as u32, e);
                }
                if c == self.size - 1 {
                    let e = self.edge_node(3);
                    self.union(a as u32, e);
                }
                let (left, right) = (self.edge_node(2), self.edge_node(3));
                if self.find(left) == self.find(right) {
                    self.status = Status::Won(Player::White);
                }
            }
        }
    }

    fn encode(&self, out: &mut [f32]) {
        let plane = self.size * self.size;
        assert_eq!(out.len(), 4 * plane);
        out.fill(0.0);
        let me = self.to_move.index() as u8 + 1;
        let opp = self.to_move.other().index() as u8 + 1;
        for (i, &cell) in self.cells.iter().enumerate() {
            if cell == me {
                out[i] = 1.0;
            } else if cell == opp {
                out[plane + i] = 1.0;
            }
        }
        if let Some(a) = self.last_move {
            out[2 * plane + a as usize] = 1.0;
        }
        if self.to_move == Player::Black {
            out[3 * plane..].fill(1.0);
        }
    }

    fn hash(&self) -> u64 {
        self.hash
    }

    fn move_count(&self) -> usize {
        self.moves
    }
}

#[cfg(test)]
#[allow(clippy::clone_on_copy)] // Copy test games cloned for symmetry with non-Copy ones
mod tests {
    use super::*;

    fn play(g: &mut Hex, rc: &[(usize, usize)]) {
        for &(r, c) in rc {
            let a = (r * g.size() + c) as Action;
            g.apply(a);
        }
    }

    #[test]
    fn vertical_chain_wins_for_black() {
        let mut g = Hex::new(4);
        // Black builds column 0 top-to-bottom; White answers on column 3.
        play(
            &mut g,
            &[(0, 0), (0, 3), (1, 0), (1, 3), (2, 0), (2, 3), (3, 0)],
        );
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn horizontal_chain_wins_for_white() {
        let mut g = Hex::new(4);
        play(
            &mut g,
            &[
                (3, 0),
                (0, 0),
                (3, 1),
                (0, 1),
                (3, 3),
                (0, 2),
                (2, 3),
                (0, 3),
            ],
        );
        assert_eq!(g.status(), Status::Won(Player::White));
    }

    #[test]
    fn diagonal_neighbourhood_connects() {
        // Hex adjacency includes (r, c)→(r-1, c+1): a staircase connects.
        let mut g = Hex::new(3);
        play(&mut g, &[(2, 0), (0, 0), (1, 1), (0, 1), (0, 2)]);
        assert_eq!(g.status(), Status::Won(Player::Black));
    }

    #[test]
    fn no_draws_on_filled_boards() {
        // Random-fill many games: Hex cannot draw.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut g = Hex::new(5);
            while g.status() == Status::Ongoing {
                let acts = g.legal_actions();
                assert!(!acts.is_empty(), "board filled without a winner");
                g.apply(*acts.choose(&mut rng).unwrap());
            }
            assert!(matches!(g.status(), Status::Won(_)));
        }
    }

    #[test]
    fn no_moves_after_win() {
        let mut g = Hex::new(2);
        play(&mut g, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(g.status(), Status::Won(Player::Black));
        assert!(g.legal_actions().is_empty());
    }

    #[test]
    fn winner_requires_own_edges() {
        // A black chain touching left/right (White's edges) must not win.
        let mut g = Hex::new(3);
        play(&mut g, &[(1, 0), (0, 0), (1, 1), (0, 1)]);
        assert_eq!(g.status(), Status::Ongoing);
        g.apply(5); // (1,2): full middle row for Black — still not a win.
        assert_eq!(g.status(), Status::Ongoing);
    }

    #[test]
    fn encode_and_hash_behave() {
        let mut g = Hex::new(3);
        let h0 = g.hash();
        g.apply(4);
        assert_ne!(g.hash(), h0);
        let mut buf = vec![0.0; g.encoded_len()];
        g.encode(&mut buf);
        assert_eq!(buf.len(), 36);
        assert_eq!(buf[9 + 4], 1.0, "black stone on opponent plane");
    }

    /// Stone layout + side to move: what the Zobrist hash identifies
    /// (`last_move` is deliberately outside the key).
    fn canonical(g: &Hex) -> (Vec<Option<Player>>, Player) {
        let n = g.size();
        let mut cells = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                cells.push(g.stone_at(r, c));
            }
        }
        (cells, g.to_move())
    }

    #[test]
    fn hash_is_transposition_invariant() {
        // Black (0,0),(1,1) and White (3,3),(4,4), placed in two orders.
        let mut a = Hex::new(5);
        play(&mut a, &[(0, 0), (4, 4), (1, 1), (3, 3)]);
        let mut b = Hex::new(5);
        play(&mut b, &[(1, 1), (3, 3), (0, 0), (4, 4)]);
        assert_eq!(canonical(&a), canonical(&b), "test setup: same position");
        assert_eq!(a.hash(), b.hash(), "transposed orders must collide");
    }

    #[test]
    fn hash_flips_with_every_ply() {
        // Each apply XORs a stone key and the side key: every prefix of
        // a game hashes distinctly (mover alternates, stones accrete).
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = Hex::new(5);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(g.hash()));
        while g.status() == Status::Ongoing {
            let acts = g.legal_actions();
            g.apply(*acts.choose(&mut rng).unwrap());
            assert!(seen.insert(g.hash()), "prefix hashes must be distinct");
        }
    }

    #[test]
    fn hash_is_injective_over_random_playouts() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut seen: std::collections::HashMap<u64, (Vec<Option<Player>>, Player)> =
            Default::default();
        for _ in 0..200 {
            let mut g = Hex::new(4);
            while g.status() == Status::Ongoing {
                let acts = g.legal_actions();
                g.apply(*acts.choose(&mut rng).unwrap());
                let key = canonical(&g);
                if let Some(prev) = seen.insert(g.hash(), key.clone()) {
                    assert_eq!(prev, key, "hash collision between distinct positions");
                }
            }
        }
        assert!(seen.len() > 500, "playouts must cover many positions");
    }

    #[test]
    fn completing_a_chain_wins_immediately() {
        // Black to move with two cells of a top-bottom chain placed on a
        // 3x3 board; completing it at (1,0) wins outright.
        let mut g = Hex::new(3);
        play(&mut g, &[(0, 0), (0, 2), (2, 0), (1, 2)]);
        assert_eq!(g.status(), Status::Ongoing);
        // Direct check: playing (1,0) wins for Black.
        let mut win = g.clone();
        win.apply(3);
        assert_eq!(win.status(), Status::Won(Player::Black));
    }
}
