//! Shared helpers for the figure-regeneration binaries and benches.
//!
//! Every figure of the paper's evaluation (§5) has a dedicated binary in
//! `src/bin/`; see EXPERIMENTS.md for the index. Because this container
//! has one CPU core and no GPU, each binary prints two kinds of series:
//!
//! * **simulated** — the discrete-event timeline simulator from
//!   `perfmodel::sim` parameterized like the paper's 64-core + A6000
//!   platform (these reproduce the figure *shapes*), and
//! * **measured** (where cheap enough) — real runs of the actual parallel
//!   implementations at host-feasible scales, validating the code paths.

use games::gomoku::Gomoku;
use nn::{NetConfig, PolicyValueNet};
use perfmodel::profiler::ProfiledCosts;
use std::sync::Arc;

pub mod json;

/// Column width used by the table printers.
pub const COL: usize = 14;

/// Print a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>COL$}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat((COL + 1) * cols.len()));
}

/// Print one formatted row of numeric cells.
pub fn row(label: &str, values: &[f64]) {
    let mut cells = vec![format!("{label:>COL$}")];
    cells.extend(values.iter().map(|v| format!("{v:>COL$.2}")));
    println!("{}", cells.join(" "));
}

/// A small Gomoku board + matching tiny net, cheap enough for real
/// (measured) runs on this host.
pub fn small_gomoku_setup(seed: u64) -> (Gomoku, Arc<PolicyValueNet>) {
    let game = Gomoku::new(7, 4);
    let net = PolicyValueNet::new(NetConfig::tiny(4, 7, 7, 49), seed);
    (game, Arc::new(net))
}

/// The paper's full-size benchmark: 15×15 Gomoku and the 5-conv/3-FC net.
pub fn paper_gomoku_setup(seed: u64) -> (Gomoku, Arc<PolicyValueNet>) {
    let game = Gomoku::standard();
    let net = PolicyValueNet::new(NetConfig::gomoku15(), seed);
    (game, Arc::new(net))
}

/// Profiled costs calibrated to the paper's platform, used when a binary
/// needs paper-scale inputs without paying host profiling time. Values
/// follow the same magnitudes as `perfmodel::sim::SimParams::paper_like`.
pub fn paper_costs() -> ProfiledCosts {
    ProfiledCosts {
        t_select_ns: 6_000.0,
        t_backup_ns: 3_000.0,
        t_shared_access_ns: 400.0,
        t_dnn_cpu_ns: 1_200_000.0,
    }
}

/// Write a CSV string to `results/<name>` (creating the directory),
/// returning the path written.
pub fn write_results(name: &str, csv: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, csv)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::Game;

    #[test]
    fn small_setup_shapes_match() {
        let (g, net) = small_gomoku_setup(1);
        assert_eq!(g.action_space(), net.config.actions);
        assert_eq!(g.encoded_shape().1, net.config.h);
    }

    #[test]
    fn paper_setup_is_15x15_with_5conv_3fc() {
        let (g, net) = paper_gomoku_setup(1);
        assert_eq!(g.action_space(), 225);
        assert_eq!(net.conv_count(), 5);
        assert_eq!(net.fc_count(), 3);
    }

    #[test]
    fn results_writer_creates_files() {
        let p = write_results("unit_test.csv", "a,b\n1,2\n").unwrap();
        assert!(p.exists());
        std::fs::remove_file(p).unwrap();
    }
}
