//! Minimal JSON parsing for the `BENCH_*.json` schema checkers.
//!
//! The workspace builds offline without a JSON crate, so the schema
//! gates (`check_serve_schema`, `check_search_schema`) share this
//! ~150-line recursive-descent parser — strict enough for the bench
//! writers' output (objects, arrays, strings, numbers, bools) — plus
//! the small accessor helpers their checks are written in.

use std::collections::BTreeMap;

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.fail("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The bench writers never emit escapes beyond these.
                    let esc = self.bytes.get(self.pos + 1).copied();
                    let ch = match esc {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        _ => return Err(self.fail("unsupported escape")),
                    };
                    out.push(ch);
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (trailing content is an error).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing content"));
    }
    Ok(v)
}

/// The value at `path` as an object, or a pathed error.
pub fn obj<'a>(v: &'a Json, path: &str) -> Result<&'a BTreeMap<String, Json>, String> {
    match v {
        Json::Obj(m) => Ok(m),
        _ => Err(format!("{path}: expected object")),
    }
}

/// The field `key` of `m`, or a pathed "missing" error.
pub fn field<'a>(m: &'a BTreeMap<String, Json>, path: &str, key: &str) -> Result<&'a Json, String> {
    m.get(key).ok_or_else(|| format!("{path}.{key}: missing"))
}

/// The field `key` of `m` as a finite number, or a pathed error.
pub fn num(m: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<f64, String> {
    match field(m, path, key)? {
        Json::Num(n) if n.is_finite() => Ok(*n),
        _ => Err(format!("{path}.{key}: expected finite number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, {"b": "x", "c": true}], "d": null}"#).unwrap();
        let root = obj(&doc, "$").unwrap();
        assert!(matches!(field(root, "$", "a").unwrap(), Json::Arr(v) if v.len() == 3));
        assert_eq!(field(root, "$", "d").unwrap(), &Json::Null);
    }

    #[test]
    fn malformed_json_fails() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
    }

    #[test]
    fn num_rejects_non_numbers() {
        let doc = parse(r#"{"a": "1"}"#).unwrap();
        let root = obj(&doc, "$").unwrap();
        assert!(num(root, "$", "a").is_err());
        assert!(num(root, "$", "b").unwrap_err().contains("missing"));
    }
}
