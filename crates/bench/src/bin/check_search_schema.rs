//! Validate the `BENCH_search.json` schema so the search-throughput
//! trajectory stays machine-readable across PRs.
//!
//! Usage: `check_search_schema <path>` (default `BENCH_search.json`).
//! Exits non-zero with a message naming the first violation. JSON
//! parsing comes from the shared offline parser in [`bench::json`].
//!
//! Checked schema:
//! * `meta`: numeric `playouts`, `workers`; bool `smoke`;
//! * `schemes`: non-empty array, every row a string `scheme` plus
//!   numeric `uniform_playouts_per_s`, `nn_playouts_per_s` (> 0);
//! * `reuse_cycle`: numeric `moves`, `uniform_playouts_per_s`;
//! * `soak` (the bounded-memory LRU streaming session): numeric
//!   `budget_bytes`, `cycles`, `playouts_per_cycle`,
//!   `first_decile_playouts_per_s`, `last_decile_playouts_per_s`,
//!   `ratio`, `evicted`, with the ratio consistent with the two rates.
//!   On full (non-smoke) records the soak must be a real long run in
//!   the recycling regime: `cycles ≥ 10_000`, `evicted > 0`,
//!   `budget_bytes ≤ 16 MiB`, and the last decile within 10% of the
//!   first (`ratio ≥ 0.9` — the bounded-memory stability acceptance).
//!   Smoke records only prove the axis runs; their timings are never
//!   gated on.

use bench::json::{field, num, obj, parse, Json};
use std::process::ExitCode;

fn check(doc: &Json) -> Result<String, String> {
    let root = obj(doc, "$")?;

    let meta = obj(field(root, "$", "meta")?, "$.meta")?;
    for key in ["playouts", "workers"] {
        num(meta, "$.meta", key)?;
    }
    let smoke = match field(meta, "$.meta", "smoke")? {
        Json::Bool(b) => *b,
        _ => return Err("$.meta.smoke: expected bool".into()),
    };

    let schemes = match field(root, "$", "schemes")? {
        Json::Arr(a) if !a.is_empty() => a,
        Json::Arr(_) => return Err("$.schemes: must be non-empty".into()),
        _ => return Err("$.schemes: expected array".into()),
    };
    for (i, row) in schemes.iter().enumerate() {
        let path = format!("$.schemes[{i}]");
        let m = obj(row, &path)?;
        match field(m, &path, "scheme")? {
            Json::Str(_) => {}
            _ => return Err(format!("{path}.scheme: expected string")),
        }
        for key in ["uniform_playouts_per_s", "nn_playouts_per_s"] {
            let v = num(m, &path, key)?;
            if v <= 0.0 {
                return Err(format!("{path}.{key}: {v} must be positive"));
            }
        }
    }

    let reuse = obj(field(root, "$", "reuse_cycle")?, "$.reuse_cycle")?;
    num(reuse, "$.reuse_cycle", "moves")?;
    num(reuse, "$.reuse_cycle", "uniform_playouts_per_s")?;

    let soak = obj(field(root, "$", "soak")?, "$.soak")?;
    let budget = num(soak, "$.soak", "budget_bytes")?;
    let cycles = num(soak, "$.soak", "cycles")?;
    num(soak, "$.soak", "playouts_per_cycle")?;
    let first = num(soak, "$.soak", "first_decile_playouts_per_s")?;
    let last = num(soak, "$.soak", "last_decile_playouts_per_s")?;
    let ratio = num(soak, "$.soak", "ratio")?;
    let evicted = num(soak, "$.soak", "evicted")?;
    if first <= 0.0 || last <= 0.0 {
        return Err(format!(
            "$.soak: decile rates must be positive ({first}, {last})"
        ));
    }
    if (ratio - last / first).abs() > 0.01 {
        return Err(format!(
            "$.soak.ratio: {ratio} inconsistent with {last}/{first}"
        ));
    }
    if budget > (16 << 20) as f64 {
        return Err(format!(
            "$.soak.budget_bytes: {budget} exceeds the 16 MiB acceptance ceiling"
        ));
    }
    if !smoke {
        if cycles < 10_000.0 {
            return Err(format!(
                "$.soak.cycles: {cycles} < 10000 on a full (non-smoke) record"
            ));
        }
        if evicted <= 0.0 {
            return Err(
                "$.soak.evicted: a full soak must run in the recycling regime (0 evictions)".into(),
            );
        }
        if ratio < 0.9 {
            return Err(format!(
                "$.soak.ratio: {ratio} — last decile decayed more than 10% vs the first"
            ));
        }
    }

    Ok(format!(
        "schema ok: {} scheme rows, soak {} cycles under {} KiB (ratio {ratio:.3}, {evicted} evicted){}",
        schemes.len(),
        cycles,
        budget / 1024.0,
        if smoke { " [smoke]" } else { "" }
    ))
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_search.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_search_schema: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse(&text).and_then(|doc| check(&doc)) {
        Ok(summary) => {
            println!("{path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_search_schema: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "meta": {"playouts": 1600, "workers": 4, "board": "gomoku9", "smoke": false},
      "schemes": [
        {"scheme": "serial", "uniform_playouts_per_s": 200000.0, "nn_playouts_per_s": 6500.0}
      ],
      "reuse_cycle": {"scheme": "serial+reuse", "moves": 4, "uniform_playouts_per_s": 590000.0},
      "soak": {"scheme": "serial+reuse", "budget_bytes": 1048576, "cycles": 10000, "playouts_per_cycle": 256, "first_decile_playouts_per_s": 600000.0, "last_decile_playouts_per_s": 612000.0, "ratio": 1.02, "evicted": 5000}
    }"#;

    #[test]
    fn good_document_passes() {
        check(&parse(GOOD).unwrap()).unwrap();
    }

    #[test]
    fn missing_soak_section_fails() {
        let broken = GOOD.replace("\"soak\"", "\"sock\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("soak"), "{err}");
    }

    #[test]
    fn decayed_soak_ratio_fails_on_full_records() {
        let broken = GOOD
            .replace(
                "\"last_decile_playouts_per_s\": 612000.0",
                "\"last_decile_playouts_per_s\": 480000.0",
            )
            .replace("\"ratio\": 1.02", "\"ratio\": 0.80");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("decayed"), "{err}");
    }

    #[test]
    fn decayed_soak_ratio_passes_on_smoke_records() {
        let broken = GOOD
            .replace("\"smoke\": false", "\"smoke\": true")
            .replace(
                "\"last_decile_playouts_per_s\": 612000.0",
                "\"last_decile_playouts_per_s\": 480000.0",
            )
            .replace("\"ratio\": 1.02", "\"ratio\": 0.80");
        check(&parse(&broken).unwrap()).unwrap();
    }

    #[test]
    fn inconsistent_ratio_fails() {
        let broken = GOOD.replace("\"ratio\": 1.02", "\"ratio\": 1.50");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn eviction_free_full_soak_fails() {
        let broken = GOOD.replace("\"evicted\": 5000", "\"evicted\": 0");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("recycling regime"), "{err}");
    }

    #[test]
    fn short_full_soak_fails() {
        let broken = GOOD.replace("\"cycles\": 10000", "\"cycles\": 200");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("10000"), "{err}");
    }

    #[test]
    fn oversized_budget_fails() {
        let broken = GOOD.replace("\"budget_bytes\": 1048576", "\"budget_bytes\": 33554432");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("16 MiB"), "{err}");
    }

    #[test]
    fn missing_scheme_rows_fail() {
        let broken = GOOD.replace("\"schemes\"", "\"schemas\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("schemes"), "{err}");
    }
}
