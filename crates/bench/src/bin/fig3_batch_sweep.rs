//! Figure 3 — Design exploration of the host↔accelerator inference batch
//! size `B` for the local-tree scheme on a CPU-GPU platform.
//!
//! The paper sweeps `B` for `N ∈ {16, 32, 64}` workers and observes a
//! V-shaped amortized iteration latency: small batches serialize
//! inference behind per-submission launch latency, large batches make the
//! accelerator wait for the master thread's serial in-tree operations.
//! Optimal batch sizes reported by the paper: `B* = 8` at `N = 16` and
//! `B* = 20` at `N ∈ {32, 64}`.
//!
//! Run: `cargo run --release -p bench --bin fig3_batch_sweep`

use bench::{header, row, write_results};
use perfmodel::sim::{simulate_local_accel, SimParams};
use perfmodel::vsearch::find_min_vsequence_counted;

fn main() {
    println!("Figure 3: iteration latency (µs) vs inference batch size B");
    println!("(discrete-event simulation, paper-like 64-core + A6000 parameters)\n");

    let ns = [16usize, 32, 64];
    let batches: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 32, 48, 64];

    let mut csv = String::from("n,batch,iteration_us\n");
    let mut cols = vec!["B".to_string()];
    cols.extend(ns.iter().map(|n| format!("N={n}")));
    header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for &b in &batches {
        let mut values = Vec::new();
        for &n in &ns {
            if b > n {
                values.push(f64::NAN);
                continue;
            }
            let p = SimParams::paper_like(n);
            let us = simulate_local_accel(&p, b).iteration_ns / 1000.0;
            csv.push_str(&format!("{n},{b},{us:.3}\n"));
            values.push(us);
        }
        row(&format!("{b}"), &values);
    }

    println!("\nAlgorithm 4 batch-size search (O(log N) probes) vs exhaustive sweep:");
    header(&["N", "B* (Alg.4)", "probes", "B* (exhaustive)", "probes"]);
    for &n in &ns {
        let p = SimParams::paper_like(n);
        let mut oracle = |b: usize| simulate_local_accel(&p, b).iteration_ns;
        let fast = find_min_vsequence_counted(1, n, &mut oracle);
        let naive = perfmodel::vsearch::find_min_exhaustive(1, n, &mut oracle);
        row(
            &format!("{n}"),
            &[
                fast.argmin as f64,
                fast.evals as f64,
                naive.argmin as f64,
                naive.evals as f64,
            ],
        );
        let fast_v = simulate_local_accel(&p, fast.argmin).iteration_ns;
        let naive_v = simulate_local_accel(&p, naive.argmin).iteration_ns;
        assert!(
            fast_v <= naive_v * 1.02,
            "Alg.4 result must be within 2% of exhaustive"
        );
    }
    println!("\npaper-reported optima for reference: B*=8 @ N=16, B*=20 @ N=32/64");

    match write_results("fig3_batch_sweep.csv", &csv) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
