//! Emit `BENCH_inference.json` (schema v2): the machine-readable
//! before/after record for the inference fast path.
//!
//! Measures, on this machine:
//! * GEMM GFLOP/s (square sizes) — retained baseline kernel vs the packed
//!   register-blocked kernel (and its MT variant) vs the int8-quantized
//!   kernel with fused dequant epilogue;
//! * `PolicyValueNet` batch-forward throughput (paper-size gomoku15 net) —
//!   pre-rewrite reference path vs the fast path vs the zero-alloc
//!   workspace path, in both f32 and int8 precision (`precision` field);
//! * steady-state `NnEvaluator::evaluate_batch` throughput per precision.
//!
//! Usage: `bench_inference [--smoke] [out_path]` (default
//! `BENCH_inference.json`). `--smoke` shrinks repetitions so CI can prove
//! the binary runs without paying measurement time.

use mcts::{BatchEvaluator, EvalOutput, NnEvaluator, Precision};
use nn::{NetConfig, PolicyValueNet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tensor::quant::{qgemm, QuantizedWeights};
use tensor::{Tensor, Workspace};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Median seconds per call over `reps` timed calls (after `warm` warm-ups).
fn time_median(warm: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warm {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn cpu_has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn cpu_has_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let (warm, reps) = if smoke { (1, 1) } else { (3, 15) };

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"schema_version\": 2, \"tensor_threads\": {}, \"smoke\": {smoke}, \
         \"cpu\": {{\"avx2\": {}, \"fma\": {}, \"int8_simd\": {}}}}},",
        tensor::pool::parallelism(),
        cpu_has_avx2(),
        cpu_has_fma(),
        tensor::quant::simd_enabled()
    );

    // --- GEMM kernels -----------------------------------------------------
    json.push_str("  \"gemm\": [\n");
    let sizes = [64usize, 128, 256];
    for (i, &n) in sizes.iter().enumerate() {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        let mut c = vec![0.0f32; n * n];
        let flops = (2 * n * n * n) as f64;
        let t_base = time_median(warm, reps, || {
            tensor::ops::baseline::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        let t_new = time_median(warm, reps, || {
            tensor::ops::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        let t_mt = time_median(warm, reps, || {
            tensor::ops::gemm_mt(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        // Int8 path: A quantized once (the weight side, amortized at
        // snapshot time in serving), activations quantized per call.
        let qw = QuantizedWeights::quantize(&a, n, n);
        let t_q = time_median(warm, reps, || {
            qgemm(&qw, &b, false, n, &mut c, None, false);
        });
        let _ = writeln!(
            json,
            "    {{\"size\": {n}, \"baseline_gflops\": {:.2}, \"packed_gflops\": {:.2}, \
             \"packed_mt_gflops\": {:.2}, \"int8_gflops\": {:.2}, \"speedup\": {:.2}, \
             \"int8_speedup\": {:.2}}}{}",
            flops / t_base / 1e9,
            flops / t_new / 1e9,
            flops / t_mt / 1e9,
            flops / t_q / 1e9,
            t_base / t_new,
            t_new / t_q,
            if i + 1 < sizes.len() { "," } else { "" }
        );
        println!(
            "gemm {n}^3: baseline {:.2} GFLOP/s, packed {:.2} GFLOP/s ({:.2}x), \
             int8 {:.2} GFLOP/s ({:.2}x over packed)",
            flops / t_base / 1e9,
            flops / t_new / 1e9,
            t_base / t_new,
            flops / t_q / 1e9,
            t_new / t_q
        );
    }
    json.push_str("  ],\n");

    // --- Batch forward (paper-size net) -----------------------------------
    let net = PolicyValueNet::new(NetConfig::gomoku15(), 3);
    let qnet = net
        .quantized_for_inference()
        .expect("gomoku15 topology quantizes");
    let sample = net.config.in_c * net.config.h * net.config.w;
    json.push_str("  \"forward\": [\n");
    let batches = [1usize, 4, 8, 16, 32];
    for (i, &batch) in batches.iter().enumerate() {
        let x = Tensor::from_vec(
            rand_vec(batch * sample, 10 + batch as u64),
            &[batch, net.config.in_c, net.config.h, net.config.w],
        );
        let t_ref = time_median(warm, reps, || {
            std::hint::black_box(net.forward_reference(&x));
        });
        let t_fast = time_median(warm, reps, || {
            std::hint::black_box(net.forward(&x));
        });
        let mut ws = Workspace::new();
        let (mut policy, mut values) = (Vec::new(), Vec::new());
        let t_ws = time_median(warm, reps, || {
            net.predict_into(&x, &mut ws, &mut policy, &mut values);
        });
        let t_q = time_median(warm, reps, || {
            qnet.predict_into(&x, &mut ws, &mut policy, &mut values);
        });
        let b = batch as f64;
        let _ = writeln!(
            json,
            "    {{\"batch\": {batch}, \"precision\": \"f32\", \"reference_sps\": {:.1}, \
             \"fast_sps\": {:.1}, \"workspace_sps\": {:.1}, \"speedup\": {:.2}}},",
            b / t_ref,
            b / t_fast,
            b / t_ws,
            t_ref / t_fast,
        );
        let _ = writeln!(
            json,
            "    {{\"batch\": {batch}, \"precision\": \"int8\", \"workspace_sps\": {:.1}, \
             \"speedup_vs_f32\": {:.2}}}{}",
            b / t_q,
            t_ws / t_q,
            if i + 1 < batches.len() { "," } else { "" }
        );
        println!(
            "forward b={batch}: reference {:.1} samples/s, fast {:.1} samples/s ({:.2}x), \
             int8 {:.1} samples/s ({:.2}x over f32)",
            b / t_ref,
            b / t_fast,
            t_ref / t_fast,
            b / t_q,
            t_ws / t_q
        );
    }
    json.push_str("  ],\n");

    // --- Evaluator steady state -------------------------------------------
    let net = Arc::new(net);
    let batch = 32usize;
    let inputs: Vec<Vec<f32>> = (0..batch)
        .map(|i| rand_vec(sample, 100 + i as u64))
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let mut out = vec![EvalOutput::default(); batch];
    json.push_str("  \"evaluate_batch\": [\n");
    for (i, precision) in [Precision::F32, Precision::Int8].into_iter().enumerate() {
        let eval = NnEvaluator::with_precision(Arc::clone(&net), batch, precision);
        let t_eval = time_median(warm, reps, || {
            eval.evaluate_batch(&refs, &mut out);
        });
        let label = match precision {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        };
        let _ = writeln!(
            json,
            "    {{\"batch\": {batch}, \"precision\": \"{label}\", \
             \"samples_per_sec\": {:.1}}}{}",
            batch as f64 / t_eval,
            if i == 0 { "," } else { "" }
        );
        println!(
            "evaluate_batch b={batch} {label}: {:.1} samples/s",
            batch as f64 / t_eval
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
