//! Emit `BENCH_inference.json`: the machine-readable before/after record
//! for the inference fast path.
//!
//! Measures, on this machine:
//! * GEMM GFLOP/s (square sizes) — retained baseline kernel vs the packed
//!   register-blocked kernel (and its MT variant);
//! * `PolicyValueNet` batch-forward throughput (paper-size gomoku15 net) —
//!   pre-rewrite reference path vs the fast path vs the zero-alloc
//!   workspace path;
//! * steady-state `NnEvaluator::evaluate_batch` throughput.
//!
//! Usage: `bench_inference [--smoke] [out_path]` (default
//! `BENCH_inference.json`). `--smoke` shrinks repetitions so CI can prove
//! the binary runs without paying measurement time.

use mcts::{BatchEvaluator, EvalOutput, NnEvaluator};
use nn::{NetConfig, PolicyValueNet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tensor::{Tensor, Workspace};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Median seconds per call over `reps` timed calls (after `warm` warm-ups).
fn time_median(warm: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warm {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let (warm, reps) = if smoke { (1, 1) } else { (3, 15) };

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"tensor_threads\": {}, \"smoke\": {smoke}}},",
        tensor::pool::parallelism()
    );

    // --- GEMM kernels -----------------------------------------------------
    json.push_str("  \"gemm\": [\n");
    let sizes = [64usize, 128, 256];
    for (i, &n) in sizes.iter().enumerate() {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        let mut c = vec![0.0f32; n * n];
        let flops = (2 * n * n * n) as f64;
        let t_base = time_median(warm, reps, || {
            tensor::ops::baseline::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        let t_new = time_median(warm, reps, || {
            tensor::ops::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        let t_mt = time_median(warm, reps, || {
            tensor::ops::gemm_mt(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut c);
        });
        let _ = writeln!(
            json,
            "    {{\"size\": {n}, \"baseline_gflops\": {:.2}, \"packed_gflops\": {:.2}, \
             \"packed_mt_gflops\": {:.2}, \"speedup\": {:.2}}}{}",
            flops / t_base / 1e9,
            flops / t_new / 1e9,
            flops / t_mt / 1e9,
            t_base / t_new,
            if i + 1 < sizes.len() { "," } else { "" }
        );
        println!(
            "gemm {n}^3: baseline {:.2} GFLOP/s, packed {:.2} GFLOP/s ({:.2}x)",
            flops / t_base / 1e9,
            flops / t_new / 1e9,
            t_base / t_new
        );
    }
    json.push_str("  ],\n");

    // --- Batch forward (paper-size net) -----------------------------------
    let net = PolicyValueNet::new(NetConfig::gomoku15(), 3);
    let sample = net.config.in_c * net.config.h * net.config.w;
    json.push_str("  \"forward\": [\n");
    let batches = [1usize, 4, 8, 16, 32];
    for (i, &batch) in batches.iter().enumerate() {
        let x = Tensor::from_vec(
            rand_vec(batch * sample, 10 + batch as u64),
            &[batch, net.config.in_c, net.config.h, net.config.w],
        );
        let t_ref = time_median(warm, reps, || {
            std::hint::black_box(net.forward_reference(&x));
        });
        let t_fast = time_median(warm, reps, || {
            std::hint::black_box(net.forward(&x));
        });
        let mut ws = Workspace::new();
        let (mut policy, mut values) = (Vec::new(), Vec::new());
        let t_ws = time_median(warm, reps, || {
            net.predict_into(&x, &mut ws, &mut policy, &mut values);
        });
        let b = batch as f64;
        let _ = writeln!(
            json,
            "    {{\"batch\": {batch}, \"reference_sps\": {:.1}, \"fast_sps\": {:.1}, \
             \"workspace_sps\": {:.1}, \"speedup\": {:.2}}}{}",
            b / t_ref,
            b / t_fast,
            b / t_ws,
            t_ref / t_fast,
            if i + 1 < batches.len() { "," } else { "" }
        );
        println!(
            "forward b={batch}: reference {:.1} samples/s, fast {:.1} samples/s ({:.2}x)",
            b / t_ref,
            b / t_fast,
            t_ref / t_fast
        );
    }
    json.push_str("  ],\n");

    // --- Evaluator steady state -------------------------------------------
    let eval = NnEvaluator::new(Arc::new(net));
    let batch = 32usize;
    let inputs: Vec<Vec<f32>> = (0..batch)
        .map(|i| rand_vec(sample, 100 + i as u64))
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let mut out = vec![EvalOutput::default(); batch];
    let t_eval = time_median(warm, reps, || {
        eval.evaluate_batch(&refs, &mut out);
    });
    let _ = writeln!(
        json,
        "  \"evaluate_batch\": [{{\"batch\": {batch}, \"samples_per_sec\": {:.1}}}]",
        batch as f64 / t_eval
    );
    println!(
        "evaluate_batch b={batch}: {:.1} samples/s",
        batch as f64 / t_eval
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
