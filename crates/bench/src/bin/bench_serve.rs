//! Emit `BENCH_serve.json`: the machine-readable serving-throughput
//! record — requests/second and p50/p99 submit→finish latency of a
//! multi-session [`serve::SearchService`] as the number of concurrent
//! sessions grows, plus the cross-session batch-coalescing figure: the
//! mean inference batch realized when the same requests are served
//! concurrently versus strictly one at a time.
//!
//! Usage: `bench_serve [--smoke] [out_path]` (default
//! `BENCH_serve.json`). `--smoke` (or env `BENCH_SMOKE=1`) shrinks the
//! budgets and the session matrix so CI can prove the binary runs
//! without paying measurement time. Timings are never gated on.

use games::gomoku::Gomoku;
use games::Game;
use mcts::{BatchEvaluator, Budget, MctsConfig, NnEvaluator};
use nn::{NetConfig, PolicyValueNet};
use serve::{SearchRequest, SearchService, ServeConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 9×9 Gomoku position a few plies in (same state every run).
fn midgame() -> Gomoku {
    let mut g = Gomoku::new(9, 5);
    for a in [40u16, 41, 31, 49, 39] {
        g.apply(a);
    }
    g
}

struct RunFigures {
    requests_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_eval_batch: f64,
}

/// Submit `sessions` identical requests to a `workers`-thread service
/// and wait for all of them; latencies are measured service-side.
fn run_once(
    workers: usize,
    sessions: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
) -> RunFigures {
    let service = SearchService::new(ServeConfig {
        workers,
        step_quota: 32,
        max_pooled: 2 * workers,
        coalesce_window: Duration::from_millis(2),
    });
    let cfg = MctsConfig {
        playouts,
        max_nodes: Some(200_000),
        ..Default::default()
    };
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..sessions)
        .map(|_| {
            service.submit(
                SearchRequest::new(root.clone(), Arc::clone(eval))
                    .config(cfg)
                    .budget(Budget::playouts(playouts as u64)),
            )
        })
        .collect();
    let mut latencies: Vec<Duration> = tickets
        .iter()
        .map(|t| {
            let r = t.wait();
            assert_eq!(r.stats.playouts, playouts as u64);
            t.latency().expect("finished session records latency")
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    RunFigures {
        requests_per_s: sessions as f64 / wall,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        mean_eval_batch: service.stats().mean_eval_batch(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(4)
        .max(2);
    let (playouts, session_counts): (usize, &[usize]) = if smoke {
        (48, &[1, 4])
    } else {
        (256, &[1, 4, 16, 64])
    };

    let root = midgame();
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    let eval: Arc<dyn BatchEvaluator> = Arc::new(NnEvaluator::with_batch_hint(net, workers));

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"workers\": {workers}, \"playouts_per_request\": {playouts}, \"board\": \"gomoku9\", \"evaluator\": \"nn\", \"smoke\": {smoke}}},"
    );

    // --- throughput/latency vs concurrent session count -------------------
    json.push_str("  \"sessions\": [\n");
    for (i, &sessions) in session_counts.iter().enumerate() {
        let f = run_once(workers, sessions, playouts, &eval, &root);
        let _ = writeln!(
            json,
            "    {{\"concurrent\": {sessions}, \"requests_per_s\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"mean_eval_batch\": {:.3}}}{}",
            f.requests_per_s,
            f.p50_ms,
            f.p99_ms,
            f.mean_eval_batch,
            if i + 1 < session_counts.len() { "," } else { "" }
        );
        eprintln!(
            "{sessions:>3} sessions: {:>7.2} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  mean batch {:.2}",
            f.requests_per_s, f.p50_ms, f.p99_ms, f.mean_eval_batch
        );
    }
    json.push_str("  ],\n");

    // --- cross-session coalescing: concurrent vs serial -------------------
    // The acceptance figure: the same burst served by a multi-worker
    // service must fill larger mean inference batches than served one
    // session at a time (one worker ⇒ rounds of exactly one sample).
    let burst = if smoke { 4 } else { 16 };
    let serial = run_once(1, burst, playouts, &eval, &root);
    let multi = run_once(workers, burst, playouts, &eval, &root);
    let _ = writeln!(
        json,
        "  \"coalescing\": {{\"burst\": {burst}, \"serial_mean_eval_batch\": {:.3}, \"multi_mean_eval_batch\": {:.3}}}",
        serial.mean_eval_batch, multi.mean_eval_batch
    );
    eprintln!(
        "coalescing over {burst}-request burst: serial mean batch {:.2} → multi mean batch {:.2}",
        serial.mean_eval_batch, multi.mean_eval_batch
    );

    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
}
