//! Emit `BENCH_serve.json`: the machine-readable serving-performance
//! record, seven axes:
//!
//! * `sessions` — requests/second and p50/p99 submit→finish latency of
//!   one multi-session [`serve::SearchService`] as the number of
//!   concurrent sessions grows;
//! * `cluster` — aggregate requests/second of a [`serve::ServeCluster`]
//!   as the shard count grows over a fixed total worker budget (the
//!   sharding scaling axis; on a single-core host this documents
//!   parity);
//! * `shedding` — an overload burst against a small admission budget:
//!   offered vs admitted vs shed counts, the mean `retry_after` hint,
//!   and the (bounded) wall time to drain what was admitted;
//! * `coalescing` — the cross-session batch-fill figure: mean inference
//!   batch of the same burst served serially vs multiplexed;
//! * `cache` — the evaluation-cache figure: the same repeated-position
//!   workload served with [`serve::ServeConfig::eval_cache_bytes`] off
//!   vs on, with the realized hit rate and the throughput ratio;
//! * `degradation` — the fault-containment figure: a two-backend
//!   cluster where one backend is wrapped in a seeded fault injector
//!   swept over 0% / 5% / 20% fault rates while a healthy co-resident
//!   backend serves the same interleaved burst. Reports per-backend
//!   req/s, p99 latency and done/failed/shed counts; the healthy
//!   column staying flat across the sweep is the containment evidence;
//! * `network` — the wire-protocol figure: the same workload offered by
//!   real [`net::Client`] connections over loopback TCP. A closed-loop
//!   run at the in-process concurrency proves the framing tax (admitted
//!   throughput within a few percent of the in-process figure), then an
//!   open-loop sweep offers 0.5×/2×/4× the measured capacity against an
//!   admission budget sized *to* that capacity — the top of the sweep
//!   overloads the server and the excess is shed with nonzero
//!   `retry_after` hints while admitted throughput holds.
//!
//! Usage: `bench_serve [--smoke] [out_path]` (default
//! `BENCH_serve.json`). `--smoke` (or env `BENCH_SMOKE=1`) shrinks the
//! budgets and matrices so CI can prove the binary (including the
//! cluster + shedding paths) runs without paying measurement time.
//! Timings are never gated on. `check_serve_schema` validates the
//! emitted schema in CI so the perf trajectory stays machine-readable.

use games::gomoku::Gomoku;
use games::Game;
use mcts::{BatchEvaluator, Budget, ChaosConfig, ChaosEvaluator, MctsConfig, NnEvaluator};
use nn::{NetConfig, PolicyValueNet};
use serve::{
    AdmissionConfig, ClusterConfig, LeastLoaded, SearchRequest, SearchService, ServeCluster,
    ServeConfig, TicketStatus,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 9×9 Gomoku position a few plies in (same state every run).
fn midgame() -> Gomoku {
    let mut g = Gomoku::new(9, 5);
    for a in [40u16, 41, 31, 49, 39] {
        g.apply(a);
    }
    g
}

fn request(
    root: &Gomoku,
    eval: &Arc<dyn BatchEvaluator>,
    playouts: usize,
) -> SearchRequest<Gomoku> {
    let cfg = MctsConfig {
        playouts,
        max_nodes: Some(200_000),
        ..Default::default()
    };
    SearchRequest::new(root.clone(), Arc::clone(eval))
        .config(cfg)
        .budget(Budget::playouts(playouts as u64))
}

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        step_quota: 32,
        max_pooled: 2 * workers,
        coalesce_window: Duration::from_millis(2),
        // Measurement-driven batching: seed each backend's forward-time
        // curve at registration so the tuner steers from the first burst.
        coalesce_auto: true,
        calibrate_on_register: true,
        ..Default::default()
    }
}

struct RunFigures {
    requests_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_eval_batch: f64,
}

/// Linearly interpolated percentiles over the per-request latency
/// vector. Nearest-rank rounding collapsed p50 and p99 onto the same
/// order statistic at small sample counts (the old p50 == p99 artifact);
/// interpolation keeps them distinct and monotone (p99 ≥ p50 by
/// construction), which `check_serve_schema` now asserts.
fn percentiles(latencies: &mut [Duration]) -> (f64, f64) {
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        let rank = (latencies.len() - 1) as f64 * p;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        (latencies[lo].as_secs_f64() * (1.0 - frac) + latencies[hi].as_secs_f64() * frac) * 1e3
    };
    (pct(0.50), pct(0.99))
}

/// Submit `sessions` identical requests to a `workers`-thread service
/// and wait for all of them; latencies are measured service-side.
fn run_service(
    workers: usize,
    sessions: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
) -> RunFigures {
    let service = SearchService::new(serve_cfg(workers));
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..sessions)
        .map(|_| service.submit(request(root, eval, playouts)))
        .collect();
    let mut latencies: Vec<Duration> = tickets
        .iter()
        .map(|t| {
            let r = t.wait();
            assert_eq!(r.stats.playouts, playouts as u64);
            t.latency().expect("finished session records latency")
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let (p50_ms, p99_ms) = percentiles(&mut latencies);
    RunFigures {
        requests_per_s: sessions as f64 / wall,
        p50_ms,
        p99_ms,
        mean_eval_batch: service.stats().mean_eval_batch(),
    }
}

/// The same burst through a `shards`-shard cluster over a fixed total
/// worker budget (placement: least-loaded, so the burst spreads).
fn run_cluster(
    shards: usize,
    total_workers: usize,
    sessions: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
) -> RunFigures {
    let per_shard = (total_workers / shards).max(1);
    let cluster = ServeCluster::with_placement(
        ClusterConfig {
            shards,
            shard: serve_cfg(per_shard),
            admission: None,
        },
        Box::new(LeastLoaded),
    );
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..sessions)
        .map(|_| {
            cluster
                .submit(request(root, eval, playouts))
                .expect("no admission configured")
        })
        .collect();
    let mut latencies: Vec<Duration> = tickets
        .iter()
        .map(|t| {
            let r = t.wait();
            assert_eq!(r.stats.playouts, playouts as u64);
            t.latency().expect("finished session records latency")
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let (p50_ms, p99_ms) = percentiles(&mut latencies);
    RunFigures {
        requests_per_s: sessions as f64 / wall,
        p50_ms,
        p99_ms,
        mean_eval_batch: cluster.stats().total().mean_eval_batch(),
    }
}

struct ShedFigures {
    offered: usize,
    admitted: usize,
    shed: usize,
    mean_retry_after_ms: f64,
    drain_ms: f64,
}

/// Offer an overload burst against a deliberately small admission
/// budget: most of it must shed immediately and the admitted remainder
/// must drain in bounded time.
fn run_shedding(
    workers: usize,
    offered: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
) -> ShedFigures {
    let budget_sessions = (offered / 3).max(1);
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: serve_cfg((workers.max(2)) / 2),
        admission: Some(AdmissionConfig {
            playouts_per_sec: (playouts * budget_sessions) as f64,
            burst_playouts: (playouts * budget_sessions) as u64,
            max_pending: budget_sessions,
            ..Default::default()
        }),
    });
    let t0 = Instant::now();
    let mut admitted = Vec::new();
    let mut retry_hints = Vec::new();
    for _ in 0..offered {
        match cluster.submit(request(root, eval, playouts)) {
            Ok(t) => admitted.push(t),
            Err(r) => retry_hints.push(r.retry_after),
        }
    }
    for t in &admitted {
        let r = t.wait();
        assert_eq!(r.stats.playouts, playouts as u64);
    }
    let drain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = cluster.stats();
    assert_eq!(stats.admitted as usize, admitted.len());
    assert_eq!(stats.shed() as usize, retry_hints.len());
    let mean_retry_after_ms = if retry_hints.is_empty() {
        0.0
    } else {
        retry_hints.iter().map(|d| d.as_secs_f64()).sum::<f64>() / retry_hints.len() as f64 * 1e3
    };
    ShedFigures {
        offered,
        admitted: admitted.len(),
        shed: retry_hints.len(),
        mean_retry_after_ms,
        drain_ms,
    }
}

struct CacheFigures {
    requests: usize,
    distinct_positions: usize,
    rounds: usize,
    off_rps: f64,
    on_rps: f64,
    hit_rate: f64,
}

/// Serve a repeated-position workload — `rounds` rounds over a small
/// fixed set of midgame positions — once with the evaluation cache off
/// and once with it on. Rounds run back-to-back (each waits for the
/// previous), so from round two every position's leaf set is warm.
fn run_cache_axis(
    workers: usize,
    rounds: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
) -> CacheFigures {
    // A few distinct positions a ply apart: a deterministic serial
    // search re-evaluates the identical leaf set every time a position
    // repeats.
    let positions: Vec<Gomoku> = [36u16, 44, 50]
        .iter()
        .map(|&extra| {
            let mut g = midgame();
            g.apply(extra);
            g
        })
        .collect();
    let run = |cache_bytes: Option<usize>| -> (f64, f64) {
        let mut cfg = serve_cfg(workers);
        cfg.eval_cache_bytes = cache_bytes;
        let service = SearchService::new(cfg);
        let t0 = Instant::now();
        for _ in 0..rounds {
            let tickets: Vec<_> = positions
                .iter()
                .map(|p| service.submit(request(p, eval, playouts)))
                .collect();
            for t in tickets {
                assert_eq!(t.wait().stats.playouts, playouts as u64);
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let requests = rounds * positions.len();
        (requests as f64 / wall, service.stats().cache_hit_rate())
    };
    let (off_rps, off_hit_rate) = run(None);
    assert_eq!(off_hit_rate, 0.0, "disabled cache must not report hits");
    let (on_rps, hit_rate) = run(Some(256 << 20));
    CacheFigures {
        requests: rounds * positions.len(),
        distinct_positions: positions.len(),
        rounds,
        off_rps,
        on_rps,
        hit_rate,
    }
}

/// Per-backend figures from one degradation run.
struct ClassFigures {
    requests_per_s: f64,
    p99_ms: f64,
    done: usize,
    failed: usize,
    shed: usize,
}

struct DegradationFigures {
    faulty: ClassFigures,
    healthy: ClassFigures,
}

/// Drive a two-backend cluster — one backend wrapped in a seeded fault
/// injector at `fault_p` (transient evaluator errors plus a smaller
/// share of outright panics), one healthy co-resident backend — with an
/// interleaved burst. Retry, circuit-breaker and panic-quarantine
/// machinery absorb the faults; the healthy backend's throughput and
/// tail latency staying flat across the fault sweep is the
/// fault-containment acceptance figure.
fn run_degradation(
    workers: usize,
    per_class: usize,
    playouts: usize,
    fault_p: f64,
    net: &Arc<PolicyValueNet>,
    root: &Gomoku,
) -> DegradationFigures {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            backoff_base: Duration::from_micros(200),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(50),
            ..serve_cfg((workers.max(2)) / 2)
        },
        admission: None, // only breaker sheds reject here
    });
    let faulty: Arc<dyn BatchEvaluator> = Arc::new(ChaosEvaluator::new(
        Arc::new(NnEvaluator::with_batch_hint(Arc::clone(net), workers)),
        ChaosConfig {
            seed: 0xFA_1175 ^ (fault_p * 1e3) as u64,
            // Mostly transient errors (absorbed by the retry budget and
            // the breaker), a small share of outright panics
            // (quarantined, unretryable) — a session compounds the
            // per-call panic rate over every batch it evaluates.
            panic_p: fault_p * 0.1,
            error_p: fault_p,
            latency_p: 0.0,
            latency: Duration::ZERO,
            stale_p: 0.0,
        },
    ));
    let healthy: Arc<dyn BatchEvaluator> =
        Arc::new(NnEvaluator::with_batch_hint(Arc::clone(net), workers));

    let t0 = Instant::now();
    // (is_faulty, ticket): a `None` ticket was shed at submit because
    // that backend's breaker was open.
    let mut submitted = Vec::with_capacity(2 * per_class);
    for i in 0..2 * per_class {
        let on_faulty = i % 2 == 0;
        let eval = if on_faulty { &faulty } else { &healthy };
        submitted.push((
            on_faulty,
            cluster.submit(request(root, eval, playouts)).ok(),
        ));
    }
    let mut lat: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
    let mut done = [0usize; 2];
    let mut failed = [0usize; 2];
    let mut shed = [0usize; 2];
    for (on_faulty, ticket) in &submitted {
        let class = usize::from(*on_faulty);
        match ticket {
            None => shed[class] += 1,
            Some(t) => {
                let outcome = t.wait_timeout(Duration::from_secs(120));
                assert!(
                    outcome.is_finished(),
                    "degradation session never terminated"
                );
                match t.status() {
                    TicketStatus::Done => {
                        done[class] += 1;
                        if let Some(l) = t.latency() {
                            lat[class].push(l);
                        }
                    }
                    _ => failed[class] += 1,
                }
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let mut class = |idx: usize| -> ClassFigures {
        let p99_ms = if lat[idx].is_empty() {
            0.0
        } else {
            percentiles(&mut lat[idx]).1
        };
        ClassFigures {
            requests_per_s: done[idx] as f64 / wall,
            p99_ms,
            done: done[idx],
            failed: failed[idx],
            shed: shed[idx],
        }
    };
    DegradationFigures {
        healthy: class(0),
        faulty: class(1),
    }
}

/// The network cluster shape shared by the in-process baseline and the
/// wire-protocol runs, so the comparison isolates the framing tax.
fn net_cluster(workers: usize, admission: Option<AdmissionConfig>) -> Arc<ServeCluster> {
    Arc::new(ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: serve_cfg((workers.max(2)) / 2),
        admission,
    }))
}

/// Closed-loop in-process baseline: `clients` submitting threads, each
/// running `requests_per_client` submit→wait cycles against the cluster
/// API directly. Returns completed requests per second.
fn run_inprocess_closed(
    workers: usize,
    clients: usize,
    requests_per_client: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
) -> f64 {
    let cluster = net_cluster(workers, None);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                for _ in 0..requests_per_client {
                    let t = cluster
                        .submit(request(root, eval, playouts))
                        .expect("no admission configured");
                    assert_eq!(t.wait().stats.playouts, playouts as u64);
                }
            });
        }
    });
    (clients * requests_per_client) as f64 / t0.elapsed().as_secs_f64()
}

/// One loadgen run's JSON object body (shared fields of the closed-loop
/// point and every sweep point).
fn loadgen_json(r: &net::LoadReport) -> String {
    format!(
        "\"offered\": {}, \"admitted\": {}, \"shed\": {}, \"failed\": {}, \"admitted_per_s\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"mean_retry_after_ms\": {:.2}, \"zero_hint_sheds\": {}",
        r.offered,
        r.admitted,
        r.shed,
        r.failed,
        r.admitted_per_sec(),
        r.percentile_ms(50.0),
        r.percentile_ms(99.0),
        r.mean_retry_after.as_secs_f64() * 1e3,
        r.zero_hint_sheds
    )
}

/// The network axis: closed-loop parity run (open admission) plus an
/// open-loop overload sweep against an admission budget sized to the
/// measured in-process capacity. Appends the `"network"` object to
/// `json`.
#[allow(clippy::too_many_arguments)]
fn run_network(
    json: &mut String,
    workers: usize,
    clients: usize,
    requests_per_client: usize,
    playouts: usize,
    eval: &Arc<dyn BatchEvaluator>,
    root: &Gomoku,
    smoke: bool,
) {
    let wire_request = net::WireRequest::new(net::GameSpec::Gomoku { size: 9, win: 5 })
        .moves(vec![40, 41, 31, 49, 39])
        .playouts(playouts as u64);
    let factory: net::EvalFactory = {
        let eval = Arc::clone(eval);
        Box::new(move |_spec| Arc::clone(&eval))
    };
    let _ = root; // the wire request carries the same midgame prefix

    // Baseline: the same closed-loop workload through the in-process API.
    let inproc_rps =
        run_inprocess_closed(workers, clients, requests_per_client, playouts, eval, root);
    eprintln!("network baseline (in-process, {clients} clients): {inproc_rps:.2} req/s");

    // Closed loop over the wire: open admission, identical concurrency.
    let mut server = net::NetServer::bind_with_factory(
        "127.0.0.1:0",
        net_cluster(workers, None),
        net::ServerConfig::default(),
        factory,
    )
    .expect("bind loopback");
    let closed = net::loadgen::run(&net::LoadConfig {
        addr: server.local_addr(),
        token: String::new(),
        clients,
        requests_per_client,
        open_loop_rate: None,
        request: wire_request.clone(),
    });
    server.shutdown(Duration::from_secs(10));
    eprintln!(
        "network closed loop ({clients} clients): {:.2} req/s over the wire ({:.1}% of in-process), p50 {:.2} ms p99 {:.2} ms",
        closed.admitted_per_sec(),
        closed.admitted_per_sec() / inproc_rps * 100.0,
        closed.percentile_ms(50.0),
        closed.percentile_ms(99.0)
    );

    let _ = writeln!(
        json,
        "  \"network\": {{\n    \"inprocess_requests_per_s\": {inproc_rps:.2},\n    \"closed_loop\": {{\"clients\": {clients}, {}}},\n    \"sweep\": [",
        loadgen_json(&closed)
    );

    // Overload sweep: admission sized to the measured capacity, offered
    // load set by the clock at 0.5× / 2× / 4× that capacity. The ≥1×
    // points *must* shed; every shed must carry a nonzero retry hint.
    let capacity_rps = inproc_rps;
    let multipliers: &[f64] = if smoke { &[2.0] } else { &[0.5, 2.0, 4.0] };
    let seconds = if smoke { 1.0 } else { 5.0 };
    for (i, &m) in multipliers.iter().enumerate() {
        let factory: net::EvalFactory = {
            let eval = Arc::clone(eval);
            Box::new(move |_spec| Arc::clone(&eval))
        };
        let mut server = net::NetServer::bind_with_factory(
            "127.0.0.1:0",
            net_cluster(
                workers,
                Some(AdmissionConfig {
                    playouts_per_sec: capacity_rps * playouts as f64,
                    burst_playouts: (4 * playouts) as u64,
                    max_pending: 1024,
                    ..Default::default()
                }),
            ),
            net::ServerConfig::default(),
            factory,
        )
        .expect("bind loopback");
        let offered_rate = m * capacity_rps;
        let per_client_rate = (offered_rate / clients as f64).max(0.1);
        let rpc = ((offered_rate * seconds / clients as f64).ceil() as usize).max(1);
        let r = net::loadgen::run(&net::LoadConfig {
            addr: server.local_addr(),
            token: String::new(),
            clients,
            requests_per_client: rpc,
            open_loop_rate: Some(per_client_rate),
            request: wire_request.clone(),
        });
        server.shutdown(Duration::from_secs(10));
        let _ = writeln!(
            json,
            "      {{\"clients\": {clients}, \"offered_per_s\": {offered_rate:.2}, {}}}{}",
            loadgen_json(&r),
            if i + 1 < multipliers.len() { "," } else { "" }
        );
        eprintln!(
            "network open loop @ {m:>3.1}× capacity ({offered_rate:>7.2} offered/s): admitted {} / shed {} / failed {} of {} — {:.2} admitted/s, p99 {:.2} ms, mean retry_after {:.1} ms, zero-hint sheds {}",
            r.admitted,
            r.shed,
            r.failed,
            r.offered,
            r.admitted_per_sec(),
            r.percentile_ms(99.0),
            r.mean_retry_after.as_secs_f64() * 1e3,
            r.zero_hint_sheds
        );
    }
    json.push_str("    ]\n  }\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // The degradation axis injects panics into worker threads by
    // design; keep the default hook's per-panic noise out of the bench
    // log while leaving every other thread's panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("serve-worker"));
        // Registration-time calibration probes the (chaos-wrapped)
        // backend on the submitting thread and catches any injected
        // panic itself — keep that noise out of the log too.
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !in_worker && !injected {
            default_hook(info);
        }
    }));

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Oversubscription past the physical core count is safe now that
    // serve workers draw from the unified core arbiter (a worker lends
    // its core back while blocked on a coalesced forward), so the bench
    // runs enough workers to keep batches full even on small hosts.
    let workers = host_cores.clamp(4, 8);
    let eval_batch_hint = 32usize;
    let (playouts, session_counts, shard_counts, shed_offered): (usize, &[usize], &[usize], usize) =
        if smoke {
            (48, &[1, 4], &[1, 2], 6)
        } else {
            (256, &[1, 4, 16, 64], &[1, 2, 4], 24)
        };

    let root = midgame();
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    // The serving tier under measurement is the int8 path: quantized at
    // snapshot time, ~2× the f32 forward throughput at parity (the f32
    // per-layer figures live in BENCH_inference.json).
    let eval: Arc<dyn BatchEvaluator> = Arc::new(NnEvaluator::with_precision(
        Arc::clone(&net),
        eval_batch_hint,
        mcts::Precision::Int8,
    ));

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"schema_version\": 6, \"workers\": {workers}, \"host_cores\": {host_cores}, \"eval_batch_hint\": {eval_batch_hint}, \"coalesce_auto\": true, \"playouts_per_request\": {playouts}, \"board\": \"gomoku9\", \"evaluator\": \"nn-int8\", \"smoke\": {smoke}}},"
    );

    // --- throughput/latency vs concurrent session count -------------------
    json.push_str("  \"sessions\": [\n");
    for (i, &sessions) in session_counts.iter().enumerate() {
        let f = run_service(workers, sessions, playouts, &eval, &root);
        let _ = writeln!(
            json,
            "    {{\"concurrent\": {sessions}, \"requests_per_s\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"mean_eval_batch\": {:.3}}}{}",
            f.requests_per_s,
            f.p50_ms,
            f.p99_ms,
            f.mean_eval_batch,
            if i + 1 < session_counts.len() { "," } else { "" }
        );
        eprintln!(
            "{sessions:>3} sessions: {:>7.2} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  mean batch {:.2}",
            f.requests_per_s, f.p50_ms, f.p99_ms, f.mean_eval_batch
        );
    }
    json.push_str("  ],\n");

    // --- aggregate throughput vs shard count ------------------------------
    // Fixed total worker budget partitioned across shards; a multi-core
    // host shows aggregate req/s scaling, a single-core host documents
    // parity (host_cores in meta tells the reader which this is).
    let cluster_sessions = if smoke { 6 } else { 32 };
    let total_workers = if smoke { 2 } else { host_cores.clamp(2, 8) };
    json.push_str("  \"cluster\": [\n");
    for (i, &shards) in shard_counts.iter().enumerate() {
        let f = run_cluster(
            shards,
            total_workers,
            cluster_sessions,
            playouts,
            &eval,
            &root,
        );
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"total_workers\": {total_workers}, \"concurrent\": {cluster_sessions}, \"requests_per_s\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}{}",
            f.requests_per_s,
            f.p50_ms,
            f.p99_ms,
            if i + 1 < shard_counts.len() { "," } else { "" }
        );
        eprintln!(
            "{shards:>2} shards ({total_workers} workers total): {:>7.2} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms",
            f.requests_per_s, f.p50_ms, f.p99_ms
        );
    }
    json.push_str("  ],\n");

    // --- overload shedding ------------------------------------------------
    let s = run_shedding(workers, shed_offered, playouts, &eval, &root);
    let _ = writeln!(
        json,
        "  \"shedding\": {{\"offered\": {}, \"admitted\": {}, \"shed\": {}, \"mean_retry_after_ms\": {:.2}, \"drain_ms\": {:.2}}},",
        s.offered, s.admitted, s.shed, s.mean_retry_after_ms, s.drain_ms
    );
    eprintln!(
        "shedding: offered {} → admitted {}, shed {} (mean retry_after {:.1} ms), drained in {:.1} ms",
        s.offered, s.admitted, s.shed, s.mean_retry_after_ms, s.drain_ms
    );

    // --- cross-session coalescing: concurrent vs serial -------------------
    // The acceptance figure: the same burst served by a multi-worker
    // service must fill larger mean inference batches than served one
    // session at a time (one worker ⇒ rounds of exactly one sample).
    let burst = if smoke { 4 } else { 16 };
    let serial = run_service(1, burst, playouts, &eval, &root);
    let multi = run_service(workers, burst, playouts, &eval, &root);
    let _ = writeln!(
        json,
        "  \"coalescing\": {{\"burst\": {burst}, \"serial_mean_eval_batch\": {:.3}, \"multi_mean_eval_batch\": {:.3}}},",
        serial.mean_eval_batch, multi.mean_eval_batch
    );
    eprintln!(
        "coalescing over {burst}-request burst: serial mean batch {:.2} → multi mean batch {:.2}",
        serial.mean_eval_batch, multi.mean_eval_batch
    );

    // --- measurement-driven batching: the tuner's operating point ---------
    // One calibrated service, one burst; dump the forward-time curve and
    // the chosen window/batch so the auto-tuner's decisions are part of
    // the machine-readable perf record.
    let service = SearchService::new(serve_cfg(workers));
    let tune_tickets: Vec<_> = (0..burst)
        .map(|_| service.submit(request(&root, &eval, playouts)))
        .collect();
    for t in tune_tickets {
        assert_eq!(t.wait().stats.playouts, playouts as u64);
    }
    let reports = service.autotune_reports();
    assert!(
        !reports.is_empty(),
        "calibrated service must expose at least one tuner report"
    );
    json.push_str("  \"autotune\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let curve = r
            .curve
            .iter()
            .map(|(b, ns)| format!("{{\"batch\": {b}, \"forward_ns\": {ns}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"calibrated\": {}, \"batch\": {}, \"window_us\": {}, \"positions_per_sec\": {:.1}, \"curve\": [{curve}]}}{}",
            r.calibrated,
            r.batch,
            r.window_us,
            r.positions_per_sec,
            if i + 1 < reports.len() { "," } else { "" }
        );
        eprintln!(
            "autotune: batch {} window {} µs ({:.0} positions/s, {} curve points, calibrated: {})",
            r.batch,
            r.window_us,
            r.positions_per_sec,
            r.curve.len(),
            r.calibrated
        );
    }
    json.push_str("  ],\n");
    drop(service);

    // --- evaluation cache: repeated-position workload, off vs on ----------
    let cache_rounds = if smoke { 2 } else { 6 };
    let c = run_cache_axis(workers, cache_rounds, playouts, &eval);
    let _ = writeln!(
        json,
        "  \"cache\": {{\"requests\": {}, \"distinct_positions\": {}, \"rounds\": {}, \"cache_off_requests_per_s\": {:.2}, \"cache_on_requests_per_s\": {:.2}, \"hit_rate\": {:.4}, \"speedup\": {:.3}}},",
        c.requests,
        c.distinct_positions,
        c.rounds,
        c.off_rps,
        c.on_rps,
        c.hit_rate,
        c.on_rps / c.off_rps
    );
    eprintln!(
        "cache over {} requests ({} positions × {} rounds): off {:.2} req/s → on {:.2} req/s ({:.2}×), hit rate {:.1}%",
        c.requests,
        c.distinct_positions,
        c.rounds,
        c.off_rps,
        c.on_rps,
        c.on_rps / c.off_rps,
        c.hit_rate * 100.0
    );

    // --- fault containment: degradation under injected faults -------------
    // One backend faulted at 0% / 5% / 20%, one healthy co-resident
    // backend on the same cluster; the healthy column must stay flat.
    let deg_per_class = if smoke { 3 } else { 8 };
    let deg_playouts = playouts.min(96);
    let fault_rates = [0.0, 0.05, 0.20];
    json.push_str("  \"degradation\": [\n");
    for (i, &fault_p) in fault_rates.iter().enumerate() {
        let d = run_degradation(workers, deg_per_class, deg_playouts, fault_p, &net, &root);
        let _ = writeln!(
            json,
            "    {{\"fault_p\": {fault_p}, \"sessions_per_backend\": {deg_per_class}, \"faulty_requests_per_s\": {:.2}, \"faulty_p99_ms\": {:.2}, \"faulty_done\": {}, \"faulty_failed\": {}, \"faulty_shed\": {}, \"healthy_requests_per_s\": {:.2}, \"healthy_p99_ms\": {:.2}, \"healthy_done\": {}, \"healthy_failed\": {}, \"healthy_shed\": {}}}{}",
            d.faulty.requests_per_s,
            d.faulty.p99_ms,
            d.faulty.done,
            d.faulty.failed,
            d.faulty.shed,
            d.healthy.requests_per_s,
            d.healthy.p99_ms,
            d.healthy.done,
            d.healthy.failed,
            d.healthy.shed,
            if i + 1 < fault_rates.len() { "," } else { "" }
        );
        eprintln!(
            "degradation @ {:>4.0}% faults: faulty {:>6.2} req/s p99 {:>8.2} ms ({} done / {} failed / {} shed) | healthy {:>6.2} req/s p99 {:>8.2} ms ({} done / {} failed)",
            fault_p * 100.0,
            d.faulty.requests_per_s,
            d.faulty.p99_ms,
            d.faulty.done,
            d.faulty.failed,
            d.faulty.shed,
            d.healthy.requests_per_s,
            d.healthy.p99_ms,
            d.healthy.done,
            d.healthy.failed,
        );
    }
    json.push_str("  ],\n");

    // --- network front end: loopback wire-protocol runs -------------------
    let (net_clients, net_rpc) = if smoke { (2, 2) } else { (8, 8) };
    run_network(
        &mut json,
        workers,
        net_clients,
        net_rpc,
        playouts,
        &eval,
        &root,
        smoke,
    );

    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
}
