//! §2.1 motivation — profile the serial DNN-MCTS training loop and verify
//! that the tree-based search stage dominates the total runtime (the
//! paper measured >85% on the Gomoku benchmark), plus the in-tree /
//! inference split inside the search stage and the design-time host
//! profile used by the configurator.
//!
//! Run: `cargo run --release -p bench --bin profile_serial`

use bench::{header, row, small_gomoku_setup};
use games::Game;
use mcts::{MctsConfig, Scheme};
use nn::{NetConfig, PolicyValueNet};
use perfmodel::profiler;
use train::{Pipeline, PipelineConfig};

fn main() {
    println!("Serial DNN-MCTS profile (paper §2.1 motivation)\n");

    // A mid-size net keeps inference realistically heavy relative to SGD.
    let (game, _) = small_gomoku_setup(5);
    let net = PolicyValueNet::new(
        NetConfig::for_board(4, game.size(), game.size(), game.action_space()),
        5,
    );
    let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
    cfg.episodes = 2;
    cfg.sgd_iters = 3;
    cfg.mcts = MctsConfig {
        playouts: 96,
        workers: 1,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(game.clone(), net.clone(), cfg);
    let report = pipeline.run();

    let total = (report.search_ns + report.train_ns) as f64;
    let search_frac = report.search_ns as f64 / total;
    println!(
        "tree-based search stage: {:.1}% of training runtime",
        100.0 * search_frac
    );
    println!(
        "DNN training stage:      {:.1}%",
        100.0 * report.train_ns as f64 / total
    );
    println!("(paper: tree-based search > 85% of the serial pipeline)\n");

    println!("Design-time host profile (§4.2 inputs):");
    let costs = profiler::profile_host(&net, game.action_space(), 6, 400);
    header(&["T_select ns", "T_backup ns", "T_ddr ns", "T_dnn_cpu ns"]);
    row(
        "host",
        &[
            costs.t_select_ns,
            costs.t_backup_ns,
            costs.t_shared_access_ns,
            costs.t_dnn_cpu_ns,
        ],
    );

    let in_tree = costs.t_select_ns + costs.t_backup_ns;
    println!(
        "\nper-iteration split: in-tree {:.1} µs vs inference {:.1} µs",
        in_tree / 1000.0,
        costs.t_dnn_cpu_ns / 1000.0
    );
    println!(
        "inference/in-tree ratio: {:.1}x (drives the local-vs-shared tradeoff)",
        costs.t_dnn_cpu_ns / in_tree
    );
}
