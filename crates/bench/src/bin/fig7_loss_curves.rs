//! Figure 7 — DNN loss over wall-clock time when training with the
//! optimal parallel configuration at different worker counts.
//!
//! The paper's observations to reproduce:
//! 1. the converged loss is *not* degraded by more parallel workers
//!    (despite obsolete-tree-information effects), and
//! 2. more workers reach a given loss *sooner* in wall-clock time
//!    (steeper convergence curves).
//!
//! This binary performs real training runs (small Gomoku, tiny net — this
//! host has one core, so worker counts stay small) and writes one CSV per
//! configuration plus a combined summary.
//!
//! Run: `cargo run --release -p bench --bin fig7_loss_curves`

use bench::{header, small_gomoku_setup, write_results};
use mcts::{MctsConfig, Scheme};
use train::{Pipeline, PipelineConfig};

fn main() {
    println!("Figure 7: DNN loss over time, real training runs");
    println!("(small Gomoku 7x7/4-in-a-row, tiny net; N scaled to this host)\n");

    let configs: [(usize, Scheme); 3] = [
        (1, Scheme::Serial),
        (2, Scheme::LocalTree),
        (4, Scheme::SharedTree),
    ];

    header(&[
        "N",
        "scheme",
        "episodes",
        "samples",
        "final loss",
        "t_total(s)",
    ]);
    let mut summary = String::from("n,scheme,samples,final_loss,updates\n");
    for (n, scheme) in configs {
        let (game, net) = small_gomoku_setup(123);
        let cfg = PipelineConfig {
            episodes: 8,
            sgd_iters: 15,
            batch_size: 32,
            lr: 5e-3,
            momentum: 0.9,
            weight_decay: 1e-4,
            replay_capacity: 4096,
            temperature_moves: 6,
            max_moves: 49,
            scheme,
            mcts: MctsConfig {
                playouts: 48,
                workers: n,
                ..Default::default()
            },
            seed: 1000 + n as u64,
            lr_schedule: None,
            overlapped_training: false,
            augment_symmetries: false,
        };
        let mut pipeline = Pipeline::new(game, (*net).clone(), cfg);
        let report = pipeline.run();

        let csv_name = format!("fig7_loss_n{n}.csv");
        let mut csv = String::from("t_sec,value_loss,policy_loss,total_loss\n");
        for p in &report.loss_curve {
            csv.push_str(&format!(
                "{:.4},{:.6},{:.6},{:.6}\n",
                p.t_sec, p.value, p.policy, p.total
            ));
        }
        let _ = write_results(&csv_name, &csv);

        let final_loss = report.final_loss.unwrap_or(f32::NAN);
        let t_total = report.loss_curve.last().map(|p| p.t_sec).unwrap_or(0.0);
        summary.push_str(&format!(
            "{n},{},{},{final_loss:.4},{}\n",
            scheme.name(),
            report.samples,
            report.loss_curve.len()
        ));
        println!(
            "{:>14} {:>14} {:>14} {:>14} {:>14.4} {:>14.2}",
            n,
            scheme.name(),
            report.episodes,
            report.samples,
            final_loss,
            t_total
        );
    }

    match write_results("fig7_summary.csv", &summary) {
        Ok(p) => println!("\nwrote per-run CSVs and {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    println!("check: final losses should be comparable across N (parallelism does");
    println!("not degrade convergence), matching the paper's Figure 7.");
}
