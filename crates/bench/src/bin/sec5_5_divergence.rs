//! §5.5 claim — "the training samples generated in the parallel version
//! are not the same as the 1-worker serial baseline; the more parallel
//! workers are used, the higher the effect is from such
//! obsolete-tree-information."
//!
//! We make that observation quantitative: run the shared-tree scheme at
//! increasing worker counts on a fixed position with a fixed network and
//! measure the divergence of its root visit distribution from the serial
//! baseline's. The paper's other half of the claim — that quality is not
//! *hurt* — shows up as a high same-best-move agreement rate despite the
//! growing divergence.
//!
//! Run: `cargo run --release -p bench --bin sec5_5_divergence`

use bench::{header, small_gomoku_setup, write_results};
use games::Game;
use mcts::analysis::policy_divergence;
use mcts::{MctsConfig, NnEvaluator, Scheme};
use std::sync::Arc;

fn main() {
    println!("§5.5: policy divergence of parallel search vs the serial baseline");
    println!("(shared-tree scheme, fixed Gomoku position, fixed network)\n");

    let (mut game, net) = small_gomoku_setup(19);
    // A non-empty midgame position so statistics are informative.
    for (r, c) in [(3usize, 3usize), (3, 4), (4, 4)] {
        let a = game.rc_to_action(r, c);
        game.apply(a);
    }
    let playouts = 400;

    // Serial baseline distribution.
    let cfg1 = MctsConfig {
        playouts,
        workers: 1,
        ..Default::default()
    };
    let mut serial = Scheme::Serial
        .build::<games::gomoku::Gomoku>(cfg1, Arc::new(NnEvaluator::new(Arc::clone(&net))));
    let baseline = serial.search(&game);

    header(&["N workers", "KL (nats)", "TV dist", "same best"]);
    let mut csv = String::from("n,kl,tv,same_best,trials_agreeing\n");
    for n in [1usize, 2, 4, 8] {
        // Average divergence over several searches (virtual-loss
        // scheduling is timing-dependent, so parallel runs vary).
        let trials = 5;
        let (mut kl, mut tv, mut agree) = (0.0, 0.0, 0u32);
        for _ in 0..trials {
            let cfg = MctsConfig {
                playouts,
                workers: n,
                ..Default::default()
            };
            let mut search = Scheme::SharedTree
                .build::<games::gomoku::Gomoku>(cfg, Arc::new(NnEvaluator::new(Arc::clone(&net))));
            let r = search.search(&game);
            let d = policy_divergence(&r.probs, &baseline.probs);
            kl += d.kl;
            tv += d.total_variation;
            agree += d.same_best as u32;
        }
        let (kl, tv) = (kl / trials as f64, tv / trials as f64);
        println!(
            "{:>14} {:>14.4} {:>14.4} {:>11}/{}",
            n, kl, tv, agree, trials
        );
        csv.push_str(&format!("{n},{kl:.6},{tv:.6},{agree},{trials}\n"));
    }

    println!(
        "\nexpected: divergence grows with N (stale statistics reshape the\n\
         tree) while the best move usually survives — §5.5's two claims."
    );
    match write_results("sec5_5_divergence.csv", &csv) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
