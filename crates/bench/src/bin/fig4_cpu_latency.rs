//! Figure 4 — Amortized per-worker-iteration latency on the CPU-only
//! platform: shared-tree vs local-tree vs the adaptive choice, sweeping
//! the number of workers `N`.
//!
//! The paper's observation: the optimal scheme differs across `N` (local
//! wins while inference dominates; shared wins once the serial master
//! becomes the bottleneck), and the adaptive method always picks the
//! winner — up to 1.5× over a fixed scheme.
//!
//! Two sections are printed:
//! 1. a discrete-event simulation with paper-like parameters (reproduces
//!    the figure shape at N up to 64), and
//! 2. real measured runs of the actual implementations at host-feasible
//!    scale (this container has one core, so measured parallel speedups
//!    are limited; the section validates code paths and relative trends).
//!
//! Run: `cargo run --release -p bench --bin fig4_cpu_latency`

use bench::{header, row, small_gomoku_setup, write_results};
use mcts::{MctsConfig, NnEvaluator, Scheme};
use perfmodel::sim::{simulate_local_cpu, simulate_shared_cpu, SimParams};
use std::sync::Arc;

fn main() {
    println!("Figure 4: iteration latency (µs), CPU-only");
    println!("(simulation, paper-like parameters; 1600 playouts/move)\n");

    let ns = [1usize, 2, 4, 8, 16, 32, 64];
    let mut csv = String::from("n,shared_us,local_us,adaptive_us,scheme,speedup\n");
    header(&["N", "shared", "local", "adaptive", "speedup"]);
    let mut max_speedup: f64 = 1.0;
    for &n in &ns {
        let p = SimParams::paper_like(n);
        let shared = simulate_shared_cpu(&p).iteration_ns / 1000.0;
        let local = simulate_local_cpu(&p).iteration_ns / 1000.0;
        let adaptive = shared.min(local);
        let scheme = if local <= shared { "local" } else { "shared" };
        // Speedup of adaptive over the losing fixed scheme.
        let speedup = shared.max(local) / adaptive;
        max_speedup = max_speedup.max(speedup);
        csv.push_str(&format!(
            "{n},{shared:.3},{local:.3},{adaptive:.3},{scheme},{speedup:.3}\n"
        ));
        row(&format!("{n}"), &[shared, local, adaptive, speedup]);
    }
    println!("\nmax adaptive speedup over a fixed scheme: {max_speedup:.2}x (paper: up to 1.5x)\n");

    println!("Measured on this host (small Gomoku 7x7, tiny net, 128 playouts/move):");
    let (game, net) = small_gomoku_setup(42);
    header(&["N", "serial", "shared", "local"]);
    let mut mcsv = String::from("n,serial_us,shared_us,local_us\n");
    for n in [1usize, 2, 4] {
        let cfg = MctsConfig {
            playouts: 128,
            workers: n,
            ..Default::default()
        };
        let mut vals = Vec::new();
        for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
            let eval = Arc::new(NnEvaluator::new(Arc::clone(&net)));
            let mut search = scheme.build::<games::gomoku::Gomoku>(cfg, eval);
            let _ = search.search(&game); // warm-up
            let r = search.search(&game);
            vals.push(r.stats.amortized_iteration_ns() / 1000.0);
        }
        mcsv.push_str(&format!(
            "{n},{:.3},{:.3},{:.3}\n",
            vals[0], vals[1], vals[2]
        ));
        row(&format!("{n}"), &vals);
    }

    let _ = write_results("fig4_sim.csv", &csv);
    match write_results("fig4_measured.csv", &mcsv) {
        Ok(p) => println!("\nwrote results/fig4_sim.csv and {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
