//! Figure 5 — Amortized per-worker-iteration latency on the CPU-GPU
//! platform with batched inference.
//!
//! Series:
//! * shared tree with full-batch (`B = N`) accelerator inference (Eq. 4);
//! * local tree with full-batch inference (the naive setting whose
//!   latency *rises* past N = 16 in the paper);
//! * local tree with the Algorithm-4-tuned sub-batch size;
//! * the adaptive choice.
//!
//! The paper's result: adaptive picks shared at N = 16 and tuned-local at
//! N ∈ {32, 64}, for up to 3.07× speedup over a fixed scheme.
//!
//! Run: `cargo run --release -p bench --bin fig5_gpu_latency`

use bench::{header, row, write_results};
use perfmodel::sim::{simulate_local_accel, simulate_shared_accel, SimParams};
use perfmodel::vsearch::find_min_vsequence;

fn main() {
    println!("Figure 5: iteration latency (µs), CPU-GPU, batched inference");
    println!("(discrete-event simulation, paper-like parameters)\n");

    let ns = [1usize, 2, 4, 8, 16, 32, 64];
    let mut csv = String::from(
        "n,shared_us,local_fullbatch_us,local_tuned_us,tuned_b,adaptive_us,scheme,speedup\n",
    );
    header(&[
        "N",
        "shared",
        "local B=N",
        "local B*",
        "B*",
        "adaptive",
        "speedup",
    ]);
    let mut max_speedup: f64 = 1.0;
    for &n in &ns {
        let p = SimParams::paper_like(n);
        let shared = simulate_shared_accel(&p).iteration_ns / 1000.0;
        let local_full = simulate_local_accel(&p, n).iteration_ns / 1000.0;
        let (bstar, _) = find_min_vsequence(1, n, |b| simulate_local_accel(&p, b).iteration_ns);
        let local_tuned = simulate_local_accel(&p, bstar).iteration_ns / 1000.0;
        let adaptive = shared.min(local_tuned);
        let scheme = if local_tuned <= shared {
            "local"
        } else {
            "shared"
        };
        // Adaptive speedup over the worse *fixed single-scheme* baseline
        // (the paper compares against local-alone and shared-alone).
        let worst_fixed = shared.max(local_full);
        let speedup = worst_fixed / adaptive;
        max_speedup = max_speedup.max(speedup);
        csv.push_str(&format!(
            "{n},{shared:.3},{local_full:.3},{local_tuned:.3},{bstar},{adaptive:.3},{scheme},{speedup:.3}\n"
        ));
        row(
            &format!("{n}"),
            &[
                shared,
                local_full,
                local_tuned,
                bstar as f64,
                adaptive,
                speedup,
            ],
        );
    }
    println!("\nmax adaptive speedup over a fixed scheme: {max_speedup:.2}x (paper: up to 3.07x)");
    println!("paper behaviour to check: local(B=N) deteriorates as N grows past 16;");
    println!("tuned local recovers and beats shared at large N.");

    match write_results("fig5_sim.csv", &csv) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
