//! Emit `BENCH_search.json`: the machine-readable search-throughput record
//! (playouts/second per scheme), the search-side counterpart of
//! `bench_inference`.
//!
//! Measures, on this machine, for every [`Scheme`] plus the re-rooting
//! `serial+reuse` searcher:
//! * playouts/s on a mid-game Gomoku position with the uniform evaluator
//!   (isolates in-tree cost: selection, expansion, backup, allocation);
//! * playouts/s with a tiny real network (adds a realistic eval share);
//! * for `serial+reuse`, a full search→advance→search cycle so re-rooting
//!   cost is inside the measured window.
//!
//! Usage: `bench_search [--smoke] [out_path]` (default
//! `BENCH_search.json`). `--smoke` (or env `BENCH_SMOKE=1`) shrinks the
//! playout budgets and repetitions so CI can prove the binary runs
//! without paying measurement time. Timings are never gated on.

use games::gomoku::Gomoku;
use games::Game;
use mcts::{BatchEvaluator, NnEvaluator, Scheme, SearchBuilder, SearchScheme, UniformEvaluator};
use nn::{NetConfig, PolicyValueNet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Median of `reps` timed runs of `f` (seconds), after `warm` warm-ups.
fn time_median(warm: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warm {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A 9×9 Gomoku position a few plies in (denser trees than the empty
/// board, and the same state every run).
fn midgame() -> Gomoku {
    let mut g = Gomoku::new(9, 5);
    for a in [40u16, 41, 31, 49, 39] {
        g.apply(a);
    }
    g
}

fn build(
    scheme: Scheme,
    playouts: usize,
    workers: usize,
    eval: Arc<dyn BatchEvaluator>,
) -> Box<dyn SearchScheme<Gomoku>> {
    SearchBuilder::new(scheme)
        .playouts(playouts)
        .workers(workers)
        .evaluator(eval)
        .build::<Gomoku>()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_search.json".to_string());
    let (warm, reps, playouts) = if smoke { (0, 1, 64) } else { (1, 7, 1600) };
    let workers = 4usize;

    let root = midgame();
    let uniform: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::for_game(&root));
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    let nn: Arc<dyn BatchEvaluator> = Arc::new(NnEvaluator::new(net));

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"playouts\": {playouts}, \"workers\": {workers}, \"board\": \"gomoku9\", \"smoke\": {smoke}}},"
    );

    // --- per-scheme playout throughput -----------------------------------
    json.push_str("  \"schemes\": [\n");
    let evals: [(&str, &Arc<dyn BatchEvaluator>); 2] = [("uniform", &uniform), ("nn", &nn)];
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        let mut fields = String::new();
        for (ei, (eval_name, eval)) in evals.iter().enumerate() {
            let mut s = build(scheme, playouts, workers, Arc::clone(eval));
            let mut done = 0u64;
            let t = time_median(warm, reps, || {
                let r = s.search(&root);
                done = r.stats.playouts;
            });
            let _ = write!(
                fields,
                "{}\"{eval_name}_playouts_per_s\": {:.1}",
                if ei == 0 { "" } else { ", " },
                done as f64 / t
            );
            eprintln!(
                "{scheme:>13} / {eval_name:7}: {:>9.0} playouts/s",
                done as f64 / t
            );
        }
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{scheme}\", {fields}}}{}",
            if si + 1 < Scheme::ALL.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // --- tree reuse: search → advance → search cycles ---------------------
    // The whole per-move cycle (including re-rooting on `advance`) sits
    // inside the timed window, so re-root cost is part of the figure.
    let mut reuse = SearchBuilder::new(Scheme::Serial)
        .playouts(playouts)
        .evaluator(Arc::clone(&uniform))
        .reuse(true)
        .build_reusable();
    let moves = 4usize;
    let mut done = 0u64;
    let t = time_median(warm, reps, || {
        reuse.reset();
        let mut g = root.clone();
        done = 0;
        for _ in 0..moves {
            let r = reuse.search(&g);
            done += r.stats.playouts;
            let a = r.best_action();
            reuse.advance(a);
            g.apply(a);
        }
    });
    let _ = writeln!(
        json,
        "  \"reuse_cycle\": {{\"scheme\": \"serial+reuse\", \"moves\": {moves}, \"uniform_playouts_per_s\": {:.1}}}",
        done as f64 / t
    );
    eprintln!(
        "{:>13} / uniform: {:>9.0} playouts/s ({moves}-move cycle)",
        "serial+reuse",
        done as f64 / t
    );

    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
}
