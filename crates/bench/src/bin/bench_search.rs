//! Emit `BENCH_search.json`: the machine-readable search-throughput record
//! (playouts/second per scheme), the search-side counterpart of
//! `bench_inference`.
//!
//! Measures, on this machine, for every [`Scheme`] plus the re-rooting
//! `serial+reuse` searcher:
//! * playouts/s on a mid-game Gomoku position with the uniform evaluator
//!   (isolates in-tree cost: selection, expansion, backup, allocation);
//! * playouts/s with a tiny real network (adds a realistic eval share);
//! * for `serial+reuse`, a full search→advance→search cycle so re-rooting
//!   cost is inside the measured window;
//! * the bounded-memory soak: a streaming analysis session under a fixed
//!   arena byte budget with LRU recycling, reporting playouts/s over the
//!   first vs last decile of cycles (long-run stability: the last decile
//!   must sit within 10% of the first — `check_search_schema` gates the
//!   ratio on full runs, never on smoke).
//!
//! Usage: `bench_search [--smoke] [out_path]` (default
//! `BENCH_search.json`). `--smoke` (or env `BENCH_SMOKE=1`) shrinks the
//! playout budgets and repetitions so CI can prove the binary runs
//! without paying measurement time. Timings are never gated on.

use games::gomoku::Gomoku;
use games::Game;
use mcts::{
    BatchEvaluator, EvictionPolicy, MctsConfig, NnEvaluator, Scheme, SearchBuilder, SearchScheme,
    UniformEvaluator,
};
use nn::{NetConfig, PolicyValueNet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Median of `reps` timed runs of `f` (seconds), after `warm` warm-ups.
fn time_median(warm: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warm {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A 9×9 Gomoku position a few plies in (denser trees than the empty
/// board, and the same state every run).
fn midgame() -> Gomoku {
    let mut g = Gomoku::new(9, 5);
    for a in [40u16, 41, 31, 49, 39] {
        g.apply(a);
    }
    g
}

fn build(
    scheme: Scheme,
    playouts: usize,
    workers: usize,
    eval: Arc<dyn BatchEvaluator>,
) -> Box<dyn SearchScheme<Gomoku>> {
    SearchBuilder::new(scheme)
        .playouts(playouts)
        .workers(workers)
        .evaluator(eval)
        .build::<Gomoku>()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_search.json".to_string());
    let (warm, reps, playouts) = if smoke { (0, 1, 64) } else { (1, 7, 1600) };
    let workers = 4usize;

    let root = midgame();
    let uniform: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::for_game(&root));
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    let nn: Arc<dyn BatchEvaluator> = Arc::new(NnEvaluator::new(net));

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"playouts\": {playouts}, \"workers\": {workers}, \"board\": \"gomoku9\", \"smoke\": {smoke}}},"
    );

    // --- per-scheme playout throughput -----------------------------------
    json.push_str("  \"schemes\": [\n");
    let evals: [(&str, &Arc<dyn BatchEvaluator>); 2] = [("uniform", &uniform), ("nn", &nn)];
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        let mut fields = String::new();
        for (ei, (eval_name, eval)) in evals.iter().enumerate() {
            let mut s = build(scheme, playouts, workers, Arc::clone(eval));
            let mut done = 0u64;
            let t = time_median(warm, reps, || {
                let r = s.search(&root);
                done = r.stats.playouts;
            });
            let _ = write!(
                fields,
                "{}\"{eval_name}_playouts_per_s\": {:.1}",
                if ei == 0 { "" } else { ", " },
                done as f64 / t
            );
            eprintln!(
                "{scheme:>13} / {eval_name:7}: {:>9.0} playouts/s",
                done as f64 / t
            );
        }
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{scheme}\", {fields}}}{}",
            if si + 1 < Scheme::ALL.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // --- tree reuse: search → advance → search cycles ---------------------
    // The whole per-move cycle (including re-rooting on `advance`) sits
    // inside the timed window, so re-root cost is part of the figure.
    let mut reuse = SearchBuilder::new(Scheme::Serial)
        .playouts(playouts)
        .evaluator(Arc::clone(&uniform))
        .reuse(true)
        .build_reusable();
    let moves = 4usize;
    let mut done = 0u64;
    let t = time_median(warm, reps, || {
        reuse.reset();
        let mut g = root.clone();
        done = 0;
        for _ in 0..moves {
            let r = reuse.search(&g);
            done += r.stats.playouts;
            let a = r.best_action();
            reuse.advance(a);
            g.apply(a);
        }
    });
    let _ = writeln!(
        json,
        "  \"reuse_cycle\": {{\"scheme\": \"serial+reuse\", \"moves\": {moves}, \"uniform_playouts_per_s\": {:.1}}},",
        done as f64 / t
    );
    eprintln!(
        "{:>13} / uniform: {:>9.0} playouts/s ({moves}-move cycle)",
        "serial+reuse",
        done as f64 / t
    );

    // --- bounded-memory soak: fixed-budget streaming session --------------
    // A streaming analysis session (search → advance, new game at
    // terminal) under a fixed arena byte budget: the LRU policy recycles
    // cold subtrees the whole run, so the figure is the long-run rate
    // stability of the eviction path, measured as playouts/s over the
    // first vs last decile of cycles. The budget is sized so the session
    // lives in the recycling regime (a 16 MiB arena never fills on this
    // board — an eviction benchmark that never evicts measures nothing).
    let (soak_cycles, soak_playouts, soak_budget) = if smoke {
        (200usize, 64usize, 256usize << 10)
    } else {
        (10_000usize, 256usize, 512usize << 10)
    };
    let mut soak = SearchBuilder::new(Scheme::Serial)
        .config(MctsConfig {
            playouts: soak_playouts,
            arena_budget_bytes: Some(soak_budget),
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        })
        .evaluator(Arc::clone(&uniform))
        .reuse(true)
        .build_reusable();
    let mut g = root.clone();
    let mut result = mcts::SearchResult::default();
    let decile = soak_cycles / 10;
    let mut rates = [0f64; 10];
    for rate in &mut rates {
        let mut playouts = 0u64;
        let t0 = Instant::now();
        for _ in 0..decile {
            if g.status() != games::Status::Ongoing {
                g = root.clone();
                soak.reset();
            }
            soak.search_into(&g, &mut result);
            playouts += result.stats.playouts;
            let a = result.best_action();
            soak.advance(a);
            g.apply(a);
        }
        *rate = playouts as f64 / t0.elapsed().as_secs_f64();
    }
    let evicted = soak.tree_stats().map_or(0, |s| s.evicted);
    let ratio = rates[9] / rates[0];
    let _ = writeln!(
        json,
        "  \"soak\": {{\"scheme\": \"serial+reuse\", \"budget_bytes\": {soak_budget}, \"cycles\": {soak_cycles}, \"playouts_per_cycle\": {soak_playouts}, \"first_decile_playouts_per_s\": {:.1}, \"last_decile_playouts_per_s\": {:.1}, \"ratio\": {ratio:.4}, \"evicted\": {evicted}}}",
        rates[0], rates[9]
    );
    eprintln!(
        "{:>13} / uniform: {:>9.0} playouts/s soak decile 1, {:>9.0} decile 10 (ratio {ratio:.3}, {evicted} evicted, {} KiB budget)",
        "lru-soak",
        rates[0],
        rates[9],
        soak_budget / 1024
    );

    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
}
