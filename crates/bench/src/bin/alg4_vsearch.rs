//! §4.2 / Algorithm 4 — cost and correctness of the V-sequence batch-size
//! search versus the naive exhaustive sweep.
//!
//! The paper's claim: the design-space exploration over `B ∈ [1, N]`
//! drops from O(N) test runs to O(log N). This binary verifies, over the
//! analytic model oracle and the discrete-event simulator oracle, that
//! (a) Algorithm 4's result matches the exhaustive optimum (within model
//! plateaus) and (b) the probe count scales logarithmically.
//!
//! Run: `cargo run --release -p bench --bin alg4_vsearch`

use accel::LatencyModel;
use bench::{header, paper_costs, row, write_results};
use perfmodel::model::{local_gpu_iteration_ns, PerfParams};
use perfmodel::sim::{simulate_local_accel, SimParams};
use perfmodel::vsearch::{find_min_exhaustive, find_min_vsequence_counted};

fn main() {
    println!("Algorithm 4: O(log N) batch-size search vs exhaustive sweep\n");

    println!("Oracle A: closed-form model (Eq. 6)");
    header(&[
        "N",
        "B*(alg4)",
        "probes",
        "B*(naive)",
        "probes",
        "lat diff %",
    ]);
    let costs = paper_costs();
    let mut csv = String::from("oracle,n,b_alg4,probes_alg4,b_naive,probes_naive,diff_pct\n");
    for n in [8usize, 16, 32, 64, 128, 256] {
        let p = PerfParams {
            workers: n,
            t_select_ns: costs.t_select_ns,
            t_backup_ns: costs.t_backup_ns,
            t_shared_access_ns: costs.t_shared_access_ns,
            t_dnn_cpu_ns: costs.t_dnn_cpu_ns,
            accel: Some(LatencyModel::a6000_like(4 * 15 * 15 * 4)),
        };
        let mut oracle = |b: usize| local_gpu_iteration_ns(&p, b);
        let fast = find_min_vsequence_counted(1, n, &mut oracle);
        let naive = find_min_exhaustive(1, n, &mut oracle);
        let diff = 100.0 * (oracle(fast.argmin) - oracle(naive.argmin)) / oracle(naive.argmin);
        csv.push_str(&format!(
            "model,{n},{},{},{},{},{diff:.4}\n",
            fast.argmin, fast.evals, naive.argmin, naive.evals
        ));
        row(
            &format!("{n}"),
            &[
                fast.argmin as f64,
                fast.evals as f64,
                naive.argmin as f64,
                naive.evals as f64,
                diff,
            ],
        );
        assert!(diff.abs() < 2.0, "Alg.4 must match exhaustive within 2%");
    }

    println!("\nOracle B: discrete-event simulator (full timeline, incl. fill effects)");
    header(&[
        "N",
        "B*(alg4)",
        "probes",
        "B*(naive)",
        "probes",
        "lat diff %",
    ]);
    for n in [16usize, 32, 64] {
        let p = SimParams::paper_like(n);
        let mut oracle = |b: usize| simulate_local_accel(&p, b).iteration_ns;
        let fast = find_min_vsequence_counted(1, n, &mut oracle);
        let naive = find_min_exhaustive(1, n, &mut oracle);
        let diff = 100.0 * (oracle(fast.argmin) - oracle(naive.argmin)) / oracle(naive.argmin);
        csv.push_str(&format!(
            "sim,{n},{},{},{},{},{diff:.4}\n",
            fast.argmin, fast.evals, naive.argmin, naive.evals
        ));
        row(
            &format!("{n}"),
            &[
                fast.argmin as f64,
                fast.evals as f64,
                naive.argmin as f64,
                naive.evals as f64,
                diff,
            ],
        );
        // The DES timeline is only approximately a V-sequence (batching
        // remainders create small ripples); allow a modest tolerance.
        assert!(
            diff.abs() < 10.0,
            "Alg.4 drifted {diff:.2}% from exhaustive"
        );
    }

    match write_results("alg4_vsearch.csv", &csv) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
