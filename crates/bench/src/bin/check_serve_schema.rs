//! Validate the `BENCH_serve.json` schema so the serving perf
//! trajectory stays machine-readable across PRs.
//!
//! Usage: `check_serve_schema <path>` (default `BENCH_serve.json`).
//! Exits non-zero with a message naming the first violation. JSON
//! parsing comes from the shared offline parser in [`bench::json`]
//! (also behind `check_search_schema`).
//!
//! Checked schema (v6):
//! * top level: objects `meta`, `shedding`, `coalescing`, `cache`,
//!   `network`; arrays `sessions`, `cluster`, `autotune`,
//!   `degradation` (non-empty);
//! * `meta.schema_version == 6`, `meta.workers`/`host_cores`/
//!   `eval_batch_hint`/`playouts_per_request` numeric;
//! * every `sessions[i]`: numeric `concurrent`, `requests_per_s`,
//!   `p50_ms`, `p99_ms`, `mean_eval_batch`, with `p99_ms >= p50_ms`
//!   (interpolated percentiles are monotone by construction — equality
//!   collapsing back to the old nearest-rank artifact is allowed only
//!   when they are truly equal);
//! * every `cluster[i]`: numeric `shards`, `total_workers`,
//!   `concurrent`, `requests_per_s`, `p50_ms`, `p99_ms`, again with
//!   `p99_ms >= p50_ms`;
//! * every `autotune[i]`: numeric `batch`, `window_us`,
//!   `positions_per_sec`; non-empty `curve` array of objects with
//!   numeric `batch`, `forward_ns`;
//! * `shedding`: numeric `offered`, `admitted`, `shed`,
//!   `mean_retry_after_ms`, `drain_ms`, with
//!   `admitted + shed == offered`;
//! * `coalescing`: numeric `burst`, `serial_mean_eval_batch`,
//!   `multi_mean_eval_batch`;
//! * `cache`: numeric `requests`, `distinct_positions`, `rounds`,
//!   `cache_off_requests_per_s`, `cache_on_requests_per_s`,
//!   `hit_rate` (in [0, 1]), `speedup`;
//! * every `degradation[i]`: numeric `fault_p` (in [0, 1]),
//!   `sessions_per_backend`, and the per-backend columns
//!   `faulty_requests_per_s`, `faulty_p99_ms`, `faulty_done`,
//!   `faulty_failed`, `faulty_shed`, `healthy_requests_per_s`,
//!   `healthy_p99_ms`, `healthy_done`, `healthy_failed`,
//!   `healthy_shed`, with each backend's
//!   `done + failed + shed == sessions_per_backend`;
//! * `network`: numeric `inprocess_requests_per_s`; `closed_loop`
//!   object and non-empty `sweep` array of loadgen points, each with
//!   numeric `clients`, `offered`, `admitted`, `shed`, `failed`,
//!   `admitted_per_s`, `p50_ms`, `p99_ms`, `mean_retry_after_ms`,
//!   `zero_hint_sheds`, satisfying
//!   `admitted + shed + failed == offered` and `p99_ms >= p50_ms`
//!   (sweep points additionally carry numeric `offered_per_s`).

use bench::json::{field, num, obj, parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn check_each(
    root: &BTreeMap<String, Json>,
    name: &str,
    required: &[&str],
) -> Result<usize, String> {
    let arr = match field(root, "$", name)? {
        Json::Arr(a) if !a.is_empty() => a,
        Json::Arr(_) => return Err(format!("$.{name}: must be non-empty")),
        _ => return Err(format!("$.{name}: expected array")),
    };
    for (i, item) in arr.iter().enumerate() {
        let path = format!("$.{name}[{i}]");
        let m = obj(item, &path)?;
        for key in required {
            num(m, &path, key)?;
        }
    }
    Ok(arr.len())
}

fn check(doc: &Json) -> Result<String, String> {
    let root = obj(doc, "$")?;

    let meta = obj(field(root, "$", "meta")?, "$.meta")?;
    let version = num(meta, "$.meta", "schema_version")?;
    if version != 6.0 {
        return Err(format!("$.meta.schema_version: expected 6, got {version}"));
    }
    for key in [
        "workers",
        "host_cores",
        "eval_batch_hint",
        "playouts_per_request",
    ] {
        num(meta, "$.meta", key)?;
    }

    let sessions = check_each(
        root,
        "sessions",
        &[
            "concurrent",
            "requests_per_s",
            "p50_ms",
            "p99_ms",
            "mean_eval_batch",
        ],
    )?;
    let cluster = check_each(
        root,
        "cluster",
        &[
            "shards",
            "total_workers",
            "concurrent",
            "requests_per_s",
            "p50_ms",
            "p99_ms",
        ],
    )?;
    // Percentile fidelity: interpolated percentiles are monotone in p,
    // so any row where p99 < p50 means the latency vector is bogus.
    for name in ["sessions", "cluster"] {
        if let Json::Arr(rows) = field(root, "$", name)? {
            for (i, row) in rows.iter().enumerate() {
                let path = format!("$.{name}[{i}]");
                let m = obj(row, &path)?;
                let p50 = num(m, &path, "p50_ms")?;
                let p99 = num(m, &path, "p99_ms")?;
                if p99 < p50 {
                    return Err(format!("{path}: p99_ms ({p99}) < p50_ms ({p50})"));
                }
            }
        }
    }

    let autotune = check_each(
        root,
        "autotune",
        &["batch", "window_us", "positions_per_sec"],
    )?;
    if let Json::Arr(rows) = field(root, "$", "autotune")? {
        for (i, row) in rows.iter().enumerate() {
            let path = format!("$.autotune[{i}]");
            let m = obj(row, &path)?;
            match field(m, &path, "calibrated")? {
                Json::Bool(_) => {}
                _ => return Err(format!("{path}.calibrated: expected bool")),
            }
            let curve = match field(m, &path, "curve")? {
                Json::Arr(c) if !c.is_empty() => c,
                Json::Arr(_) => return Err(format!("{path}.curve: must be non-empty")),
                _ => return Err(format!("{path}.curve: expected array")),
            };
            for (j, point) in curve.iter().enumerate() {
                let ppath = format!("{path}.curve[{j}]");
                let pm = obj(point, &ppath)?;
                num(pm, &ppath, "batch")?;
                num(pm, &ppath, "forward_ns")?;
            }
        }
    }

    let shed = obj(field(root, "$", "shedding")?, "$.shedding")?;
    let offered = num(shed, "$.shedding", "offered")?;
    let admitted = num(shed, "$.shedding", "admitted")?;
    let shed_n = num(shed, "$.shedding", "shed")?;
    num(shed, "$.shedding", "mean_retry_after_ms")?;
    num(shed, "$.shedding", "drain_ms")?;
    if admitted + shed_n != offered {
        return Err(format!(
            "$.shedding: admitted ({admitted}) + shed ({shed_n}) != offered ({offered})"
        ));
    }

    let coal = obj(field(root, "$", "coalescing")?, "$.coalescing")?;
    for key in ["burst", "serial_mean_eval_batch", "multi_mean_eval_batch"] {
        num(coal, "$.coalescing", key)?;
    }

    let cache = obj(field(root, "$", "cache")?, "$.cache")?;
    for key in [
        "requests",
        "distinct_positions",
        "rounds",
        "cache_off_requests_per_s",
        "cache_on_requests_per_s",
        "speedup",
    ] {
        num(cache, "$.cache", key)?;
    }
    let hit_rate = num(cache, "$.cache", "hit_rate")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("$.cache.hit_rate: {hit_rate} outside [0, 1]"));
    }

    let degradation = check_each(
        root,
        "degradation",
        &[
            "fault_p",
            "sessions_per_backend",
            "faulty_requests_per_s",
            "faulty_p99_ms",
            "faulty_done",
            "faulty_failed",
            "faulty_shed",
            "healthy_requests_per_s",
            "healthy_p99_ms",
            "healthy_done",
            "healthy_failed",
            "healthy_shed",
        ],
    )?;
    if let Json::Arr(points) = field(root, "$", "degradation")? {
        for (i, point) in points.iter().enumerate() {
            let path = format!("$.degradation[{i}]");
            let m = obj(point, &path)?;
            let fault_p = num(m, &path, "fault_p")?;
            if !(0.0..=1.0).contains(&fault_p) {
                return Err(format!("{path}.fault_p: {fault_p} outside [0, 1]"));
            }
            let per_backend = num(m, &path, "sessions_per_backend")?;
            for backend in ["faulty", "healthy"] {
                let total = num(m, &path, &format!("{backend}_done"))?
                    + num(m, &path, &format!("{backend}_failed"))?
                    + num(m, &path, &format!("{backend}_shed"))?;
                if total != per_backend {
                    return Err(format!(
                        "{path}: {backend} done + failed + shed ({total}) != sessions_per_backend ({per_backend})"
                    ));
                }
            }
        }
    }

    let network = obj(field(root, "$", "network")?, "$.network")?;
    num(network, "$.network", "inprocess_requests_per_s")?;
    let closed = obj(
        field(network, "$.network", "closed_loop")?,
        "$.network.closed_loop",
    )?;
    check_loadgen_point(closed, "$.network.closed_loop")?;
    let sweep = match field(network, "$.network", "sweep")? {
        Json::Arr(a) if !a.is_empty() => a,
        Json::Arr(_) => return Err("$.network.sweep: must be non-empty".into()),
        _ => return Err("$.network.sweep: expected array".into()),
    };
    for (i, point) in sweep.iter().enumerate() {
        let path = format!("$.network.sweep[{i}]");
        let m = obj(point, &path)?;
        num(m, &path, "offered_per_s")?;
        check_loadgen_point(m, &path)?;
    }
    let sweep_points = sweep.len();

    Ok(format!(
        "schema v6 ok: {sessions} session points, {cluster} cluster points, \
         {autotune} autotune reports, shedding {admitted}/{offered} admitted, \
         cache hit rate {hit_rate:.2}, {degradation} degradation points, \
         {sweep_points} network sweep points"
    ))
}

/// One loadgen measurement (the network closed-loop point or a sweep
/// point): numeric fields, balanced accounting, monotone percentiles.
fn check_loadgen_point(m: &BTreeMap<String, Json>, path: &str) -> Result<(), String> {
    for key in [
        "clients",
        "admitted_per_s",
        "mean_retry_after_ms",
        "zero_hint_sheds",
    ] {
        num(m, path, key)?;
    }
    let offered = num(m, path, "offered")?;
    let admitted = num(m, path, "admitted")?;
    let shed = num(m, path, "shed")?;
    let failed = num(m, path, "failed")?;
    if admitted + shed + failed != offered {
        return Err(format!(
            "{path}: admitted ({admitted}) + shed ({shed}) + failed ({failed}) != offered ({offered})"
        ));
    }
    let p50 = num(m, path, "p50_ms")?;
    let p99 = num(m, path, "p99_ms")?;
    if p99 < p50 {
        return Err(format!("{path}: p99_ms ({p99}) < p50_ms ({p50})"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_serve_schema: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse(&text).and_then(|doc| check(&doc)) {
        Ok(summary) => {
            println!("{path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_serve_schema: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "meta": {"schema_version": 6, "workers": 4, "host_cores": 1, "eval_batch_hint": 32, "coalesce_auto": true, "playouts_per_request": 48, "board": "gomoku9", "evaluator": "nn", "smoke": true},
      "sessions": [
        {"concurrent": 1, "requests_per_s": 10.0, "p50_ms": 1.0, "p99_ms": 2.0, "mean_eval_batch": 1.0}
      ],
      "cluster": [
        {"shards": 2, "total_workers": 2, "concurrent": 6, "requests_per_s": 9.5, "p50_ms": 1.0, "p99_ms": 2.0}
      ],
      "autotune": [
        {"calibrated": true, "batch": 8, "window_us": 850, "positions_per_sec": 9000.0, "curve": [{"batch": 1, "forward_ns": 210000}, {"batch": 8, "forward_ns": 855000}]}
      ],
      "shedding": {"offered": 6, "admitted": 2, "shed": 4, "mean_retry_after_ms": 12.0, "drain_ms": 80.0},
      "coalescing": {"burst": 4, "serial_mean_eval_batch": 1.0, "multi_mean_eval_batch": 1.8},
      "cache": {"requests": 6, "distinct_positions": 3, "rounds": 2, "cache_off_requests_per_s": 80.0, "cache_on_requests_per_s": 110.0, "hit_rate": 0.5, "speedup": 1.375},
      "degradation": [
        {"fault_p": 0.0, "sessions_per_backend": 3, "faulty_requests_per_s": 9.0, "faulty_p99_ms": 3.0, "faulty_done": 3, "faulty_failed": 0, "faulty_shed": 0, "healthy_requests_per_s": 9.1, "healthy_p99_ms": 3.0, "healthy_done": 3, "healthy_failed": 0, "healthy_shed": 0},
        {"fault_p": 0.2, "sessions_per_backend": 3, "faulty_requests_per_s": 4.0, "faulty_p99_ms": 9.0, "faulty_done": 1, "faulty_failed": 1, "faulty_shed": 1, "healthy_requests_per_s": 9.0, "healthy_p99_ms": 3.1, "healthy_done": 3, "healthy_failed": 0, "healthy_shed": 0}
      ],
      "network": {
        "inprocess_requests_per_s": 120.0,
        "closed_loop": {"clients": 2, "offered": 4, "admitted": 4, "shed": 0, "failed": 0, "admitted_per_s": 110.0, "p50_ms": 16.0, "p99_ms": 29.0, "mean_retry_after_ms": 0.0, "zero_hint_sheds": 0},
        "sweep": [
          {"clients": 2, "offered_per_s": 240.0, "offered": 240, "admitted": 130, "shed": 110, "failed": 0, "admitted_per_s": 125.0, "p50_ms": 7.0, "p99_ms": 45.0, "mean_retry_after_ms": 3.5, "zero_hint_sheds": 0}
        ]
      }
    }"#;

    #[test]
    fn good_document_passes() {
        check(&parse(GOOD).unwrap()).unwrap();
    }

    #[test]
    fn missing_section_fails() {
        let broken = GOOD.replace("\"cluster\"", "\"clutter\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("cluster"), "{err}");
    }

    #[test]
    fn wrong_schema_version_fails() {
        let broken = GOOD.replace("\"schema_version\": 6", "\"schema_version\": 5");
        assert!(check(&parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn inverted_percentiles_fail() {
        let broken = GOOD.replace(
            "\"p50_ms\": 1.0, \"p99_ms\": 2.0, \"mean_eval_batch\"",
            "\"p50_ms\": 3.0, \"p99_ms\": 2.0, \"mean_eval_batch\"",
        );
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("p99_ms"), "{err}");
    }

    #[test]
    fn missing_autotune_section_fails() {
        let broken = GOOD.replace("\"autotune\"", "\"autoplay\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("autotune"), "{err}");
    }

    #[test]
    fn empty_autotune_curve_fails() {
        let broken = GOOD.replace(
            "\"curve\": [{\"batch\": 1, \"forward_ns\": 210000}, {\"batch\": 8, \"forward_ns\": 855000}]",
            "\"curve\": []",
        );
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("curve"), "{err}");
    }

    #[test]
    fn missing_degradation_section_fails() {
        let broken = GOOD.replace("\"degradation\"", "\"decoration\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("degradation"), "{err}");
    }

    #[test]
    fn degradation_accounting_must_balance() {
        let broken = GOOD.replace("\"faulty_done\": 1", "\"faulty_done\": 2");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("sessions_per_backend"), "{err}");
    }

    #[test]
    fn missing_cache_section_fails() {
        let broken = GOOD.replace("\"cache\"", "\"cash\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("cache"), "{err}");
    }

    #[test]
    fn hit_rate_outside_unit_interval_fails() {
        let broken = GOOD.replace("\"hit_rate\": 0.5", "\"hit_rate\": 1.5");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("hit_rate"), "{err}");
    }

    #[test]
    fn shed_accounting_must_balance() {
        let broken = GOOD.replace("\"admitted\": 2", "\"admitted\": 3");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("offered"), "{err}");
    }

    #[test]
    fn missing_network_section_fails() {
        let broken = GOOD.replace("\"network\"", "\"notwork\"");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("network"), "{err}");
    }

    #[test]
    fn network_accounting_must_balance() {
        let broken = GOOD.replace("\"admitted\": 130", "\"admitted\": 131");
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("offered"), "{err}");
    }

    #[test]
    fn empty_network_sweep_fails() {
        let open = GOOD.find("\"sweep\": [").unwrap();
        let close = GOOD[open..].find(']').unwrap();
        let broken = format!("{}\"sweep\": [{}", &GOOD[..open], &GOOD[open + close..]);
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("sweep"), "{err}");
    }

    #[test]
    fn network_inverted_percentiles_fail() {
        let broken = GOOD.replace(
            "\"p50_ms\": 7.0, \"p99_ms\": 45.0",
            "\"p50_ms\": 50.0, \"p99_ms\": 45.0",
        );
        let err = check(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("p99_ms"), "{err}");
    }
}
