//! Figure 6 — Overall training throughput (processed samples/second) vs
//! number of workers, on CPU-only and CPU-GPU platforms, each using the
//! optimal parallel method from the design-configuration workflow.
//!
//! Paper behaviour to reproduce:
//! * CPU-GPU: near-linear throughput growth up to N = 16, then flattening
//!   once the (overlapped, GPU-offloaded) training stage dominates;
//! * CPU-only: training on 32 fixed CPU threads becomes the bottleneck
//!   early, so throughput gains from more search workers are modest;
//! * annotated per-N optimal scheme.
//!
//! Run: `cargo run --release -p bench --bin fig6_throughput`

use bench::{header, small_gomoku_setup, write_results};
use mcts::{MctsConfig, NnEvaluator, Scheme};
use perfmodel::sim::{
    simulate_local_accel, simulate_local_cpu, simulate_shared_accel, simulate_shared_cpu,
    simulate_training_throughput, SimParams,
};
use perfmodel::vsearch::find_min_vsequence;
use std::sync::Arc;
use train::{Pipeline, PipelineConfig};

/// Modeled per-sample training cost: a GPU SGD step on a move's worth of
/// data (~ms-scale) vs a 32-thread CPU trainer (~10x slower), loosely
/// matching the paper's platform ratio.
const TRAIN_GPU_NS_PER_SAMPLE: f64 = 27_000_000.0;
const TRAIN_CPU_NS_PER_SAMPLE: f64 = 400_000_000.0;
const MOVES_PER_EPISODE: usize = 40;

fn main() {
    println!("Figure 6: training throughput (samples/s) under optimal configurations");
    println!("(simulation, paper-like parameters; 1 sample = one 1600-playout move)\n");

    let ns = [1usize, 2, 4, 8, 16, 32, 64];
    let mut csv = String::from("n,platform,scheme,throughput\n");

    println!("CPU-GPU platform (training offloaded to GPU, overlapped):");
    header(&["N", "samples/s", "(scheme)"]);
    for &n in &ns {
        let p = SimParams::paper_like(n);
        let shared = simulate_shared_accel(&p).move_ns;
        let (bstar, _) = find_min_vsequence(1, n, |b| simulate_local_accel(&p, b).iteration_ns);
        let local = simulate_local_accel(&p, bstar).move_ns;
        let (scheme, search_ns) = if local <= shared {
            (format!("local,B*={bstar}"), local)
        } else {
            ("shared".to_string(), shared)
        };
        let tp =
            simulate_training_throughput(search_ns, TRAIN_GPU_NS_PER_SAMPLE, MOVES_PER_EPISODE);
        csv.push_str(&format!("{n},cpu-gpu,{scheme},{tp:.4}\n"));
        println!("{:>14} {:>14.3}   ({scheme})", n, tp);
    }

    println!("\nCPU-only platform (training on 32 fixed CPU threads, serialized):");
    header(&["N", "samples/s", "(scheme)"]);
    for &n in &ns {
        let p = SimParams::paper_like(n);
        let shared = simulate_shared_cpu(&p).move_ns;
        let local = simulate_local_cpu(&p).move_ns;
        let (scheme, search_ns) = if local <= shared {
            ("local", local)
        } else {
            ("shared", shared)
        };
        // Serialized stages: samples / (search + train).
        let total_ns = search_ns + TRAIN_CPU_NS_PER_SAMPLE;
        let tp = 1.0 / (total_ns * 1e-9);
        csv.push_str(&format!("{n},cpu-only,{scheme},{tp:.4}\n"));
        println!("{:>14} {:>14.3}   ({scheme})", n, tp);
    }

    println!("\nMeasured on this host (small Gomoku, tiny net, real pipeline):");
    header(&["N", "scheme", "samples/s"]);
    let mut mcsv = String::from("n,scheme,throughput\n");
    for (n, scheme) in [(1usize, Scheme::Serial), (2, Scheme::LocalTree)] {
        let (game, net) = small_gomoku_setup(7);
        let mut cfg = PipelineConfig::smoke(scheme, n);
        cfg.episodes = 1;
        cfg.mcts = MctsConfig {
            playouts: 48,
            workers: n,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(game, (*net).clone(), cfg);
        pipeline.set_evaluator_factory(|snap| Arc::new(NnEvaluator::new(snap)));
        let report = pipeline.run();
        mcsv.push_str(&format!(
            "{n},{},{:.4}\n",
            scheme.name(),
            report.samples_per_sec
        ));
        println!(
            "{:>14} {:>14} {:>14.3}",
            n,
            scheme.name(),
            report.samples_per_sec
        );
    }

    // Serialized vs truly-overlapped trainer on identical configs (§5.4's
    // producer/consumer pipeline, measured).
    println!("\nMeasured serialized vs overlapped trainer (same config):");
    header(&["mode", "samples/s"]);
    let (game, net) = small_gomoku_setup(7);
    let mut cfg = PipelineConfig::smoke(Scheme::Serial, 1);
    cfg.episodes = 2;
    cfg.sgd_iters = 8;
    cfg.mcts = MctsConfig {
        playouts: 48,
        ..Default::default()
    };
    let mut serialized = Pipeline::new(game.clone(), (*net).clone(), cfg);
    let ser_report = serialized.run();
    let (_, ovl_report) = train::run_overlapped(&game, (*net).clone(), cfg, None);
    mcsv.push_str(&format!(
        "serialized,pipeline,{:.4}\noverlapped,pipeline,{:.4}\n",
        ser_report.samples_per_sec, ovl_report.samples_per_sec
    ));
    println!("{:>14} {:>14.3}", "serialized", ser_report.samples_per_sec);
    println!("{:>14} {:>14.3}", "overlapped", ovl_report.samples_per_sec);

    let _ = write_results("fig6_sim.csv", &csv);
    match write_results("fig6_measured.csv", &mcsv) {
        Ok(p) => println!("\nwrote results/fig6_sim.csv and {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
