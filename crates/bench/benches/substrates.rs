//! Substrate micro-benchmarks: the kernels whose profiled latencies feed
//! the performance models (GEMM, convolution, full network inference,
//! game-state operations, synthetic-tree walks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::gomoku::Gomoku;
use games::Game;
use nn::{NetConfig, PolicyValueNet};
use perfmodel::profiler::SyntheticTree;
use std::time::Duration;
use tensor::ops::gemm;
use tensor::Tensor;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    configure(&mut group);
    for n in [32usize, 64, 128] {
        let a = vec![0.5f32; n * n];
        let b = vec![0.25f32; n * n];
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, &n| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut out));
        });
    }
    group.finish();
}

fn bench_net_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_forward");
    configure(&mut group);
    let net = PolicyValueNet::new(NetConfig::gomoku15(), 1);
    for batch in [1usize, 8, 32] {
        let x = Tensor::full(&[batch, 4, 15, 15], 0.3);
        group.bench_with_input(BenchmarkId::new("gomoku15", batch), &batch, |b, _| {
            b.iter(|| net.predict(&x));
        });
    }
    group.finish();
}

fn bench_game_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("game_ops");
    configure(&mut group);
    group.bench_function("gomoku15_apply_and_status", |b| {
        b.iter(|| {
            let mut g = Gomoku::standard();
            for a in [112u16, 113, 96, 98, 126, 127] {
                g.apply(a);
            }
            g.status()
        });
    });
    group.bench_function("gomoku15_legal_actions", |b| {
        let mut g = Gomoku::standard();
        g.apply(112);
        let mut buf = Vec::new();
        b.iter(|| {
            g.legal_actions_into(&mut buf);
            buf.len()
        });
    });
    group.bench_function("gomoku15_encode", |b| {
        let mut g = Gomoku::standard();
        g.apply(112);
        let mut buf = vec![0.0f32; g.encoded_len()];
        b.iter(|| g.encode(&mut buf));
    });
    group.finish();
}

fn bench_synthetic_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthetic_tree");
    configure(&mut group);
    // The paper's design-time profile geometry: Gomoku fanout, shallow.
    let tree = SyntheticTree::new(225, 3, 9);
    group.bench_function("select_walk_fanout225", |b| {
        b.iter(|| tree.select_walk(5.0));
    });
    let mut tree2 = SyntheticTree::new(225, 3, 9);
    let leaf = tree2.select_walk(5.0);
    group.bench_function("backup_walk_fanout225", |b| {
        b.iter(|| tree2.backup_walk(leaf, 0.5));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_net_forward,
    bench_game_ops,
    bench_synthetic_tree
);
criterion_main!(benches);
