//! Ablation benches for the extension features: tree reuse across moves,
//! speculative search commit batching, symmetry augmentation, and the
//! residual tower vs the paper's plain network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::symmetry::augment_sample;
use games::tictactoe::TicTacToe;
use games::Game;
use mcts::reuse::ReusableSearch;
use mcts::serial::SerialSearch;
use mcts::speculative::SpeculativeSearch;
use mcts::{MctsConfig, NnEvaluator, SearchScheme, UniformEvaluator};
use nn::resnet::{ResNetConfig, ResNetPolicyValueNet};
use nn::{NetConfig, PolicyValueNet};
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

fn short_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// Fresh tree per move vs re-rooted tree, playing 4 self-play moves.
fn bench_tree_reuse(c: &mut Criterion) {
    let mut group = short_group(c, "tree_reuse");
    let cfg = MctsConfig {
        playouts: 64,
        ..Default::default()
    };
    group.bench_function("fresh_tree_4_moves", |b| {
        b.iter(|| {
            let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut s = SerialSearch::new(cfg, eval);
            let mut g = TicTacToe::new();
            for _ in 0..4 {
                let r = s.search(&g);
                g.apply(r.best_action());
            }
            g
        });
    });
    group.bench_function("reused_tree_4_moves", |b| {
        b.iter(|| {
            let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut s = ReusableSearch::new(cfg, eval);
            let mut g = TicTacToe::new();
            for _ in 0..4 {
                let r = s.search(&g);
                let a = r.best_action();
                s.advance(a);
                g.apply(a);
            }
            g
        });
    });
    group.finish();
}

/// Speculative search at different commit batch sizes (1 = immediate
/// correction, larger = deeper pipeline).
fn bench_speculative(c: &mut Criterion) {
    let mut group = short_group(c, "speculative_commit_batch");
    let cfg = MctsConfig {
        playouts: 64,
        ..Default::default()
    };
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 9));
    for commit in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(commit), &commit, |b, &k| {
            let main = Arc::new(NnEvaluator::new(Arc::clone(&net)));
            let spec = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut s = SpeculativeSearch::new(cfg, main, spec, k);
            let game = TicTacToe::new();
            b.iter(|| SearchScheme::<TicTacToe>::search(&mut s, &game));
        });
    }
    group.finish();
}

/// Eightfold symmetry expansion of one Gomoku-sized sample.
fn bench_augmentation(c: &mut Criterion) {
    let mut group = short_group(c, "symmetry_augmentation");
    for n in [9usize, 15] {
        let planes: Vec<f32> = (0..4 * n * n).map(|v| (v % 13) as f32).collect();
        let policy: Vec<f32> = (0..n * n).map(|v| (v % 7) as f32 / 100.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| augment_sample(&planes, &policy, 4, n));
        });
    }
    group.finish();
}

/// Inference cost: the paper's 5-conv/3-FC net vs the residual tower.
fn bench_architectures(c: &mut Criterion) {
    let mut group = short_group(c, "architecture_forward");
    let plain = PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2);
    let tower = ResNetPolicyValueNet::new(
        ResNetConfig {
            in_c: 4,
            h: 9,
            w: 9,
            actions: 81,
            filters: 32,
            blocks: 3,
            value_hidden: 32,
        },
        2,
    );
    let x = Tensor::ones(&[4, 4, 9, 9]);
    group.bench_function("plain_5conv3fc", |b| b.iter(|| plain.forward(&x)));
    group.bench_function("resnet_tower", |b| b.iter(|| tower.forward(&x)));
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_reuse,
    bench_speculative,
    bench_augmentation,
    bench_architectures
);
criterion_main!(benches);
