//! Criterion counterpart of Figure 4: per-move latency of every search
//! scheme on the CPU, at a host-feasible scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::tictactoe::TicTacToe;
use mcts::{MctsConfig, Scheme, UniformEvaluator};
use std::sync::Arc;
use std::time::Duration;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("schemes_cpu");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for scheme in Scheme::ALL {
        for workers in [1usize, 2, 4] {
            if scheme == Scheme::Serial && workers > 1 {
                continue;
            }
            let cfg = MctsConfig {
                playouts: 64,
                workers,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), workers),
                &workers,
                |b, _| {
                    let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
                    let mut search = scheme.build::<TicTacToe>(cfg, eval);
                    let game = TicTacToe::new();
                    b.iter(|| search.search(&game));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
