//! Criterion counterpart of Figure 3: real accelerator-device throughput
//! as a function of the batch-assembly threshold `B`.

use accel::{Device, DeviceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nn::{NetConfig, PolicyValueNet};
use std::sync::Arc;
use std::time::Duration;

fn bench_device_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    const SAMPLES: usize = 16;
    group.throughput(Throughput::Elements(SAMPLES as u64));
    for batch in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 5, 5, 25), 3));
            let dev = Device::new(Arc::clone(&net), DeviceConfig::instant(batch));
            let input = vec![0.25f32; dev.input_len()];
            b.iter(|| {
                let rxs: Vec<_> = (0..SAMPLES).map(|_| dev.submit(input.clone())).collect();
                for rx in rxs {
                    rx.recv().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_device_batching);
criterion_main!(benches);
