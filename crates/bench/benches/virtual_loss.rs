//! Ablation (DESIGN.md §5): constant virtual loss (Chaslot) vs
//! visit-tracking virtual loss (WU-UCT) in the shared-tree scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::tictactoe::TicTacToe;
use mcts::shared::SharedTreeSearch;
use mcts::{MctsConfig, SearchScheme, UniformEvaluator, VirtualLoss};
use std::sync::Arc;
use std::time::Duration;

fn bench_virtual_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_loss");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let variants: [(&str, VirtualLoss); 3] = [
        ("constant_1", VirtualLoss::Constant(1.0)),
        ("constant_3", VirtualLoss::Constant(3.0)),
        ("visit_tracking", VirtualLoss::VisitTracking),
    ];
    for (name, vl) in variants {
        group.bench_with_input(BenchmarkId::new(name, 4), &vl, |b, &vl| {
            let cfg = MctsConfig {
                playouts: 128,
                workers: 4,
                virtual_loss: vl,
                ..Default::default()
            };
            let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut search = SharedTreeSearch::new(cfg, eval);
            let game = TicTacToe::new();
            b.iter(|| SearchScheme::<TicTacToe>::search(&mut search, &game));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_virtual_loss);
criterion_main!(benches);
