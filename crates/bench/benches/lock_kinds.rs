//! Ablation (DESIGN.md §5): per-node mutex (the paper's shared-tree
//! design) vs lock-free atomic statistic updates (Mirsoleimani-style).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::tictactoe::TicTacToe;
use mcts::shared::SharedTreeSearch;
use mcts::{LockKind, MctsConfig, SearchScheme, UniformEvaluator};
use std::sync::Arc;
use std::time::Duration;

fn bench_lock_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_kinds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, lock) in [("mutex", LockKind::Mutex), ("atomic", LockKind::Atomic)] {
        for workers in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(name, workers), &workers, |b, &workers| {
                let cfg = MctsConfig {
                    playouts: 128,
                    workers,
                    lock_kind: lock,
                    ..Default::default()
                };
                let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
                let mut search = SharedTreeSearch::new(cfg, eval);
                let game = TicTacToe::new();
                b.iter(|| SearchScheme::<TicTacToe>::search(&mut search, &game));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lock_kinds);
criterion_main!(benches);
