//! Criterion counterpart of Figure 5: per-move latency of the shared-tree
//! (full-batch) and local-tree (sub-batch) schemes with inference routed
//! through the batching accelerator device, at host-feasible scale.

use accel::{Device, DeviceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::tictactoe::TicTacToe;
use mcts::{AccelEvaluator, MctsConfig, Scheme};
use nn::{NetConfig, PolicyValueNet};
use std::sync::Arc;
use std::time::Duration;

fn accel_evaluator(batch: usize, streams: usize) -> Arc<AccelEvaluator> {
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 5));
    let device = Arc::new(Device::new(
        net,
        DeviceConfig {
            streams,
            ..DeviceConfig::instant(batch)
        },
    ));
    Arc::new(AccelEvaluator::new(device))
}

fn bench_schemes_accel(c: &mut Criterion) {
    let mut group = c.benchmark_group("schemes_accel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for workers in [2usize, 4] {
        // Shared tree: full-batch inference (batch = N, §3.3).
        let cfg = MctsConfig {
            playouts: 64,
            workers,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("shared_full_batch", workers),
            &workers,
            |b, &n| {
                let eval = accel_evaluator(n, 1);
                let mut search = Scheme::SharedTree.build::<TicTacToe>(cfg, eval);
                let game = TicTacToe::new();
                b.iter(|| search.search(&game));
            },
        );
        // Local tree: sub-batch inference (B = N/2, two streams).
        group.bench_with_input(
            BenchmarkId::new("local_sub_batch", workers),
            &workers,
            |b, &n| {
                let eval = accel_evaluator((n / 2).max(1), 2);
                let mut search = Scheme::LocalTree.build::<TicTacToe>(cfg, eval);
                let game = TicTacToe::new();
                b.iter(|| search.search(&game));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes_accel);
criterion_main!(benches);
