//! Kernel and batch-forward throughput: the packed register-blocked GEMM
//! (single- and multi-threaded) against the retained baseline kernel, and
//! `PolicyValueNet` batch-forward throughput on the fast path vs the
//! pre-rewrite reference path.
//!
//! Set `BENCH_SMOKE=1` (CI) to run each benchmark once with a minimal
//! budget — enough to prove the bench code executes, no timing value.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nn::{NetConfig, PolicyValueNet};
use std::time::Duration;
use tensor::{Tensor, Workspace};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if smoke() {
        group
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
    } else {
        group
            .sample_size(20)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
    }
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    configure(&mut group);
    for &n in &[64usize, 128, 256] {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        let mut out = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |bch, &n| {
            bch.iter(|| {
                tensor::ops::baseline::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut out)
            });
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, &n| {
            bch.iter(|| tensor::ops::gemm(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("packed_mt", n), &n, |bch, &n| {
            bch.iter(|| tensor::ops::gemm_mt(false, false, n, n, n, 1.0, &a, &b, 0.0, &mut out));
        });
    }
    group.finish();
}

fn bench_batch_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("pv_forward");
    configure(&mut group);
    let net = PolicyValueNet::new(NetConfig::gomoku15(), 3);
    let sample = net.config.in_c * net.config.h * net.config.w;
    for &batch in &[1usize, 8, 32] {
        let x = Tensor::from_vec(
            rand_vec(batch * sample, batch as u64),
            &[batch, net.config.in_c, net.config.h, net.config.w],
        );
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("reference", batch), &batch, |bch, _| {
            bch.iter(|| net.forward_reference(&x));
        });
        group.bench_with_input(BenchmarkId::new("fast", batch), &batch, |bch, _| {
            bch.iter(|| net.forward(&x));
        });
        group.bench_with_input(BenchmarkId::new("fast_ws", batch), &batch, |bch, _| {
            let mut ws = Workspace::new();
            let mut policy = Vec::new();
            let mut values = Vec::new();
            bch.iter(|| net.predict_into(&x, &mut ws, &mut policy, &mut values));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_batch_forward);
criterion_main!(benches);
