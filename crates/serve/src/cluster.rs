//! Sharded multi-service dispatch: one front door over N
//! [`SearchService`] shards.
//!
//! A single [`SearchService`] scales to one worker pool's worth of
//! traffic; past that the shared scheduler lock and one coalescing
//! registry become the ceiling. [`ServeCluster`] owns several
//! independent services ("shards" — one per backend/model or CPU slice)
//! and routes each incoming request through three stages:
//!
//! 1. **Admission** ([`crate::AdmissionController`], optional): a
//!    per-model token bucket on admitted playouts, a bounded
//!    pending-session count, and byte quotas on the arena memory each
//!    session would reserve (per session and per model — see
//!    [`crate::AdmissionConfig::session_byte_quota`]). Overflow is
//!    *shed* — the caller gets
//!    `Err(`[`Rejection`]`)` with a `retry_after` hint, and nothing is
//!    queued — so overload degrades into fast explicit rejections
//!    instead of unbounded queue growth.
//! 2. **Placement** ([`PlacementPolicy`]): pick a shard by outstanding
//!    playout load, with *backend affinity* — sessions carrying a model
//!    already resident on some shard prefer that shard, because its
//!    [`mcts::CoalescingEvaluator`] for the model already lives there
//!    and cross-session batches only fill within one shard. Affinity
//!    spills to least-loaded when the home shard is overloaded.
//! 3. **Execution**: the shard's weighted-fair scheduler steps the
//!    session; the returned [`ClusterTicket`] exposes the full ticket
//!    surface (`wait`, `partial`, [`crate::SearchTicket::subscribe`]
//!    streaming, cancellation) plus the placed shard index.
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Budget, UniformEvaluator};
//! use serve::{ClusterConfig, SearchRequest, ServeCluster, ServeConfig};
//! use std::sync::Arc;
//!
//! let cluster = ServeCluster::new(ClusterConfig {
//!     shards: 2,
//!     shard: ServeConfig { workers: 2, ..Default::default() },
//!     admission: None, // accept everything: no shedding
//! });
//! let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
//! let ticket = cluster
//!     .submit(SearchRequest::new(TicTacToe::new(), eval).budget(Budget::playouts(64)))
//!     .expect("no admission control configured");
//! assert!(ticket.shard() < 2);
//! assert_eq!(ticket.wait().stats.playouts, 64);
//! ```

use crate::admission::{AdmissionConfig, AdmissionController, RejectReason, Rejection};
use crate::evalcache::CacheRegistry;
use crate::health::{BreakerState, HealthRegistry};
use crate::service::{SearchService, ServeConfig, ServiceStats};
use crate::session::{SearchTicket, SessionShared};
use crate::{jittered, session_cost, SearchRequest};
use games::Game;
use mcts::{AutotuneReport, BatchEvaluator, CacheStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Cluster sizing: how many shards, how each is provisioned, and the
/// admission limits applied per model.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Independent [`SearchService`] shards (each spawns its own
    /// [`ServeConfig::workers`] threads).
    pub shards: usize,
    /// Per-shard service configuration.
    pub shard: ServeConfig,
    /// Per-model admission limits; `None` admits everything (no
    /// shedding — the single-service behavior).
    pub admission: Option<AdmissionConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            shard: ServeConfig::default(),
            admission: Some(AdmissionConfig::default()),
        }
    }
}

/// Chooses the shard a newly admitted session runs on.
///
/// `loads[i]` is shard *i*'s outstanding playout budget
/// ([`SearchService::outstanding_playouts`]), `affinity` is the shard
/// where the request's backend last landed (its coalescing layer lives
/// there), and `cost` is the session's admitted playout budget. The
/// returned index is clamped to the shard count.
pub trait PlacementPolicy: Send + Sync {
    fn place(&self, loads: &[u64], affinity: Option<usize>, cost: u64) -> usize;
}

/// Route to the shard with the least outstanding playout budget,
/// ignoring backend affinity (useful when every request carries its own
/// model and batches can never be shared).
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn place(&self, loads: &[u64], _affinity: Option<usize>, _cost: u64) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The default policy: stay on the backend's home shard (where its
/// coalescing layer and warmed state already live) until the home runs
/// more than `spill` sessions' worth of load **ahead of the least
/// loaded shard**; beyond that, fall back to least-loaded so one hot
/// model cannot drown its shard while others idle.
///
/// The comparison is against the emptiest alternative, not the cluster
/// mean: with one dominant model the home shard *is* most of the mean,
/// and a mean-relative rule would abandon affinity on the second
/// concurrent session — exactly the case batching affinity exists for.
pub struct AffinityLeastLoaded {
    /// Headroom, in multiples of the incoming session's cost, that the
    /// home shard may hold over the least-loaded shard before affinity
    /// gives way. 2.0 by default; larger = stickier (better batch
    /// fill, lumpier load).
    pub spill: f64,
}

impl Default for AffinityLeastLoaded {
    fn default() -> Self {
        AffinityLeastLoaded { spill: 2.0 }
    }
}

impl PlacementPolicy for AffinityLeastLoaded {
    fn place(&self, loads: &[u64], affinity: Option<usize>, cost: u64) -> usize {
        if let Some(home) = affinity.filter(|&h| h < loads.len()) {
            let min_load = loads.iter().copied().min().unwrap_or(0);
            let headroom = self.spill.max(0.0) * cost.max(1) as f64;
            if loads[home] as f64 <= min_load as f64 + headroom {
                return home;
            }
        }
        LeastLoaded.place(loads, None, cost)
    }
}

/// Cluster-level accounting: admission outcomes plus every shard's
/// [`ServiceStats`].
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Requests admitted and placed.
    pub admitted: u64,
    /// Requests shed by the token bucket
    /// ([`crate::RejectReason::RateLimited`]).
    pub shed_rate_limited: u64,
    /// Requests shed by the pending bound
    /// ([`crate::RejectReason::QueueFull`]).
    pub shed_queue_full: u64,
    /// Requests whose cost exceeds the admission burst
    /// ([`crate::RejectReason::TooLarge`] — never admissible as-is).
    pub shed_too_large: u64,
    /// Requests shed because their backend's circuit breaker is open
    /// ([`crate::RejectReason::Unhealthy`]): the model kept failing and
    /// is cooling down, so new sessions are bounced at the front door
    /// with an honest `retry_after` instead of burning worker time on
    /// evaluations that would fail fast anyway.
    pub shed_unhealthy: u64,
    /// Requests shed because the cluster is draining toward shutdown
    /// ([`crate::RejectReason::Draining`]): [`ServeCluster::drain`] was
    /// called, so the front door bounces everything while in-flight
    /// sessions run out.
    pub shed_draining: u64,
    /// Requests shed by a byte quota
    /// ([`crate::RejectReason::OverMemory`]): either the session's
    /// arena would exceed [`crate::AdmissionConfig::session_byte_quota`]
    /// (terminal — zero `retry_after`) or the model's aggregate
    /// [`crate::AdmissionConfig::model_byte_budget`] gauge is full
    /// (transient — bytes return as sessions finalize).
    pub shed_over_memory: u64,
    /// Arena bytes currently reserved by admitted-but-unfinalized
    /// sessions, summed over all models. Balances back to zero once a
    /// drain fully unwinds; with admission disabled this is always 0.
    pub admitted_bytes: u64,
    /// Cluster-wide evaluation-cache counters. The cache registry is
    /// shared across every shard (a position evaluated on one shard is
    /// a hit on all of them), so its counters live here rather than in
    /// any single shard's [`ServiceStats`]. All zeros when
    /// [`ServeConfig::eval_cache_bytes`] is unset.
    pub cache: CacheStats,
    /// Per-shard service counters, indexed by shard.
    pub per_shard: Vec<ServiceStats>,
    /// One report per live (shard, backend) tuner: the measured
    /// forward-time-vs-batch-size curve and the operating point
    /// currently steering that backend's batching. Empty with
    /// [`ServeConfig::coalesce_auto`] off. `shard` is filled in.
    pub autotune: Vec<AutotuneReport>,
}

impl ClusterStats {
    /// Total requests shed (all reasons).
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited
            + self.shed_queue_full
            + self.shed_too_large
            + self.shed_unhealthy
            + self.shed_draining
            + self.shed_over_memory
    }

    /// All shards' counters folded together, including the shared
    /// cache's (shard entries report zero cache counters — the
    /// registry spans shards, so it is folded in exactly once here).
    pub fn total(&self) -> ServiceStats {
        let mut out = ServiceStats::default();
        for s in &self.per_shard {
            out.merge(s);
        }
        out.cache_hits += self.cache.hits;
        out.cache_misses += self.cache.misses;
        out.cache_evictions += self.cache.evictions;
        out.cache_bytes += self.cache.bytes;
        out
    }

    /// Machine-readable metrics dump (JSON): admission outcomes, the
    /// folded service totals, and every backend's measured
    /// forward-time curve with its current operating point. Scrapers
    /// get the whole batching feedback loop from one call; keys are
    /// stable across releases (additions only).
    pub fn metrics_json(&self) -> String {
        use std::fmt::Write;
        let total = self.total();
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"admitted\":{},\"shed\":{{\"rate_limited\":{},\"queue_full\":{},\"too_large\":{},\"unhealthy\":{},\"draining\":{},\"over_memory\":{}}}",
            self.admitted,
            self.shed_rate_limited,
            self.shed_queue_full,
            self.shed_too_large,
            self.shed_unhealthy,
            self.shed_draining,
            self.shed_over_memory
        );
        let _ = write!(s, ",\"admitted_bytes\":{}", self.admitted_bytes);
        let _ = write!(
            s,
            ",\"sessions\":{{\"completed\":{},\"cancelled\":{},\"failed\":{}}},\"playouts\":{}",
            total.sessions_completed,
            total.sessions_cancelled,
            total.sessions_failed,
            total.playouts
        );
        let _ = write!(
            s,
            ",\"eval\":{{\"batches\":{},\"samples\":{},\"mean_batch\":{:.3}}}",
            total.eval_batches,
            total.eval_samples,
            total.mean_eval_batch()
        );
        let _ = write!(
            s,
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bytes\":{}}}",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.bytes
        );
        s.push_str(",\"autotune\":[");
        for (i, r) in self.autotune.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"shard\":{},\"calibrated\":{},\"batch\":{},\"window_us\":{},\"positions_per_sec\":{:.1},\"curve\":[",
                r.shard, r.calibrated, r.batch, r.window_us, r.positions_per_sec
            );
            for (j, (size, ns)) in r.curve.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"batch\":{size},\"forward_ns\":{ns}}}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Handle to a session placed by [`ServeCluster::submit`]: the shard's
/// [`SearchTicket`] (all of `wait`/`partial`/`subscribe`/`cancel` via
/// `Deref`) plus where it was placed.
#[derive(Debug, Clone)]
pub struct ClusterTicket {
    ticket: SearchTicket,
    shard: usize,
}

impl ClusterTicket {
    /// The shard index this session was placed on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The underlying session ticket, by value (e.g. to store in a
    /// shard-agnostic collection).
    pub fn into_ticket(self) -> SearchTicket {
        self.ticket
    }
}

impl std::ops::Deref for ClusterTicket {
    type Target = SearchTicket;

    fn deref(&self) -> &SearchTicket {
        &self.ticket
    }
}

/// One backend's home-shard record: key (the evaluator `Arc` address),
/// a liveness/anti-aliasing handle, and the shard index.
type AffinityEntry = (usize, Weak<dyn BatchEvaluator>, usize);

/// The sharded dispatch front door (see module docs). Dropping the
/// cluster drops every shard: outstanding sessions resolve as cancelled.
pub struct ServeCluster {
    shards: Vec<SearchService>,
    placement: Box<dyn PlacementPolicy>,
    admission: Option<Arc<AdmissionController>>,
    /// Mirror of [`ServeConfig::session_arena_bytes`]: the shard will
    /// clamp each session's arena to this, so admission byte costing
    /// must price the clamped footprint, not the requested one.
    session_arena_bytes: Option<usize>,
    /// One evaluation-cache registry shared by every shard, so a
    /// position evaluated anywhere is a hit everywhere (`None` ⇒
    /// caching disabled).
    cache: Option<Arc<CacheRegistry>>,
    /// One health registry shared by every shard, so a backend's
    /// failure history (and its circuit breaker) is cluster-wide:
    /// admission sheds for an unhealthy model no matter which shard
    /// tripped it.
    health: Arc<HealthRegistry>,
    /// Backend key (evaluator `Arc` address) → home shard. The `Weak`
    /// pins the address against reuse and marks dead backends; entries
    /// with no strong references left are evicted on the next submit.
    affinity: Mutex<Vec<AffinityEntry>>,
    /// Weak handles to every admitted session, pruned of finished ones
    /// on submit and during [`ServeCluster::drain`]'s in-flight probe.
    live: Mutex<Vec<Weak<SessionShared>>>,
    /// Set (irreversibly) by [`ServeCluster::drain`]: the front door
    /// sheds everything with [`RejectReason::Draining`].
    draining: AtomicBool,
    admitted: AtomicU64,
    shed_rate_limited: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_too_large: AtomicU64,
    shed_unhealthy: AtomicU64,
    shed_draining: AtomicU64,
    shed_over_memory: AtomicU64,
    /// Salt sequence decorrelating `retry_after` jitter across
    /// back-to-back unhealthy rejections.
    jitter_seq: AtomicU64,
}

impl ServeCluster {
    /// Spin up `cfg.shards` services with the default
    /// [`AffinityLeastLoaded`] placement.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::with_placement(cfg, Box::new(AffinityLeastLoaded::default()))
    }

    /// Spin up the cluster with a custom [`PlacementPolicy`].
    pub fn with_placement(cfg: ClusterConfig, placement: Box<dyn PlacementPolicy>) -> Self {
        assert!(cfg.shards >= 1, "cluster needs at least one shard");
        let cache = cfg
            .shard
            .eval_cache_bytes
            .map(|b| Arc::new(CacheRegistry::new(b, cfg.shard.eval_cache_ttl)));
        let health = Arc::new(HealthRegistry::new(cfg.shard.health_config()));
        ServeCluster {
            shards: (0..cfg.shards)
                .map(|_| {
                    SearchService::with_registries(
                        cfg.shard.clone(),
                        cache.clone(),
                        Some(Arc::clone(&health)),
                    )
                })
                .collect(),
            placement,
            admission: cfg.admission.map(|a| Arc::new(AdmissionController::new(a))),
            session_arena_bytes: cfg.shard.session_arena_bytes,
            cache,
            health,
            affinity: Mutex::new(Vec::new()),
            live: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            shed_rate_limited: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_too_large: AtomicU64::new(0),
            shed_unhealthy: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            shed_over_memory: AtomicU64::new(0),
            jitter_seq: AtomicU64::new(0),
        }
    }

    /// Admit, place and start one request.
    ///
    /// `Ok` means the session is queued on a shard and will run to its
    /// budget (or cancellation) — the cluster never silently drops an
    /// admitted session. `Err` means the request was shed *now*, with a
    /// [`Rejection::retry_after`] back-off hint; nothing was queued and
    /// no state lingers.
    pub fn submit<G: Game>(&self, req: SearchRequest<G>) -> Result<ClusterTicket, Rejection> {
        // Drain gate before anything else: a draining cluster admits
        // nothing, spends no tokens, and tells the client not to wait.
        if self.draining.load(Ordering::Acquire) {
            self.shed_draining.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection {
                reason: RejectReason::Draining,
                retry_after: Duration::ZERO,
            });
        }
        let key = Arc::as_ptr(&req.evaluator) as *const () as usize;
        let cost = session_cost(&req.budget, &req.config);
        // The session's worst-case arena footprint: the capacity its
        // resolved config would provision, in bytes. This is what the
        // byte quotas meter — reserved at admission, returned when the
        // session finalizes (the arena itself is freed or recycled then).
        let mut run_cfg = req.budget.apply_to(&req.config);
        if let Some(cap) = self.session_arena_bytes {
            run_cfg.arena_budget_bytes =
                Some(run_cfg.arena_budget_bytes.map_or(cap, |b| b.min(cap)));
        }
        let bytes = (run_cfg.arena_capacity(req.root.action_space())
            * mcts::NodeArena::slot_bytes()) as u64;
        // Health gate first: a backend cooling down behind an open
        // breaker is shed before it spends admission tokens. The check
        // admits once the breaker is probe-eligible, so the session
        // that carries the recovery probe still gets through.
        if let Err(remaining) = self.health.breaker_for(&req.evaluator).check() {
            self.shed_unhealthy.fetch_add(1, Ordering::Relaxed);
            let salt = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection {
                reason: RejectReason::Unhealthy,
                retry_after: jittered(remaining.max(Duration::from_millis(1)), salt, 0.5),
            });
        }
        if let Some(adm) = &self.admission {
            if let Err(rej) = adm.try_admit_backend_costed(&req.evaluator, cost, bytes) {
                let counter = match rej.reason {
                    RejectReason::RateLimited => &self.shed_rate_limited,
                    RejectReason::QueueFull => &self.shed_queue_full,
                    RejectReason::TooLarge => &self.shed_too_large,
                    RejectReason::Unhealthy => &self.shed_unhealthy,
                    RejectReason::Draining => &self.shed_draining,
                    RejectReason::OverMemory => &self.shed_over_memory,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                return Err(rej);
            }
        }
        let loads: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.outstanding_playouts())
            .collect();
        let affinity = {
            let mut aff = self.affinity.lock();
            // Evict homes of dead backends so a long-lived cluster with
            // per-request models neither grows this table without bound
            // nor matches a reused address to a stale home shard.
            aff.retain(|(_, handle, _)| handle.strong_count() > 0);
            aff.iter().find(|(k, _, _)| *k == key).map(|&(_, _, s)| s)
        };
        let shard = self.placement.place(&loads, affinity, cost).min(
            self.shards.len() - 1, // policy bug must not become an OOB panic
        );
        {
            let mut aff = self.affinity.lock();
            match aff.iter_mut().find(|(k, _, _)| *k == key) {
                Some(entry) => entry.2 = shard,
                None => aff.push((key, Arc::downgrade(&req.evaluator), shard)),
            }
        }
        let ticket = self.shards[shard].submit(req);
        if let Some(adm) = &self.admission {
            let adm = Arc::clone(adm);
            ticket
                .shared
                .set_on_final(Box::new(move |_status| adm.release_bytes(key, bytes)));
        }
        {
            let mut live = self.live.lock();
            live.retain(|w| w.upgrade().is_some_and(|s| !s.is_finished()));
            live.push(Arc::downgrade(&ticket.shared));
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(ClusterTicket { ticket, shard })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Each shard's outstanding playout load (what placement steers by).
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.outstanding_playouts())
            .collect()
    }

    /// Direct access to one shard's service (diagnostics; submitting
    /// through it bypasses admission and placement).
    pub fn shard(&self, i: usize) -> &SearchService {
        &self.shards[i]
    }

    /// Admission outcomes plus per-shard service counters and the
    /// shared evaluation cache's totals.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_rate_limited: self.shed_rate_limited.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_too_large: self.shed_too_large.load(Ordering::Relaxed),
            shed_unhealthy: self.shed_unhealthy.load(Ordering::Relaxed),
            shed_draining: self.shed_draining.load(Ordering::Relaxed),
            shed_over_memory: self.shed_over_memory.load(Ordering::Relaxed),
            admitted_bytes: self
                .admission
                .as_ref()
                .map_or(0, |a| a.total_admitted_bytes()),
            cache: self.cache.as_ref().map(|r| r.stats()).unwrap_or_default(),
            per_shard: self.shards.iter().map(|s| s.stats()).collect(),
            autotune: self
                .shards
                .iter()
                .enumerate()
                .flat_map(|(i, s)| {
                    s.autotune_reports().into_iter().map(move |mut r| {
                        r.shard = i;
                        r
                    })
                })
                .collect(),
        }
    }

    /// Circuit-breaker state of `backend` across the whole cluster
    /// (every shard shares one health registry). `Closed` for a
    /// backend that has never failed.
    pub fn backend_health(&self, backend: &Arc<dyn BatchEvaluator>) -> BreakerState {
        self.health.breaker_for(backend).state()
    }

    /// Invalidate every cached evaluation on every shard at once (an
    /// epoch bump per backend, no scan). For in-place model-weight
    /// swaps behind a backend `Arc` that keeps its identity.
    pub fn invalidate_eval_cache(&self) {
        if let Some(reg) = &self.cache {
            reg.invalidate_all();
        }
    }

    /// True once [`ServeCluster::drain`] (or
    /// [`ServeCluster::shutdown`]) has been called: submits shed with
    /// [`RejectReason::Draining`].
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Sessions admitted-but-unfinished per the admission controller's
    /// accounting, summed over all models. Zero with admission disabled,
    /// and zero again once a drain has fully unwound. This is the
    /// invariant [`ServeCluster::drain`] asserts on exit.
    pub fn pending_sessions(&self) -> usize {
        self.admission.as_ref().map_or(0, |a| a.total_pending())
    }

    /// Sessions admitted and not yet finalized (direct probe of live
    /// session state, independent of admission accounting).
    pub fn in_flight(&self) -> usize {
        let mut live = self.live.lock();
        live.retain(|w| w.upgrade().is_some_and(|s| !s.is_finished()));
        live.len()
    }

    /// Graceful drain toward shutdown.
    ///
    /// Irreversibly stops admitting (subsequent submits shed with
    /// [`RejectReason::Draining`] and zero `retry_after` — clients
    /// should fail over, not wait), then lets in-flight sessions run to
    /// their budgets for up to `timeout`. Sessions still running at the
    /// deadline get [`crate::SearchTicket::cancel`]-equivalent
    /// cancellation (honored at their next scheduling slice; each
    /// resolves with status [`crate::TicketStatus::Cancelled`] and its
    /// partial result intact) and a short bounded grace period to land.
    ///
    /// Returns a [`DrainReport`]; `drained` is true iff every session
    /// finalized **and** admission accounting returned to zero — i.e.
    /// every admitted session released its pending slot, the no-leak
    /// invariant the network listener relies on.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        self.draining.store(true, Ordering::Release);
        let settled = |cluster: &Self| cluster.in_flight() == 0 && cluster.pending_sessions() == 0;
        let deadline = Instant::now() + timeout;
        while !settled(self) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Deadline passed (or timeout was zero): cancel the stragglers.
        // `request_cancel` reaches queued sessions at dispatch and
        // running ones at their next slice boundary.
        let stragglers: Vec<Arc<SessionShared>> = self
            .live
            .lock()
            .iter()
            .filter_map(|w| w.upgrade())
            .filter(|s| !s.is_finished())
            .collect();
        let cancelled = stragglers.len();
        for s in &stragglers {
            s.request_cancel();
        }
        drop(stragglers);
        let grace = Instant::now() + Duration::from_secs(5);
        while !settled(self) && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(2));
        }
        DrainReport {
            drained: settled(self),
            cancelled,
            pending_after: self.pending_sessions(),
        }
    }

    /// [`ServeCluster::drain`] with a zero timeout: stop admitting and
    /// cancel everything in flight now (still waiting the bounded grace
    /// period for cancellations to land and accounting to unwind).
    pub fn shutdown(&self) -> DrainReport {
        self.drain(Duration::ZERO)
    }
}

/// What [`ServeCluster::drain`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every in-flight session finalized and admission accounting
    /// returned to zero — the cluster is safe to drop with no session
    /// resolving as a surprise cancellation.
    pub drained: bool,
    /// Sessions still running at the deadline that were force-cancelled.
    pub cancelled: usize,
    /// Admission pending count at exit (0 when `drained`).
    pub pending_after: usize,
}
