//! Backend health: retry with backoff, circuit breaking, and the
//! registry that shares both across a cluster's shards.
//!
//! Every session's evaluator is wrapped in a [`ResilientEvaluator`]
//! before it reaches the coalescing/caching layers. The wrapper calls
//! the fallible [`BatchEvaluator::try_evaluate_batch`] entry point,
//! retries *transient* failures with capped exponential backoff plus
//! deterministic jitter, and feeds every attempt's outcome to the
//! backend's [`CircuitBreaker`]. A backend that keeps failing trips its
//! breaker: subsequent calls fail fast with
//! [`SearchError::BackendUnavailable`] (no retry storm against a dead
//! model), cluster admission sheds new sessions for that backend with
//! an honest `retry_after`, and after a cooldown a single **probe**
//! call decides whether the breaker closes again.
//!
//! Fault-free cost: one atomic load per batch on the happy path — no
//! locks, no allocation, bit-identical results.

use crate::jittered;
use mcts::{BatchEvaluator, EvalError, EvalOutput, SearchError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Public state of a backend's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow through (failures are being counted).
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe call is in flight; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

const ST_CLOSED: u8 = 0;
const ST_OPEN: u8 = 1;
const ST_HALF_OPEN: u8 = 2;

/// Per-backend failure accounting with closed → open → half-open
/// recovery (see module docs). All methods are lock-free on the happy
/// path.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: AtomicU8,
    /// Consecutive failures while closed.
    failures: AtomicU32,
    /// When the breaker last opened (read only off the happy path).
    opened_at: Mutex<Option<Instant>>,
    /// Lifetime closed→open transitions (including half-open re-opens).
    opens: AtomicU64,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: AtomicU8::new(ST_CLOSED),
            failures: AtomicU32::new(0),
            opened_at: Mutex::new(None),
            opens: AtomicU64::new(0),
        }
    }

    /// Current state, for observability (racy by nature).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            ST_OPEN => BreakerState::Open,
            ST_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Lifetime number of times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Remaining cooldown if the breaker is open; `None` otherwise (or
    /// once a probe may already flow).
    pub fn retry_after(&self) -> Option<Duration> {
        if self.state.load(Ordering::Acquire) == ST_CLOSED {
            return None;
        }
        let opened = (*self.opened_at.lock())?;
        let elapsed = opened.elapsed();
        (elapsed < self.cooldown).then(|| self.cooldown - elapsed)
    }

    /// Admission-side gate: `Err(remaining)` while the breaker is open
    /// and cooling down — new sessions for this backend should be shed.
    /// `Ok` when closed, **and** when a probe could flow (the admitted
    /// session carries the probe).
    pub(crate) fn check(&self) -> Result<(), Duration> {
        match self.state.load(Ordering::Acquire) {
            ST_CLOSED => Ok(()),
            _ => match self.retry_after() {
                Some(remaining) => Err(remaining),
                None => Ok(()),
            },
        }
    }

    /// Call-side gate: decide whether this evaluation attempt may reach
    /// the backend. `Err(retry_after)` fails fast; at most one caller
    /// wins the half-open probe slot per cooldown.
    fn admit_call(&self) -> Result<(), Duration> {
        loop {
            match self.state.load(Ordering::Acquire) {
                ST_CLOSED => return Ok(()),
                ST_HALF_OPEN => return Err(self.probe_backoff()),
                _ => {
                    if let Some(remaining) = self.retry_after() {
                        return Err(remaining);
                    }
                    // Cooldown elapsed: race for the single probe slot.
                    if self
                        .state
                        .compare_exchange(
                            ST_OPEN,
                            ST_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return Ok(());
                    }
                    // Lost the race: loop re-reads the new state.
                }
            }
        }
    }

    /// Hint for callers bounced while a probe is in flight.
    fn probe_backoff(&self) -> Duration {
        self.cooldown.max(Duration::from_millis(1)) / 4
    }

    /// Record a successful backend call.
    pub(crate) fn record_success(&self) {
        // Happy path: closed with a clean failure count — nothing to do.
        if self.state.load(Ordering::Acquire) == ST_CLOSED
            && self.failures.load(Ordering::Relaxed) == 0
        {
            return;
        }
        self.failures.store(0, Ordering::Relaxed);
        self.state.store(ST_CLOSED, Ordering::Release);
    }

    /// Record a failed backend call (typed error or panic).
    pub(crate) fn record_failure(&self) {
        match self.state.load(Ordering::Acquire) {
            ST_HALF_OPEN => {
                // The probe failed: straight back to open, new cooldown.
                *self.opened_at.lock() = Some(Instant::now());
                self.state.store(ST_OPEN, Ordering::Release);
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
            ST_OPEN => {}
            _ => {
                let f = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
                if f >= self.threshold {
                    *self.opened_at.lock() = Some(Instant::now());
                    // Only trip once per burst of racing failures.
                    if self
                        .state
                        .compare_exchange(ST_CLOSED, ST_OPEN, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.opens.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Retry/backoff/breaker knobs shared by every backend of a service (or
/// of a whole cluster, via the shared [`HealthRegistry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HealthConfig {
    pub retry_budget: u32,
    pub backoff_base: Duration,
    pub breaker_threshold: u32,
    pub breaker_cooldown: Duration,
}

/// One breaker per live backend, keyed by the backend `Arc`'s address
/// with a `Weak` liveness handle (same scheme as the cache registry and
/// admission table: dead entries are evicted on later lookups, and a
/// reused address gets a **fresh** breaker, never a dead model's
/// failure history).
/// One registry row: backend key (the evaluator `Arc` address), a
/// liveness/anti-aliasing handle, and that backend's breaker.
type HealthEntry = (usize, Weak<dyn BatchEvaluator>, Arc<CircuitBreaker>);

pub(crate) struct HealthRegistry {
    cfg: HealthConfig,
    entries: Mutex<Vec<HealthEntry>>,
}

impl HealthRegistry {
    pub(crate) fn new(cfg: HealthConfig) -> Self {
        HealthRegistry {
            cfg,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The breaker guarding `backend`, created on first sight.
    pub(crate) fn breaker_for(&self, backend: &Arc<dyn BatchEvaluator>) -> Arc<CircuitBreaker> {
        let key = Arc::as_ptr(backend) as *const () as usize;
        let mut entries = self.entries.lock();
        entries.retain(|(_, w, _)| w.strong_count() > 0);
        if let Some((_, _, b)) = entries.iter().find(|(k, _, _)| *k == key) {
            return Arc::clone(b);
        }
        let b = Arc::new(CircuitBreaker::new(
            self.cfg.breaker_threshold,
            self.cfg.breaker_cooldown,
        ));
        entries.push((key, Arc::downgrade(backend), Arc::clone(&b)));
        b
    }

    /// Wrap `backend` in a [`ResilientEvaluator`] sharing its breaker.
    pub(crate) fn resilient(&self, backend: Arc<dyn BatchEvaluator>) -> Arc<dyn BatchEvaluator> {
        let breaker = self.breaker_for(&backend);
        Arc::new(ResilientEvaluator {
            inner: backend,
            breaker,
            retry_budget: self.cfg.retry_budget,
            backoff_base: self.cfg.backoff_base,
            attempt_seq: AtomicU64::new(0),
        })
    }
}

/// The retry/breaker wrapper installed around every session's backend
/// (under the coalescing layer, so one retry re-runs the whole shared
/// batch and one breaker verdict covers all coalesced sessions).
///
/// Failure protocol: typed faults leave `evaluate_batch` as
/// [`SearchError`] panic payloads ([`std::panic::panic_any`]) — the
/// serve supervisor catches them at the worker boundary and fails the
/// ticket with the typed error. Infallible backends never take any of
/// these paths.
pub(crate) struct ResilientEvaluator {
    inner: Arc<dyn BatchEvaluator>,
    breaker: Arc<CircuitBreaker>,
    retry_budget: u32,
    backoff_base: Duration,
    /// Jitter salt: decorrelates concurrent sessions' backoff sleeps.
    attempt_seq: AtomicU64,
}

impl ResilientEvaluator {
    fn run(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) -> Result<(), SearchError> {
        let mut last: Option<EvalError> = None;
        for attempt in 0..=self.retry_budget {
            if let Err(retry_after) = self.breaker.admit_call() {
                return Err(SearchError::BackendUnavailable {
                    retry_after: Some(retry_after),
                });
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.inner.try_evaluate_batch(inputs, out)
            }));
            match outcome {
                Ok(Ok(())) => {
                    self.breaker.record_success();
                    return Ok(());
                }
                Ok(Err(e)) => {
                    self.breaker.record_failure();
                    let retryable = e.transient && attempt < self.retry_budget;
                    last = Some(e);
                    if !retryable {
                        break;
                    }
                    // Capped exponential backoff with jitter: base·2^n,
                    // never more than 32× base or 250 ms.
                    let exp = self
                        .backoff_base
                        .saturating_mul(1u32 << attempt.min(5))
                        .min(Duration::from_millis(250));
                    let salt = self.attempt_seq.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(jittered(exp, salt, 1.0));
                }
                Err(payload) => {
                    // A panicking backend counts against the breaker,
                    // then propagates (no retry into unknown state).
                    self.breaker.record_failure();
                    std::panic::resume_unwind(payload);
                }
            }
        }
        Err(SearchError::EvaluatorFailed {
            reason: last.map_or_else(|| "unknown".to_string(), |e| e.reason),
        })
    }
}

impl BatchEvaluator for ResilientEvaluator {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        if let Err(e) = self.run(inputs, out) {
            std::panic::panic_any(e);
        }
    }

    fn try_evaluate_batch(
        &self,
        inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        self.run(inputs, out).map_err(|e| match e {
            SearchError::EvaluatorFailed { reason } => EvalError::permanent(reason),
            other => EvalError::permanent(other.to_string()),
        })
    }

    fn preferred_batch(&self) -> usize {
        self.inner.preferred_batch()
    }

    fn coalesces_internally(&self) -> bool {
        self.inner.coalesces_internally()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcts::UniformEvaluator;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let b = breaker(3, 20);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.check().is_ok());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.check().is_err(), "open breaker sheds");
        assert!(b.retry_after().unwrap() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe may flow.
        assert!(b.check().is_ok(), "probe-eligible breaker admits");
        assert!(b.admit_call().is_ok(), "first caller wins the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit_call().is_err(), "second caller bounced");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let b = breaker(1, 15);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.admit_call().is_ok());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
        assert!(b.retry_after().is_some(), "cooldown restarted");
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let b = breaker(3, 10);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn registry_gives_fresh_breakers_per_backend_and_evicts_dead() {
        let reg = HealthRegistry::new(HealthConfig {
            retry_budget: 1,
            backoff_base: Duration::from_millis(1),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(60),
        });
        let a: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let b: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let ba = reg.breaker_for(&a);
        ba.record_failure();
        assert_eq!(reg.breaker_for(&a).state(), BreakerState::Open);
        assert_eq!(
            reg.breaker_for(&b).state(),
            BreakerState::Closed,
            "independent backends, independent breakers"
        );
        drop(a);
        // Dead entry evicted on the next lookup; a new backend landing
        // on the same address (not forced here) would get a fresh one.
        let _ = reg.breaker_for(&b);
        assert_eq!(reg.entries.lock().len(), 1);
    }

    struct FlakyEvaluator {
        fail_first: AtomicU32,
    }
    impl BatchEvaluator for FlakyEvaluator {
        fn input_len(&self) -> usize {
            4
        }
        fn action_space(&self) -> usize {
            2
        }
        fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
            self.try_evaluate_batch(inputs, out).unwrap();
        }
        fn try_evaluate_batch(
            &self,
            _inputs: &[&[f32]],
            out: &mut [EvalOutput],
        ) -> Result<(), EvalError> {
            let left = self.fail_first.load(Ordering::Relaxed);
            if left > 0 {
                self.fail_first.store(left - 1, Ordering::Relaxed);
                return Err(EvalError::transient("flaky"));
            }
            for o in out.iter_mut() {
                o.priors = vec![0.5, 0.5];
                o.value = 0.0;
            }
            Ok(())
        }
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let reg = HealthRegistry::new(HealthConfig {
            retry_budget: 2,
            backoff_base: Duration::from_micros(100),
            breaker_threshold: 10,
            breaker_cooldown: Duration::from_millis(50),
        });
        let flaky: Arc<dyn BatchEvaluator> = Arc::new(FlakyEvaluator {
            fail_first: AtomicU32::new(2),
        });
        let resilient = reg.resilient(Arc::clone(&flaky));
        let input = [0.0f32; 4];
        let mut out = [EvalOutput::default()];
        // 2 failures then success — inside the 2-retry budget.
        resilient
            .try_evaluate_batch(&[&input], &mut out)
            .expect("retries must absorb the transient failures");
        assert_eq!(out[0].priors, vec![0.5, 0.5]);
        assert_eq!(
            reg.breaker_for(&flaky).state(),
            BreakerState::Closed,
            "success closed the streak"
        );
    }

    #[test]
    fn exhausted_retries_fail_typed_and_feed_the_breaker() {
        let reg = HealthRegistry::new(HealthConfig {
            retry_budget: 1,
            backoff_base: Duration::from_micros(100),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
        });
        let dead: Arc<dyn BatchEvaluator> = Arc::new(FlakyEvaluator {
            fail_first: AtomicU32::new(u32::MAX),
        });
        let resilient = reg.resilient(Arc::clone(&dead));
        let input = [0.0f32; 4];
        let mut out = [EvalOutput::default()];
        let err = resilient
            .try_evaluate_batch(&[&input], &mut out)
            .unwrap_err();
        assert!(err.reason.contains("flaky"));
        // 2 attempts (1 + 1 retry) ≥ threshold 2: breaker is open and
        // the next call fails fast as BackendUnavailable.
        assert_eq!(reg.breaker_for(&dead).state(), BreakerState::Open);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            resilient.evaluate_batch(&[&input], &mut out)
        }))
        .unwrap_err();
        assert!(matches!(
            SearchError::from_panic(payload.as_ref()),
            SearchError::BackendUnavailable {
                retry_after: Some(_)
            }
        ));
    }
}
