//! Multi-session, multi-shard search serving.
//!
//! The `mcts` crate made search a resumable, schedulable unit
//! ([`mcts::SearchScheme::begin`] / [`mcts::SearchScheme::step`] /
//! [`mcts::SearchScheme::partial_result`] /
//! [`mcts::SearchScheme::cancel`]). This crate turns that unit into a
//! serving system, in two layers:
//!
//! # Layer 1: [`SearchService`] — many sessions, one worker pool
//!
//! * Accepts [`SearchRequest`]s (game state, scheme choice,
//!   [`mcts::Budget`], [`Priority`]) and returns a clonable
//!   [`SearchTicket`] with `poll`/`wait`/`cancel`, **anytime partial
//!   results** (each snapshot carries a sequence number in
//!   `stats.seq`), and **push-style streaming** via
//!   [`SearchTicket::subscribe`] — a [`ResultStream`] delivers every
//!   fresh snapshot and the final result without polling;
//! * sessions are stepped in slices of [`ServeConfig::step_quota`]
//!   playouts by a **weighted-fair stride scheduler**: each
//!   [`Priority`] class gets scheduling slices in proportion to its
//!   [`ServeConfig::class_weights`] weight (earliest-deadline-first
//!   within a class), so high-priority traffic is favored without ever
//!   starving background work, and dispatch stays O(log n) at tens of
//!   thousands of sessions;
//! * `Serial`-scheme sessions run on **pooled, warmed
//!   [`mcts::ReusableSearch`] instances**: a finished session's arena
//!   (bounded by [`mcts::MctsConfig::max_nodes`]) is reset in place and
//!   handed to the next session, so steady-state serving does not grow
//!   tree memory per request;
//! * every session's leaf evaluations are funneled through **one shared
//!   [`mcts::CoalescingEvaluator`] per distinct backend**, so concurrent
//!   sessions fill each other's inference batches — cross-session
//!   batching, the serving analogue of the paper's §3.3 request queue.
//!
//! # Layer 2: [`ServeCluster`] — many services, one front door
//!
//! A [`ServeCluster`] owns N service shards and adds what a single
//! service cannot provide:
//!
//! * **admission control & load shedding**
//!   ([`AdmissionController`]): a per-model token bucket on admitted
//!   playouts, a bounded pending-session count, and byte quotas on the
//!   arena memory each session would reserve (per session and per
//!   model); overflow gets an explicit [`Rejection`] with a
//!   `retry_after` hint instead of a spot in an unbounded queue;
//! * **placement** ([`PlacementPolicy`]): least-loaded routing by
//!   outstanding playout budget, with backend affinity so same-model
//!   sessions land where that model's coalescing layer already lives.
//!
//! # Quickstart
//!
//! One service, one request, streamed results:
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Budget, UniformEvaluator};
//! use serve::{SearchRequest, SearchService, ServeConfig, StreamItem};
//! use std::sync::Arc;
//!
//! let service = SearchService::new(ServeConfig::default());
//! let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
//! let ticket = service.submit(
//!     SearchRequest::new(TicTacToe::new(), eval).budget(Budget::playouts(64)),
//! );
//! let mut last_seq = 0;
//! for item in ticket.subscribe() {
//!     match item {
//!         StreamItem::Partial(snap) => {
//!             assert!(snap.stats.seq > last_seq, "snapshots arrive in order");
//!             last_seq = snap.stats.seq;
//!         }
//!         StreamItem::Final(result, _status) => {
//!             assert_eq!(result.stats.playouts, 64);
//!         }
//!     }
//! }
//! ```
//!
//! A sharded cluster with admission control — overload is shed, not
//! queued:
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Budget, UniformEvaluator};
//! use serve::{
//!     AdmissionConfig, ClusterConfig, SearchRequest, ServeCluster, ServeConfig,
//! };
//! use std::sync::Arc;
//!
//! let cluster = ServeCluster::new(ClusterConfig {
//!     shards: 2,
//!     shard: ServeConfig { workers: 2, ..Default::default() },
//!     admission: Some(AdmissionConfig {
//!         playouts_per_sec: 1000.0,
//!         burst_playouts: 200,
//!         max_pending: 64,
//!         ..Default::default()
//!     }),
//! });
//! let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
//! let first = cluster.submit(
//!     SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
//!         .budget(Budget::playouts(150)),
//! );
//! assert!(first.is_ok(), "within the 200-playout burst");
//! let second = cluster.submit(
//!     SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
//!         .budget(Budget::playouts(150)),
//! );
//! let rejection = second.expect_err("bucket drained: shed, not queued");
//! assert!(rejection.retry_after.as_secs_f64() > 0.0);
//! first.unwrap().wait();
//! ```

mod admission;
mod cluster;
mod evalcache;
mod health;
mod scheduler;
mod service;
mod session;
mod supervisor;

pub use admission::{AdmissionConfig, AdmissionController, RejectReason, Rejection};
pub use cluster::{
    AffinityLeastLoaded, ClusterConfig, ClusterStats, ClusterTicket, DrainReport, LeastLoaded,
    PlacementPolicy, ServeCluster,
};
pub use health::{BreakerState, CircuitBreaker};
pub use service::{SearchService, ServeConfig, ServiceStats};
pub use session::{ResultStream, SearchTicket, StreamItem, TicketStatus, WaitOutcome};

use games::Game;
use mcts::{BatchEvaluator, Budget, MctsConfig, Scheme};
use std::sync::Arc;
use std::time::Duration;

/// Deterministically jitter `base` upward by up to `spread`× of itself:
/// the result lies in `[base, base·(1+spread))`, keyed by `salt`
/// (splitmix64 — no global RNG, reproducible under a fixed salt
/// sequence). Shedding and retry layers use this so that a burst of
/// clients rejected at the same instant does not come back as a
/// synchronized thundering herd.
pub(crate) fn jittered(base: Duration, salt: u64, spread: f64) -> Duration {
    let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(1.0 + spread * unit)
}

/// Scheduling priority of a session. The weighted-fair scheduler grants
/// each class slices in proportion to its
/// [`ServeConfig::class_weights`] weight — higher classes are favored,
/// lower classes are never starved; within a class, earlier deadlines
/// win and deadline-free sessions round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work (analysis, prefetching).
    Low,
    /// Interactive default.
    #[default]
    Normal,
    /// Latency-critical requests.
    High,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 3;

    /// Class index into weight tables: `[Low, Normal, High]`.
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

/// The admitted playout budget of a session: what admission meters and
/// placement balances. A request bounded only by wall-clock time is
/// costed at its configured playout ceiling (the paper's iteration
/// budget remains the upper bound on work).
pub(crate) fn session_cost(budget: &Budget, config: &MctsConfig) -> u64 {
    budget.playouts.unwrap_or(config.playouts as u64).max(1)
}

/// One search request: a root state plus how to search it and how much.
pub struct SearchRequest<G: Game> {
    /// The state to search from.
    pub root: G,
    /// Which scheme executes the session. `Serial` (the default) runs on
    /// a pooled warmed [`mcts::ReusableSearch`]; other schemes are built
    /// per session via [`mcts::SearchBuilder`].
    pub scheme: Scheme,
    /// Hyper-parameters for the session.
    pub config: MctsConfig,
    /// Playout/deadline/memory budget (fields left `None` inherit from
    /// `config`). The deadline clock starts at submission.
    pub budget: Budget,
    /// Scheduling priority.
    pub priority: Priority,
    /// Leaf evaluator. Submitting the **same** `Arc` across requests
    /// lets the service funnel their evaluations through one shared
    /// coalescing layer (and lets a cluster route them to the same
    /// shard), filling cross-session batches.
    pub evaluator: Arc<dyn BatchEvaluator>,
}

impl<G: Game> SearchRequest<G> {
    /// A request with default scheme (`Serial`), config, budget and
    /// priority.
    pub fn new(root: G, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        SearchRequest {
            root,
            scheme: Scheme::Serial,
            config: MctsConfig::default(),
            budget: Budget::default(),
            priority: Priority::Normal,
            evaluator,
        }
    }

    /// Set the executing scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the session hyper-parameters.
    pub fn config(mut self, config: MctsConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the session budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}
