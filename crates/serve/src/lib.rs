//! Multi-session search serving.
//!
//! The `mcts` crate made search a resumable, schedulable unit
//! ([`mcts::SearchScheme::begin`] / [`mcts::SearchScheme::step`] /
//! [`mcts::SearchScheme::partial_result`] /
//! [`mcts::SearchScheme::cancel`]). This crate multiplexes **many
//! concurrent search sessions** over a fixed pool of worker threads on
//! top of that unit — the serving front end the ROADMAP's
//! "heavy traffic" north star asks for:
//!
//! * [`SearchService`] accepts [`SearchRequest`]s (game state, scheme
//!   choice, [`mcts::Budget`], [`Priority`]) and returns a
//!   [`SearchTicket`] handle with `poll`/`wait`/`cancel` plus **anytime
//!   partial results** — a caller can take the best move found so far at
//!   any moment;
//! * sessions are stepped in slices of
//!   [`ServeConfig::step_quota`] playouts by `workers` threads,
//!   highest priority first, then earliest deadline, then round-robin
//!   (each slice re-queues behind its peers), so thousands of sessions
//!   share a handful of threads instead of one thread per request;
//! * `Serial`-scheme sessions run on **pooled, warmed
//!   [`mcts::ReusableSearch`] instances**: a finished session's arena
//!   (bounded by [`mcts::MctsConfig::max_nodes`]) is reset in place and
//!   handed to the next session, so steady-state serving does not grow
//!   tree memory per request;
//! * every session's leaf evaluations are funneled through **one shared
//!   [`mcts::CoalescingEvaluator`] per distinct backend**, so concurrent
//!   sessions fill each other's inference batches — cross-session
//!   batching, the serving analogue of the paper's §3.3 request queue.
//!   [`SearchService::stats`] reports the realized mean batch size.
//!
//! # Quickstart
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Budget, UniformEvaluator};
//! use serve::{SearchRequest, SearchService, ServeConfig};
//! use std::sync::Arc;
//!
//! let service = SearchService::new(ServeConfig::default());
//! let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
//! let ticket = service.submit(
//!     SearchRequest::new(TicTacToe::new(), eval).budget(Budget::playouts(64)),
//! );
//! let result = ticket.wait();
//! assert_eq!(result.stats.playouts, 64);
//! ```

mod service;
mod session;

pub use service::{SearchService, ServeConfig, ServiceStats};
pub use session::{SearchTicket, TicketStatus};

use games::Game;
use mcts::{BatchEvaluator, Budget, MctsConfig, Scheme};
use std::sync::Arc;

/// Scheduling priority of a session. Higher priorities are always
/// stepped before lower ones; within a priority, earlier deadlines win
/// and deadline-free sessions round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work (analysis, prefetching).
    Low,
    /// Interactive default.
    #[default]
    Normal,
    /// Latency-critical requests.
    High,
}

/// One search request: a root state plus how to search it and how much.
pub struct SearchRequest<G: Game> {
    /// The state to search from.
    pub root: G,
    /// Which scheme executes the session. `Serial` (the default) runs on
    /// a pooled warmed [`mcts::ReusableSearch`]; other schemes are built
    /// per session via [`mcts::SearchBuilder`].
    pub scheme: Scheme,
    /// Hyper-parameters for the session.
    pub config: MctsConfig,
    /// Playout/deadline/memory budget (fields left `None` inherit from
    /// `config`). The deadline clock starts at submission.
    pub budget: Budget,
    /// Scheduling priority.
    pub priority: Priority,
    /// Leaf evaluator. Submitting the **same** `Arc` across requests
    /// lets the service funnel their evaluations through one shared
    /// coalescing layer, filling cross-session batches.
    pub evaluator: Arc<dyn BatchEvaluator>,
}

impl<G: Game> SearchRequest<G> {
    /// A request with default scheme (`Serial`), config, budget and
    /// priority.
    pub fn new(root: G, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        SearchRequest {
            root,
            scheme: Scheme::Serial,
            config: MctsConfig::default(),
            budget: Budget::default(),
            priority: Priority::Normal,
            evaluator,
        }
    }

    /// Set the executing scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the session hyper-parameters.
    pub fn config(mut self, config: MctsConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the session budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}
