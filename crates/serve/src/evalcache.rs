//! Service-wide evaluation-cache registry: one [`EvalCache`] per
//! distinct backend evaluator, shared by every session (and, under a
//! [`crate::ServeCluster`], every shard) that submits that backend.
//!
//! The registry mirrors the coalescer registry in `service.rs`: caches
//! are keyed by the backend `Arc`'s address, pinned against address
//! reuse by a `Weak` handle, and evicted once no live session holds the
//! backend. Two cache-specific twists:
//!
//! * **Address reuse bumps the epoch, not the allocation.** When a key
//!   matches but its previous backend is dead, a *different* model now
//!   lives at that address: the cache's epoch is bumped — an O(1)
//!   invalidation that makes every stale entry unreachable — and the
//!   warmed slot memory is reused for the new model. This is the
//!   model-swap path: swap weights behind the same slot, keep the
//!   allocation, lose the stale answers.
//! * **Retired counters drop their bytes.** A dead backend's cache is
//!   freed with it; its hit/miss/eviction counters fold into `retired`
//!   so [`CacheRegistry::stats`] stays monotone, but its resident bytes
//!   do not (the memory is gone).

use mcts::{BatchEvaluator, CacheStats, EvalCache, EvalCacheConfig};
use parking_lot::Mutex;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// One backend's cache record: key (the backend `Arc` address), a
/// liveness/anti-aliasing handle, and the cache itself.
struct CacheEntry {
    key: usize,
    handle: Weak<dyn BatchEvaluator>,
    cache: Arc<EvalCache>,
}

/// Per-backend [`EvalCache`] registry (see module docs). A
/// [`crate::SearchService`] owns one when
/// [`crate::ServeConfig::eval_cache_bytes`] is set; a
/// [`crate::ServeCluster`] owns one *shared across all shards*, so a
/// position evaluated on shard 0 is a hit on shard 3.
pub(crate) struct CacheRegistry {
    /// Per-backend byte budget handed to each created cache.
    bytes: usize,
    /// Entry TTL handed to each created cache.
    ttl: Option<Duration>,
    entries: Mutex<Vec<CacheEntry>>,
    /// Counters of evicted caches (bytes zeroed — their memory is
    /// freed), keeping [`CacheRegistry::stats`] monotone.
    retired: Mutex<CacheStats>,
}

impl CacheRegistry {
    pub(crate) fn new(bytes: usize, ttl: Option<Duration>) -> Self {
        CacheRegistry {
            bytes,
            ttl,
            entries: Mutex::new(Vec::new()),
            retired: Mutex::new(CacheStats::default()),
        }
    }

    /// The cache for `backend`, created on first sight. Reuses a dead
    /// predecessor's allocation at the same address via an epoch bump
    /// (model swap); recreates only if the action space changed.
    pub(crate) fn cache_for(&self, backend: &Arc<dyn BatchEvaluator>) -> Arc<EvalCache> {
        let key = Arc::as_ptr(backend) as *const () as usize;
        let mut reg = self.entries.lock();
        if let Some(pos) = reg.iter().position(|e| e.key == key) {
            if reg[pos].cache.action_space() == backend.action_space() {
                let e = &mut reg[pos];
                if e.handle.strong_count() == 0 {
                    // Address reuse: a different model lives here now.
                    e.cache.bump_epoch();
                    e.handle = Arc::downgrade(backend);
                }
                return Arc::clone(&e.cache);
            }
            // Same address, different game: the fixed-entry layout
            // cannot be reused — retire and fall through to recreate.
            let dead = reg.remove(pos);
            self.retire(&dead.cache);
        } else {
            // Evict caches of dead backends so a long-lived service
            // seeing per-request models does not pin their memory.
            let mut dead = Vec::new();
            reg.retain(|e| {
                if e.handle.strong_count() > 0 {
                    return true;
                }
                dead.push(Arc::clone(&e.cache));
                false
            });
            for c in dead {
                self.retire(&c);
            }
        }
        let cache = Arc::new(EvalCache::new(
            EvalCacheConfig {
                capacity_bytes: self.bytes,
                ttl: self.ttl,
                ..EvalCacheConfig::default()
            },
            backend.action_space(),
        ));
        reg.push(CacheEntry {
            key,
            handle: Arc::downgrade(backend),
            cache: Arc::clone(&cache),
        });
        cache
    }

    /// Fold a freed cache's counters into the retired bucket. Bytes are
    /// dropped: the allocation no longer exists.
    fn retire(&self, cache: &EvalCache) {
        let mut s = cache.stats();
        s.bytes = 0;
        self.retired.lock().merge(&s);
    }

    /// Aggregate counters over every cache this registry ever created
    /// (monotone except `bytes`, which tracks live residency).
    pub(crate) fn stats(&self) -> CacheStats {
        let mut out = *self.retired.lock();
        for e in self.entries.lock().iter() {
            out.merge(&e.cache.stats());
        }
        out
    }

    /// Bump every live cache's epoch: all cached evaluations become
    /// unreachable at once. The hook for in-place model-weight updates,
    /// where the backend `Arc` (and thus its address key) survives the
    /// swap.
    pub(crate) fn invalidate_all(&self) {
        for e in self.entries.lock().iter() {
            e.cache.bump_epoch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcts::UniformEvaluator;

    fn backend(actions: usize) -> Arc<dyn BatchEvaluator> {
        Arc::new(UniformEvaluator::new(4 * actions, actions))
    }

    #[test]
    fn same_backend_gets_same_cache() {
        let reg = CacheRegistry::new(1 << 20, None);
        let b = backend(9);
        let c1 = reg.cache_for(&b);
        let c2 = reg.cache_for(&b);
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    fn distinct_backends_get_distinct_caches() {
        let reg = CacheRegistry::new(1 << 20, None);
        let (a, b) = (backend(9), backend(9));
        let ca = reg.cache_for(&a);
        let cb = reg.cache_for(&b);
        assert!(!Arc::ptr_eq(&ca, &cb));
    }

    #[test]
    fn address_reuse_bumps_epoch_and_keeps_allocation() {
        let reg = CacheRegistry::new(1 << 20, None);
        let b = backend(9);
        let c1 = reg.cache_for(&b);
        c1.insert(42, &[1.0 / 9.0; 9], 0.25);
        let epoch_before = c1.epoch();
        // Simulate address reuse: drop the backend, then hand the
        // registry a new one at (we pretend) the same key by reusing
        // the same entry through a direct second call after the drop.
        drop(b);
        // The registry cannot know the new Arc landed on the same
        // address in a test, so poke the path directly: find the entry
        // via a fresh backend only if the allocator reused the address.
        // Instead, assert the observable contract on the same cache:
        // bump_epoch makes the old entry unreachable.
        c1.bump_epoch();
        assert!(c1.epoch() > epoch_before);
        let mut out = mcts::EvalOutput::default();
        assert!(!c1.get(42, &mut out), "stale epoch entry must miss");
    }

    #[test]
    fn retired_counters_survive_eviction_without_bytes() {
        let reg = CacheRegistry::new(1 << 20, None);
        let b = backend(9);
        let c = reg.cache_for(&b);
        c.insert(7, &[1.0 / 9.0; 9], 0.0);
        let mut out = mcts::EvalOutput::default();
        assert!(c.get(7, &mut out));
        assert!(reg.stats().bytes > 0);
        drop(b);
        drop(c);
        // A fresh backend triggers dead-entry eviction.
        let other = backend(9);
        let _c2 = reg.cache_for(&other);
        let s = reg.stats();
        assert_eq!(s.hits, 1, "evicted cache's hits carry over");
        assert_eq!(s.inserts, 1);
    }

    #[test]
    fn invalidate_all_clears_every_backend() {
        let reg = CacheRegistry::new(1 << 20, None);
        let (a, b) = (backend(9), backend(7));
        let ca = reg.cache_for(&a);
        let cb = reg.cache_for(&b);
        ca.insert(1, &[1.0 / 9.0; 9], 0.0);
        cb.insert(2, &[1.0 / 7.0; 7], 0.0);
        reg.invalidate_all();
        let mut out = mcts::EvalOutput::default();
        assert!(!ca.get(1, &mut out));
        assert!(!cb.get(2, &mut out));
    }
}
