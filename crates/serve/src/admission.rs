//! Per-model admission control and load shedding.
//!
//! A serving cluster that accepts every request degrades for everyone at
//! once: queues grow without bound, deadlines blow through, and memory
//! follows the backlog. [`AdmissionController`] instead bounds what each
//! *model* (evaluator backend) may have in flight and sheds the
//! overflow **explicitly** — a rejected request gets a
//! [`Rejection`] with a [`retry_after`](Rejection::retry_after) hint
//! instead of a place in an unbounded queue.
//!
//! Gates, all keyed per model:
//!
//! * a **token bucket on admitted playouts**: a session costing `c`
//!   playouts is admitted only if the bucket holds `c` tokens; tokens
//!   refill at [`AdmissionConfig::playouts_per_sec`] up to
//!   [`AdmissionConfig::burst_playouts`]. This caps the sustained
//!   compute a model may consume no matter how many sessions carry it.
//! * a **bounded pending count**: at most
//!   [`AdmissionConfig::max_pending`] sessions may be
//!   admitted-but-unfinished at once. This caps queue depth (and the
//!   memory behind it) even when each session is tiny.
//! * **byte quotas** making arena memory a co-equal admitted resource:
//!   a per-session cap ([`AdmissionConfig::session_byte_quota`],
//!   terminal like [`RejectReason::TooLarge`]) and a per-model gauge
//!   ([`AdmissionConfig::model_byte_budget`]) that reserves each
//!   admitted session's worst-case arena bytes and returns them on
//!   release; a full gauge sheds with the transient
//!   [`RejectReason::OverMemory`].
//!
//! ```
//! use serve::{AdmissionConfig, AdmissionController, RejectReason};
//!
//! let adm = AdmissionController::new(AdmissionConfig {
//!     playouts_per_sec: 1000.0,
//!     burst_playouts: 600,
//!     max_pending: 8,
//!     ..Default::default()
//! });
//! let model_key = 7; // cluster derives this from the evaluator identity
//! assert!(adm.try_admit(model_key, 512).is_ok()); // within the burst
//! let shed = adm.try_admit(model_key, 512).unwrap_err(); // bucket drained
//! assert_eq!(shed.reason, RejectReason::RateLimited);
//! assert!(shed.retry_after.as_secs_f64() > 0.0);
//! adm.release(model_key); // session finished: pending slot freed
//! ```

use crate::jittered;
use mcts::BatchEvaluator;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Per-model admission limits (see module docs). The same limits apply
/// to every model served by a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained admitted playouts per second per model: the token
    /// bucket's refill rate. Must be positive and finite.
    pub playouts_per_sec: f64,
    /// Token-bucket capacity in playouts: the largest burst admitted
    /// from a full bucket before rate limiting engages.
    pub burst_playouts: u64,
    /// Maximum sessions admitted-but-unfinished per model at once (the
    /// bounded pending queue). Overflow is shed with
    /// [`RejectReason::QueueFull`].
    pub max_pending: usize,
    /// Largest worst-case arena footprint (bytes) a single session may
    /// ask for. Violations are terminal for that request shape
    /// ([`RejectReason::OverMemory`] with zero `retry_after` — waiting
    /// cannot shrink the request); resubmit with a smaller `max_nodes`
    /// or byte budget. `None` ⇒ no per-session cap.
    pub session_byte_quota: Option<u64>,
    /// Total arena bytes a model may have reserved across its
    /// admitted-but-unfinished sessions. Admission reserves each
    /// session's worst-case arena bytes against this gauge and the
    /// release returns them; a full gauge sheds with the *transient*
    /// [`RejectReason::OverMemory`] (a positive `retry_after` — pending
    /// sessions finishing will free bytes). `None` ⇒ unmetered.
    pub model_byte_budget: Option<u64>,
}

impl Default for AdmissionConfig {
    /// Generous defaults sized for interactive serving: 50k playouts/s
    /// sustained, 100k burst, 256 pending sessions per model, bytes
    /// unmetered.
    fn default() -> Self {
        AdmissionConfig {
            playouts_per_sec: 50_000.0,
            burst_playouts: 100_000,
            max_pending: 256,
            session_byte_quota: None,
            model_byte_budget: None,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The model's token bucket lacks the playouts this session asks
    /// for: the model is over its sustained compute budget. Transient —
    /// retrying after the hint has a fair chance.
    RateLimited,
    /// The model already has [`AdmissionConfig::max_pending`] sessions
    /// admitted and unfinished. Transient.
    QueueFull,
    /// The session's cost exceeds
    /// [`AdmissionConfig::burst_playouts`] — a full bucket could never
    /// cover it, so retrying the *same* request is pointless no matter
    /// how long the caller waits. Resubmit with a smaller playout
    /// budget (or split the work across sessions).
    TooLarge,
    /// The model's circuit breaker is open: the backend kept failing
    /// and is cooling down (see [`crate::ServeConfig::breaker_threshold`]).
    /// Transient — `retry_after` covers the remaining cooldown, after
    /// which a probe decides whether the model is healthy again.
    Unhealthy,
    /// The cluster is draining toward shutdown
    /// (see [`crate::ServeCluster::drain`]): no new work is admitted,
    /// in-flight sessions run to completion. Terminal for this cluster —
    /// `retry_after` is zero; clients should fail over to another
    /// replica rather than wait.
    Draining,
    /// An arena byte quota is exhausted. Two shapes, distinguished by
    /// `retry_after`: the session's worst-case arena bytes exceed
    /// [`AdmissionConfig::session_byte_quota`] (terminal — zero hint,
    /// resubmit smaller), or the model's reserved-byte gauge cannot fit
    /// this session under [`AdmissionConfig::model_byte_budget`]
    /// (transient — positive hint; finishing sessions return bytes).
    OverMemory,
}

/// An explicit load-shedding outcome: the request was **not** queued.
/// For the transient reasons ([`RejectReason::RateLimited`],
/// [`RejectReason::QueueFull`]), resubmitting after
/// [`retry_after`](Rejection::retry_after) has a fair chance of
/// admission (tokens refilled / pending drained). A
/// [`RejectReason::TooLarge`] rejection is permanent for that request
/// shape — `retry_after` is zero and waiting will not help.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejection {
    pub reason: RejectReason,
    /// Back-off hint: how long until the shedding gate plausibly
    /// clears. Zero for [`RejectReason::TooLarge`] (no wait helps).
    pub retry_after: Duration,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            RejectReason::RateLimited => {
                write!(
                    f,
                    "request shed (rate limited); retry after {:?}",
                    self.retry_after
                )
            }
            RejectReason::QueueFull => {
                write!(
                    f,
                    "request shed (pending queue full); retry after {:?}",
                    self.retry_after
                )
            }
            RejectReason::TooLarge => {
                write!(
                    f,
                    "request shed (cost exceeds the admission burst); lower the budget"
                )
            }
            RejectReason::Unhealthy => {
                write!(
                    f,
                    "request shed (backend circuit breaker open); retry after {:?}",
                    self.retry_after
                )
            }
            RejectReason::Draining => {
                write!(
                    f,
                    "request shed (cluster draining toward shutdown); fail over to another replica"
                )
            }
            RejectReason::OverMemory => {
                if self.retry_after.is_zero() {
                    write!(
                        f,
                        "request shed (arena bytes exceed the per-session quota); lower max_nodes or the byte budget"
                    )
                } else {
                    write!(
                        f,
                        "request shed (model arena byte budget exhausted); retry after {:?}",
                        self.retry_after
                    )
                }
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// Token-bucket + pending-count state of one model.
struct ModelState {
    key: usize,
    /// Backend liveness probe (entries registered via
    /// [`AdmissionController::try_admit_backend`]). Holding the `Weak`
    /// pins the `Arc` allocation, so a freed evaluator's address cannot
    /// be reused by a new model and silently inherit this bucket; once
    /// every strong reference is gone (and no session is pending) the
    /// entry is evicted. `None` for raw integer keys
    /// ([`AdmissionController::try_admit`]), whose lifecycle the caller
    /// owns.
    handle: Option<Weak<dyn BatchEvaluator>>,
    tokens: f64,
    last_refill: Instant,
    pending: usize,
    /// Arena bytes reserved by admitted-but-unfinished sessions (gauge:
    /// reserved on admit, returned on release — unlike the token
    /// bucket, which meters a rate, this meters co-resident footprint).
    bytes: u64,
}

/// Admission gate shared by a cluster's dispatch path (see module docs).
/// Thread-safe; one lock around a small per-model table.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    models: Mutex<Vec<ModelState>>,
    /// Salt sequence for `retry_after` jitter: hints handed to a burst
    /// of simultaneously shed clients are spread over a bounded band so
    /// they don't all come back in the same instant.
    jitter_seq: AtomicU64,
}

impl AdmissionController {
    /// # Panics
    /// If `playouts_per_sec` is not positive and finite.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(
            cfg.playouts_per_sec.is_finite() && cfg.playouts_per_sec > 0.0,
            "admission rate must be positive and finite"
        );
        AdmissionController {
            cfg,
            models: Mutex::new(Vec::new()),
            jitter_seq: AtomicU64::new(0),
        }
    }

    /// The limits this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Try to admit a session costing `cost` playouts on model `key`.
    /// `Ok(())` consumes `cost` tokens and one pending slot; the caller
    /// must [`release`](AdmissionController::release) the slot when the
    /// session finishes. `Err` sheds the request without queueing it.
    ///
    /// The caller owns the `key` space and its lifecycle (entries for
    /// raw keys are never evicted); a cluster routing by evaluator
    /// identity should use
    /// [`try_admit_backend`](AdmissionController::try_admit_backend)
    /// instead, which also handles eviction and address reuse.
    pub fn try_admit(&self, key: usize, cost: u64) -> Result<(), Rejection> {
        self.admit_at(key, None, cost, 0)
    }

    /// [`try_admit`](AdmissionController::try_admit) that also reserves
    /// `bytes` of worst-case arena footprint against the byte gates. A
    /// successful admission must be undone with
    /// [`release_bytes`](AdmissionController::release_bytes) passing the
    /// same `bytes`.
    pub fn try_admit_costed(&self, key: usize, cost: u64, bytes: u64) -> Result<(), Rejection> {
        self.admit_at(key, None, cost, bytes)
    }

    /// [`try_admit`](AdmissionController::try_admit) keyed by the
    /// backend's identity (the `Arc` address). The controller holds a
    /// `Weak` to the backend: dead models' entries (no strong refs, no
    /// pending sessions) are evicted on later admissions, so a
    /// long-lived cluster seeing per-request backends neither grows
    /// without bound nor hands a reused address a stale bucket.
    pub fn try_admit_backend(
        &self,
        backend: &Arc<dyn BatchEvaluator>,
        cost: u64,
    ) -> Result<(), Rejection> {
        let key = Arc::as_ptr(backend) as *const () as usize;
        self.admit_at(key, Some(Arc::downgrade(backend)), cost, 0)
    }

    /// [`try_admit_backend`](AdmissionController::try_admit_backend)
    /// that also reserves `bytes` against the byte gates (see
    /// [`try_admit_costed`](AdmissionController::try_admit_costed)).
    pub fn try_admit_backend_costed(
        &self,
        backend: &Arc<dyn BatchEvaluator>,
        cost: u64,
        bytes: u64,
    ) -> Result<(), Rejection> {
        let key = Arc::as_ptr(backend) as *const () as usize;
        self.admit_at(key, Some(Arc::downgrade(backend)), cost, bytes)
    }

    fn admit_at(
        &self,
        key: usize,
        handle: Option<Weak<dyn BatchEvaluator>>,
        cost: u64,
        bytes: u64,
    ) -> Result<(), Rejection> {
        let cost_f = cost.max(1) as f64;
        if cost.max(1) > self.cfg.burst_playouts {
            // A full bucket could never cover this: reject terminally
            // rather than promising a retry that can never succeed.
            return Err(Rejection {
                reason: RejectReason::TooLarge,
                retry_after: Duration::ZERO,
            });
        }
        if self.cfg.session_byte_quota.is_some_and(|q| bytes > q) {
            // Same terminal shape as TooLarge, denominated in bytes: no
            // amount of waiting shrinks this session's arena ask.
            return Err(Rejection {
                reason: RejectReason::OverMemory,
                retry_after: Duration::ZERO,
            });
        }
        let mut models = self.models.lock();
        // Evict models nothing references anymore (their `Weak` pins
        // the address until this point, so no aliasing window exists).
        models.retain(|m| m.pending > 0 || m.handle.as_ref().is_none_or(|h| h.strong_count() > 0));
        let m = match models.iter_mut().position(|m| m.key == key) {
            Some(i) => &mut models[i],
            None => {
                models.push(ModelState {
                    key,
                    handle,
                    tokens: self.cfg.burst_playouts as f64,
                    last_refill: Instant::now(),
                    pending: 0,
                    bytes: 0,
                });
                models.last_mut().unwrap()
            }
        };
        // Refill since the last decision, capped at the burst size.
        let now = Instant::now();
        let elapsed = now.duration_since(m.last_refill).as_secs_f64();
        m.last_refill = now;
        m.tokens =
            (m.tokens + elapsed * self.cfg.playouts_per_sec).min(self.cfg.burst_playouts as f64);
        if m.pending >= self.cfg.max_pending {
            // Hint: roughly the time one mean-sized session takes to
            // drain at the sustained rate.
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                retry_after: self.retry_hint(cost_f / self.cfg.playouts_per_sec),
            });
        }
        if let Some(budget) = self.cfg.model_byte_budget {
            if m.bytes.saturating_add(bytes) > budget {
                // Transient: unlike the per-session quota, the gauge
                // drains as admitted sessions finish. Hint with the
                // time one mean session takes at the sustained rate —
                // the same drain heuristic as QueueFull.
                return Err(Rejection {
                    reason: RejectReason::OverMemory,
                    retry_after: self.retry_hint(cost_f / self.cfg.playouts_per_sec),
                });
            }
        }
        if m.tokens < cost_f {
            return Err(Rejection {
                reason: RejectReason::RateLimited,
                retry_after: self.retry_hint((cost_f - m.tokens) / self.cfg.playouts_per_sec),
            });
        }
        m.tokens -= cost_f;
        m.pending += 1;
        m.bytes += bytes;
        Ok(())
    }

    /// Return the pending slot taken by an admitted session that has now
    /// finished (completed or cancelled). Consumed tokens are *not*
    /// refunded — the bucket meters admitted work, not completed work.
    pub fn release(&self, key: usize) {
        self.release_bytes(key, 0)
    }

    /// [`release`](AdmissionController::release) that also returns
    /// `bytes` to the model's byte gauge. Must be passed the same byte
    /// reservation the admission made — the gauge is a strict
    /// reserve/return pair, so every
    /// [`try_admit_costed`](AdmissionController::try_admit_costed) /
    /// [`try_admit_backend_costed`](AdmissionController::try_admit_backend_costed)
    /// admission balances to zero when its session finishes (completed,
    /// failed, cancelled, or disconnected).
    pub fn release_bytes(&self, key: usize, bytes: u64) {
        let mut models = self.models.lock();
        if let Some(m) = models.iter_mut().find(|m| m.key == key) {
            m.pending = m.pending.saturating_sub(1);
            m.bytes = m.bytes.saturating_sub(bytes);
        }
    }

    /// Models currently tracked (live backends, raw keys, and dead
    /// backends still draining pending sessions). Backend entries are
    /// evicted once dead and drained, so this stays bounded by the live
    /// model count.
    pub fn tracked_models(&self) -> usize {
        self.models.lock().len()
    }

    /// Sessions currently admitted-but-unfinished on model `key`.
    pub fn pending(&self, key: usize) -> usize {
        self.models
            .lock()
            .iter()
            .find(|m| m.key == key)
            .map_or(0, |m| m.pending)
    }

    /// Sessions admitted-but-unfinished across *all* models. Zero once a
    /// drained cluster's accounting has fully unwound (every admitted
    /// session released its slot).
    pub fn total_pending(&self) -> usize {
        self.models.lock().iter().map(|m| m.pending).sum()
    }

    /// Arena bytes currently reserved by admitted-but-unfinished
    /// sessions on model `key`.
    pub fn admitted_bytes(&self, key: usize) -> u64 {
        self.models
            .lock()
            .iter()
            .find(|m| m.key == key)
            .map_or(0, |m| m.bytes)
    }

    /// Arena bytes reserved across *all* models. Like
    /// [`total_pending`](AdmissionController::total_pending), returns to
    /// zero once every admitted session has released its reservation.
    pub fn total_admitted_bytes(&self) -> u64 {
        self.models.lock().iter().map(|m| m.bytes).sum()
    }

    /// Turn an estimated wait into an actionable, decorrelated hint:
    /// clamped to [1 ms, 60 s] (never "retry immediately" while
    /// shedding), then jittered upward by as much as 50% so a burst of
    /// clients shed together does not return as a thundering herd.
    fn retry_hint(&self, secs: f64) -> Duration {
        let base = Duration::from_secs_f64(secs.clamp(1e-3, 60.0));
        let salt = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
        jittered(base, salt, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(rate: f64, burst: u64, pending: usize) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            playouts_per_sec: rate,
            burst_playouts: burst,
            max_pending: pending,
            ..Default::default()
        })
    }

    #[test]
    fn burst_is_admitted_then_rate_limited() {
        let adm = ctl(10.0, 100, 100);
        assert!(adm.try_admit(1, 60).is_ok());
        assert!(adm.try_admit(1, 40).is_ok());
        let shed = adm.try_admit(1, 40).unwrap_err();
        assert_eq!(shed.reason, RejectReason::RateLimited);
        // ~40 tokens short at 10/s: the hint is on the order of seconds.
        assert!(shed.retry_after >= Duration::from_secs(1));
        assert!(shed.retry_after <= Duration::from_secs(60));
    }

    #[test]
    fn pending_bound_sheds_and_release_reopens() {
        let adm = ctl(1e9, 1_000_000_000, 2);
        assert!(adm.try_admit(3, 10).is_ok());
        assert!(adm.try_admit(3, 10).is_ok());
        let shed = adm.try_admit(3, 10).unwrap_err();
        assert_eq!(shed.reason, RejectReason::QueueFull);
        assert_eq!(adm.pending(3), 2);
        adm.release(3);
        assert!(adm.try_admit(3, 10).is_ok(), "slot freed by release");
    }

    #[test]
    fn retry_hints_are_jittered_within_a_bounded_band() {
        let adm = ctl(10.0, 100, 100);
        assert!(adm.try_admit(1, 100).is_ok());
        let mut hints = Vec::new();
        for _ in 0..8 {
            let shed = adm.try_admit(1, 100).unwrap_err();
            assert_eq!(shed.reason, RejectReason::RateLimited);
            hints.push(shed.retry_after);
        }
        // Deficit ≈ 100 tokens at 10/s ⇒ un-jittered hint ≈ 10 s; the
        // jitter spreads hints over [hint, 1.5·hint) so clients shed in
        // the same burst don't come back in the same instant.
        for h in &hints {
            assert!(*h >= Duration::from_secs(9), "hint near the deficit: {h:?}");
            assert!(*h <= Duration::from_secs(16), "bounded above: {h:?}");
        }
        let mut uniq = hints.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 4, "hints spread, not identical: {hints:?}");
    }

    #[test]
    fn models_are_isolated() {
        let adm = ctl(10.0, 50, 8);
        assert!(adm.try_admit(1, 50).is_ok());
        assert!(adm.try_admit(1, 1).is_err(), "model 1 drained");
        assert!(adm.try_admit(2, 50).is_ok(), "model 2 has its own bucket");
    }

    #[test]
    fn tokens_refill_over_time() {
        let adm = ctl(100_000.0, 1000, 8);
        assert!(adm.try_admit(1, 1000).is_ok());
        assert!(adm.try_admit(1, 500).is_err());
        std::thread::sleep(Duration::from_millis(20));
        assert!(adm.try_admit(1, 500).is_ok(), "refilled at 100k/s");
    }

    #[test]
    fn oversized_cost_is_terminally_rejected() {
        let adm = ctl(1000.0, 500, 8);
        let rej = adm.try_admit(1, 501).unwrap_err();
        assert_eq!(rej.reason, RejectReason::TooLarge);
        assert_eq!(
            rej.retry_after,
            Duration::ZERO,
            "no wait makes an over-burst request admissible"
        );
        // The failed attempt consumed nothing: a full-burst request
        // still fits.
        assert!(adm.try_admit(1, 500).is_ok());
    }

    #[test]
    fn session_byte_quota_is_terminal() {
        let adm = AdmissionController::new(AdmissionConfig {
            playouts_per_sec: 1e6,
            burst_playouts: 1_000_000,
            max_pending: 8,
            session_byte_quota: Some(1000),
            model_byte_budget: None,
        });
        let rej = adm.try_admit_costed(1, 10, 1001).unwrap_err();
        assert_eq!(rej.reason, RejectReason::OverMemory);
        assert_eq!(rej.retry_after, Duration::ZERO, "terminal: no wait helps");
        // The failed attempt reserved nothing.
        assert_eq!(adm.total_admitted_bytes(), 0);
        assert!(adm.try_admit_costed(1, 10, 1000).is_ok(), "at the quota");
        assert_eq!(adm.admitted_bytes(1), 1000);
    }

    #[test]
    fn model_byte_budget_sheds_transiently_and_release_returns_bytes() {
        let adm = AdmissionController::new(AdmissionConfig {
            playouts_per_sec: 1e6,
            burst_playouts: 1_000_000,
            max_pending: 8,
            session_byte_quota: None,
            model_byte_budget: Some(1000),
        });
        assert!(adm.try_admit_costed(1, 10, 600).is_ok());
        let rej = adm.try_admit_costed(1, 10, 600).unwrap_err();
        assert_eq!(rej.reason, RejectReason::OverMemory);
        assert!(
            rej.retry_after > Duration::ZERO,
            "transient: finishing sessions free bytes"
        );
        // The gauge is per model: another model has its own budget.
        assert!(adm.try_admit_costed(2, 10, 600).is_ok());
        assert_eq!(adm.total_admitted_bytes(), 1200);
        // Releasing returns the reservation and reopens the gauge.
        adm.release_bytes(1, 600);
        assert_eq!(adm.admitted_bytes(1), 0);
        assert!(adm.try_admit_costed(1, 10, 600).is_ok());
    }

    #[test]
    fn byteless_admissions_ignore_the_byte_gates() {
        let adm = AdmissionController::new(AdmissionConfig {
            playouts_per_sec: 1e6,
            burst_playouts: 1_000_000,
            max_pending: 8,
            session_byte_quota: Some(1),
            model_byte_budget: Some(1),
        });
        // Zero-byte admissions (the legacy entry points) always fit.
        assert!(adm.try_admit(1, 10).is_ok());
        assert_eq!(adm.total_admitted_bytes(), 0);
    }

    #[test]
    fn dead_backend_entries_are_evicted_once_drained() {
        use mcts::{BatchEvaluator, UniformEvaluator};
        let adm = ctl(1e6, 1_000_000, 8);
        let e1: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let key1 = Arc::as_ptr(&e1) as *const () as usize;
        adm.try_admit_backend(&e1, 10).unwrap();
        drop(e1);
        // Still pending: the entry must survive (release comes later).
        let e2: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        adm.try_admit_backend(&e2, 10).unwrap();
        assert_eq!(adm.tracked_models(), 2, "pending entry is kept alive");
        adm.release(key1);
        // Dead and drained: the next admission sweeps it out.
        adm.try_admit_backend(&e2, 10).unwrap();
        assert_eq!(adm.tracked_models(), 1, "dead drained entry evicted");
    }
}
