//! Session state shared between the service workers and ticket holders,
//! plus the type-erased session engine the scheduler steps.

use games::Game;
use mcts::{Budget, ReusableSearch, SearchResult, SearchScheme, StepOutcome};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a ticket's session currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Queued or being stepped.
    Running,
    /// Finished its budget; the final result is available.
    Done,
    /// Cancelled (by the ticket holder or service shutdown); the partial
    /// result at cancellation time is available.
    Cancelled,
}

struct TicketState {
    /// Latest anytime snapshot, refreshed after every scheduling slice.
    partial: Option<SearchResult>,
    /// Final result, set exactly once when the session finishes or is
    /// cancelled.
    outcome: Option<(SearchResult, TicketStatus)>,
    /// Submit→finish latency, recorded service-side at finalization.
    latency: Option<Duration>,
}

/// State shared by the service and every clone of a session's ticket.
pub(crate) struct SessionShared {
    id: u64,
    submitted: Instant,
    cancel_flag: AtomicBool,
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl SessionShared {
    pub(crate) fn new(id: u64) -> Self {
        SessionShared {
            id,
            submitted: Instant::now(),
            cancel_flag: AtomicBool::new(false),
            state: Mutex::new(TicketState {
                partial: None,
                outcome: None,
                latency: None,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel_flag.load(Ordering::Acquire)
    }

    /// Publish a fresh anytime snapshot.
    pub(crate) fn publish_partial(&self, snapshot: SearchResult) {
        self.state.lock().unwrap().partial = Some(snapshot);
    }

    /// Record the final result and wake all waiters. Idempotent-safe:
    /// only the first call sticks.
    pub(crate) fn finalize(&self, result: SearchResult, status: TicketStatus) {
        let mut st = self.state.lock().unwrap();
        if st.outcome.is_none() {
            st.latency = Some(self.submitted.elapsed());
            st.partial = Some(result.clone());
            st.outcome = Some((result, status));
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Clonable handle to one in-flight search session (see
/// [`crate::SearchService::submit`]).
#[derive(Clone)]
pub struct SearchTicket {
    pub(crate) shared: Arc<SessionShared>,
}

impl SearchTicket {
    /// Service-assigned session id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Where the session stands right now.
    pub fn status(&self) -> TicketStatus {
        match self.shared.state.lock().unwrap().outcome {
            Some((_, s)) => s,
            None => TicketStatus::Running,
        }
    }

    /// The final result, if the session has finished (or been
    /// cancelled). Non-blocking.
    pub fn poll(&self) -> Option<SearchResult> {
        self.shared
            .state
            .lock()
            .unwrap()
            .outcome
            .as_ref()
            .map(|(r, _)| r.clone())
    }

    /// The latest **anytime** snapshot: the root visit distribution over
    /// all playouts completed so far. `None` before the first scheduling
    /// slice completes.
    pub fn partial(&self) -> Option<SearchResult> {
        self.shared.state.lock().unwrap().partial.clone()
    }

    /// Block until the session finishes (or is cancelled) and return the
    /// final result.
    pub fn wait(&self) -> SearchResult {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some((r, _)) = &st.outcome {
                return r.clone();
            }
            st = self.shared.cv.wait(st).unwrap();
        }
    }

    /// [`SearchTicket::wait`] with a timeout; `None` if the session is
    /// still running when it elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SearchResult> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some((r, _)) = &st.outcome {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.shared.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Request cancellation. Honored at the session's next scheduling
    /// slice: the session's in-flight work is drained, its partial
    /// result becomes the final result (status
    /// [`TicketStatus::Cancelled`]) and waiters wake. Cancelling a
    /// finished session is a no-op.
    pub fn cancel(&self) {
        self.shared.cancel_flag.store(true, Ordering::Release);
    }

    /// True once a final result is available.
    pub fn is_done(&self) -> bool {
        self.shared.state.lock().unwrap().outcome.is_some()
    }

    /// Submit→finish latency, measured service-side. `None` while the
    /// session is running.
    pub fn latency(&self) -> Option<Duration> {
        self.shared.state.lock().unwrap().latency
    }
}

/// Type-erased session engine: the scheduler steps sessions of any game
/// type through this object-safe view.
pub(crate) trait AnySession: Send {
    fn step(&mut self, quota: usize) -> StepOutcome;
    fn partial(&self) -> SearchResult;
    fn cancel(&mut self);
    /// Recover the pooled searcher (if this session ran on one) for the
    /// warm-arena pool.
    fn reclaim(self: Box<Self>) -> Option<ReusableSearch>;
}

/// How a session executes: on a pooled warmed searcher or on a
/// per-session scheme built by `SearchBuilder`.
pub(crate) enum Engine<G: Game> {
    Pooled(Box<ReusableSearch>),
    Built(Box<dyn SearchScheme<G>>),
}

pub(crate) struct TypedSession<G: Game> {
    engine: Engine<G>,
}

impl<G: Game> TypedSession<G> {
    /// Open the run on the caller's thread (cheap: clones the root and
    /// sizes the tree) so workers only ever step.
    pub(crate) fn begin(mut engine: Engine<G>, root: &G, budget: Budget) -> Self {
        match &mut engine {
            Engine::Pooled(s) => SearchScheme::<G>::begin(s.as_mut(), root, budget),
            Engine::Built(b) => b.begin(root, budget),
        }
        TypedSession { engine }
    }
}

impl<G: Game> AnySession for TypedSession<G> {
    fn step(&mut self, quota: usize) -> StepOutcome {
        match &mut self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::step(s.as_mut(), quota),
            Engine::Built(b) => b.step(quota),
        }
    }

    fn partial(&self) -> SearchResult {
        match &self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::partial_result(s.as_ref()),
            Engine::Built(b) => b.partial_result(),
        }
    }

    fn cancel(&mut self) {
        match &mut self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::cancel(s.as_mut()),
            Engine::Built(b) => b.cancel(),
        }
    }

    fn reclaim(self: Box<Self>) -> Option<ReusableSearch> {
        match self.engine {
            Engine::Pooled(s) => Some(*s),
            Engine::Built(_) => None,
        }
    }
}
