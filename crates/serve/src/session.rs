//! Session state shared between the service workers and ticket holders:
//! the [`SearchTicket`] handle, push-style [`ResultStream`] delivery,
//! and the type-erased session engine the scheduler steps.

use games::Game;
use mcts::{Budget, ReusableSearch, SearchError, SearchResult, SearchScheme, StepOutcome};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a ticket's session currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketStatus {
    /// Queued or being stepped.
    Running,
    /// Finished its budget; the final result is available.
    Done,
    /// Cancelled (by the ticket holder or service shutdown); the partial
    /// result at cancellation time is available.
    Cancelled,
    /// Terminally failed: the session panicked, its evaluator gave out,
    /// or the watchdog reaped it. The latest anytime snapshot before the
    /// fault is available as the "final" result; the typed error says
    /// what happened.
    Failed(SearchError),
}

impl TicketStatus {
    /// True for [`TicketStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, TicketStatus::Failed(_))
    }

    /// The typed failure, when [`TicketStatus::Failed`].
    pub fn error(&self) -> Option<&SearchError> {
        match self {
            TicketStatus::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// What [`SearchTicket::wait_timeout`] came back with.
///
/// A timeout is **not** an empty hand: the session's latest anytime
/// snapshot rides along, so a caller on a hard deadline can act on the
/// best answer so far and keep (or drop) the ticket.
#[derive(Debug, Clone)]
pub enum WaitOutcome {
    /// The session finished (ran its budget or was cancelled) within the
    /// timeout; this is the final result.
    Finished(SearchResult, TicketStatus),
    /// The timeout elapsed first. Carries the latest published anytime
    /// snapshot — `stats.seq` orders snapshots within the session; a
    /// default result with `seq == 0` means no scheduling slice has
    /// completed yet.
    TimedOut(SearchResult),
}

impl WaitOutcome {
    /// The carried result, final or anytime.
    pub fn into_result(self) -> SearchResult {
        match self {
            WaitOutcome::Finished(r, _) => r,
            WaitOutcome::TimedOut(r) => r,
        }
    }

    /// True when the session finished within the timeout.
    pub fn is_finished(&self) -> bool {
        matches!(self, WaitOutcome::Finished(..))
    }
}

/// One element of a [`ResultStream`].
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A fresh anytime snapshot (`stats.seq` strictly increases across
    /// the `Partial` items of one stream).
    Partial(SearchResult),
    /// The terminal item; the stream is exhausted after yielding this.
    /// Every stream ends here — `Done`, `Cancelled`, or
    /// [`TicketStatus::Failed`] with the typed error — never in
    /// silence: a session that faults after publishing snapshots still
    /// delivers this item (carrying the last good snapshot).
    Final(SearchResult, TicketStatus),
}

type FinalHook = Box<dyn FnOnce(TicketStatus) + Send>;

struct TicketState {
    /// Latest anytime snapshot, refreshed after every scheduling slice
    /// (`stats.seq` is the snapshot's sequence number).
    partial: Option<SearchResult>,
    /// Final result, set exactly once when the session finishes or is
    /// cancelled.
    outcome: Option<(SearchResult, TicketStatus)>,
    /// Submit→finish latency, recorded service-side at finalization.
    latency: Option<Duration>,
    /// Run-once observer invoked at finalization (cluster load/admission
    /// accounting).
    on_final: Option<FinalHook>,
}

/// State shared by the service and every clone of a session's ticket.
pub(crate) struct SessionShared {
    id: u64,
    submitted: Instant,
    cancel_flag: AtomicBool,
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl SessionShared {
    pub(crate) fn new(id: u64) -> Self {
        SessionShared {
            id,
            submitted: Instant::now(),
            cancel_flag: AtomicBool::new(false),
            state: Mutex::new(TicketState {
                partial: None,
                outcome: None,
                latency: None,
                on_final: None,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel_flag.load(Ordering::Acquire)
    }

    /// True once the final result is recorded (the drain loop's
    /// in-flight probe).
    pub(crate) fn is_finished(&self) -> bool {
        self.state.lock().outcome.is_some()
    }

    /// Service-side cancellation request (the watchdog uses this when
    /// reaping a stuck session, so the run stops at its next budget
    /// check even though no ticket asked).
    pub(crate) fn request_cancel(&self) {
        self.cancel_flag.store(true, Ordering::Release);
    }

    /// Publish a fresh anytime snapshot and wake streaming subscribers.
    pub(crate) fn publish_partial(&self, snapshot: SearchResult) {
        self.state.lock().partial = Some(snapshot);
        self.cv.notify_all();
    }

    /// The latest published anytime snapshot, if any. The supervisor
    /// finalizes a *failed* session from this — the session's tree may
    /// be mid-unwind and unsafe to snapshot again.
    pub(crate) fn latest_partial(&self) -> Option<SearchResult> {
        self.state.lock().partial.clone()
    }

    /// Record the final result and wake all waiters. Idempotent-safe:
    /// only the first call sticks (and runs the finalization hook).
    pub(crate) fn finalize(&self, result: SearchResult, status: TicketStatus) {
        let hook = {
            let mut st = self.state.lock();
            if st.outcome.is_some() {
                None
            } else {
                st.latency = Some(self.submitted.elapsed());
                st.partial = Some(result.clone());
                st.outcome = Some((result, status.clone()));
                st.on_final.take()
            }
        };
        self.cv.notify_all();
        if let Some(h) = hook {
            h(status);
        }
    }

    /// Install the finalization observer. If the session already
    /// finished, the hook runs immediately on the calling thread.
    pub(crate) fn set_on_final(&self, hook: FinalHook) {
        let run_now = {
            let mut st = self.state.lock();
            match &st.outcome {
                Some((_, status)) => Some(status.clone()),
                None => {
                    st.on_final = Some(hook);
                    return;
                }
            }
        };
        if let Some(status) = run_now {
            hook(status);
        }
    }
}

/// Clonable handle to one in-flight search session (see
/// [`crate::SearchService::submit`]).
#[derive(Clone)]
pub struct SearchTicket {
    pub(crate) shared: Arc<SessionShared>,
}

impl std::fmt::Debug for SearchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchTicket")
            .field("id", &self.id())
            .field("status", &self.status())
            .finish()
    }
}

impl SearchTicket {
    /// Service-assigned session id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Where the session stands right now.
    pub fn status(&self) -> TicketStatus {
        match &self.shared.state.lock().outcome {
            Some((_, s)) => s.clone(),
            None => TicketStatus::Running,
        }
    }

    /// The typed failure, if the session reached
    /// [`TicketStatus::Failed`]. Non-blocking; `None` while running or
    /// after a non-failure terminal state.
    pub fn error(&self) -> Option<SearchError> {
        match &self.shared.state.lock().outcome {
            Some((_, TicketStatus::Failed(e))) => Some(e.clone()),
            _ => None,
        }
    }

    /// The final result, if the session has finished (or been
    /// cancelled). Non-blocking.
    pub fn poll(&self) -> Option<SearchResult> {
        self.shared
            .state
            .lock()
            .outcome
            .as_ref()
            .map(|(r, _)| r.clone())
    }

    /// The latest **anytime** snapshot: the root visit distribution over
    /// all playouts completed so far (`stats.seq` is the snapshot's
    /// sequence number). `None` before the first scheduling slice
    /// completes. Prefer [`SearchTicket::subscribe`] over polling this
    /// in a loop.
    pub fn partial(&self) -> Option<SearchResult> {
        self.shared.state.lock().partial.clone()
    }

    /// Subscribe to push-style delivery: the returned [`ResultStream`]
    /// yields every fresh anytime snapshot (watch semantics — a slow
    /// consumer sees the **latest** snapshot, never a stale backlog) and
    /// terminates with [`StreamItem::Final`]. Any number of independent
    /// subscribers may coexist with `wait`/`poll` callers.
    pub fn subscribe(&self) -> ResultStream {
        ResultStream {
            shared: Arc::clone(&self.shared),
            last_seq: None,
            finished: false,
        }
    }

    /// Block until the session finishes (or is cancelled) and return the
    /// final result.
    pub fn wait(&self) -> SearchResult {
        let mut st = self.shared.state.lock();
        loop {
            if let Some((r, _)) = &st.outcome {
                return r.clone();
            }
            st = self.shared.cv.wait(st);
        }
    }

    /// [`SearchTicket::wait`] with a timeout. On timeout the caller
    /// still gets the session's latest anytime snapshot (see
    /// [`WaitOutcome`]) — never an opaque empty error.
    pub fn wait_timeout(&self, timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some((r, status)) = &st.outcome {
                return WaitOutcome::Finished(r.clone(), status.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return WaitOutcome::TimedOut(st.partial.clone().unwrap_or_default());
            }
            let (guard, _) = self.shared.cv.wait_timeout(st, deadline - now);
            st = guard;
        }
    }

    /// Request cancellation. Honored at the session's next scheduling
    /// slice: the session's in-flight work is drained, its partial
    /// result becomes the final result (status
    /// [`TicketStatus::Cancelled`]) and waiters wake. Cancelling a
    /// finished session is a no-op.
    pub fn cancel(&self) {
        self.shared.cancel_flag.store(true, Ordering::Release);
    }

    /// True once a final result is available.
    pub fn is_done(&self) -> bool {
        self.shared.state.lock().outcome.is_some()
    }

    /// Submit→finish latency, measured service-side. `None` while the
    /// session is running.
    pub fn latency(&self) -> Option<Duration> {
        self.shared.state.lock().latency
    }
}

/// Push-style consumer of one session's results (from
/// [`SearchTicket::subscribe`]).
///
/// Watch-channel semantics: the service publishes one snapshot per
/// scheduling slice, the stream delivers the **latest unseen** one —
/// snapshots a slow consumer missed are superseded, not buffered, so
/// memory stays O(1) per subscriber no matter how long the session runs.
/// Iteration ends after [`StreamItem::Final`].
pub struct ResultStream {
    shared: Arc<SessionShared>,
    /// Sequence number of the last delivered snapshot.
    last_seq: Option<u64>,
    finished: bool,
}

impl ResultStream {
    /// Block until a fresh snapshot or the final result arrives. `None`
    /// once the final result has already been delivered.
    pub fn recv(&mut self) -> Option<StreamItem> {
        self.recv_until(None)
    }

    /// [`ResultStream::recv`] bounded by a timeout; `None` also when the
    /// timeout elapses with nothing new.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<StreamItem> {
        self.recv_until(Some(Instant::now() + timeout))
    }

    fn recv_until(&mut self, deadline: Option<Instant>) -> Option<StreamItem> {
        if self.finished {
            return None;
        }
        let mut st = self.shared.state.lock();
        loop {
            if let Some((r, status)) = &st.outcome {
                self.finished = true;
                return Some(StreamItem::Final(r.clone(), status.clone()));
            }
            if let Some(p) = &st.partial {
                if self.last_seq.is_none_or(|seen| p.stats.seq > seen) {
                    self.last_seq = Some(p.stats.seq);
                    return Some(StreamItem::Partial(p.clone()));
                }
            }
            match deadline {
                None => st = self.shared.cv.wait(st),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self.shared.cv.wait_timeout(st, d - now);
                    st = guard;
                }
            }
        }
    }
}

impl Iterator for ResultStream {
    type Item = StreamItem;

    /// Blocking iteration over snapshots, ending after the final result.
    fn next(&mut self) -> Option<StreamItem> {
        self.recv()
    }
}

/// Type-erased session engine: the scheduler steps sessions of any game
/// type through this object-safe view.
pub(crate) trait AnySession: Send {
    fn step(&mut self, quota: usize) -> StepOutcome;
    fn partial(&self) -> SearchResult;
    fn cancel(&mut self);
    /// Recover the pooled searcher (if this session ran on one) for the
    /// warm-arena pool.
    fn reclaim(self: Box<Self>) -> Option<ReusableSearch>;
}

/// How a session executes: on a pooled warmed searcher or on a
/// per-session scheme built by `SearchBuilder`.
pub(crate) enum Engine<G: Game> {
    Pooled(Box<ReusableSearch>),
    Built(Box<dyn SearchScheme<G>>),
}

pub(crate) struct TypedSession<G: Game> {
    engine: Engine<G>,
}

impl<G: Game> TypedSession<G> {
    /// Open the run on the caller's thread (cheap: clones the root and
    /// sizes the tree) so workers only ever step.
    pub(crate) fn begin(mut engine: Engine<G>, root: &G, budget: Budget) -> Self {
        match &mut engine {
            Engine::Pooled(s) => SearchScheme::<G>::begin(s.as_mut(), root, budget),
            Engine::Built(b) => b.begin(root, budget),
        }
        TypedSession { engine }
    }
}

impl<G: Game> AnySession for TypedSession<G> {
    fn step(&mut self, quota: usize) -> StepOutcome {
        match &mut self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::step(s.as_mut(), quota),
            Engine::Built(b) => b.step(quota),
        }
    }

    fn partial(&self) -> SearchResult {
        match &self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::partial_result(s.as_ref()),
            Engine::Built(b) => b.partial_result(),
        }
    }

    fn cancel(&mut self) {
        match &mut self.engine {
            Engine::Pooled(s) => SearchScheme::<G>::cancel(s.as_mut()),
            Engine::Built(b) => b.cancel(),
        }
    }

    fn reclaim(self: Box<Self>) -> Option<ReusableSearch> {
        match self.engine {
            Engine::Pooled(s) => Some(*s),
            Engine::Built(_) => None,
        }
    }
}
