//! Weighted-fair session scheduling.
//!
//! The first serving iteration kept every runnable session in one global
//! `BinaryHeap` ordered by `(priority, deadline, round-robin seq)` and
//! re-pushed each session after its slice. That is O(log n) too, but it
//! gives *strict* priority: one saturated high class starves everything
//! below it, and under tens of thousands of sessions the single
//! comparator conflates urgency (deadline) with share (priority).
//!
//! [`FairScheduler`] replaces it with **stride scheduling across
//! priority classes**: each class owns a weight (see
//! [`ServeConfig::class_weights`](crate::ServeConfig::class_weights)), a
//! stride inversely proportional to that weight, and a pass value.
//! Every dispatch picks the non-empty class with the smallest pass and
//! charges it one stride, so over any window the classes' dispatch
//! counts — and therefore their playout shares, since every slice is
//! [`step_quota`](crate::ServeConfig::step_quota) playouts — converge to
//! the weight ratio instead of starving the light class
//! (`crates/serve/tests/cluster.rs` pins the convergence).
//!
//! Within a class, sessions sit in a per-class heap ordered by earliest
//! deadline first, then round-robin sequence number (re-queued slices
//! get a fresh seq, so deadline-free peers take turns). With a constant
//! number of classes a dispatch is one O(#classes) scan plus one
//! per-class heap pop: O(log n) total, no global re-sort.

use crate::session::{AnySession, SessionShared};
use crate::Priority;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Pass-value numerator: strides are `STRIDE1 / weight`, so any weight
/// up to `STRIDE1` yields a distinct positive stride.
const STRIDE1: u64 = 1 << 20;

/// One runnable session owned by the scheduler (or in flight on a
/// worker between `pop` and the re-`push` of its next slice).
pub(crate) struct SessionEntry {
    pub priority: Priority,
    /// Earlier deadlines pop first within the class; `None` sorts after
    /// any real deadline.
    pub deadline: Option<Instant>,
    /// Round-robin tiebreak: smaller = submitted/re-queued earlier.
    pub seq: u64,
    /// Admitted playout budget of the session (load accounting).
    pub cost: u64,
    pub session: Box<dyn AnySession>,
    pub shared: Arc<SessionShared>,
}

impl PartialEq for SessionEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for SessionEntry {}
impl PartialOrd for SessionEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SessionEntry {
    /// Max-heap urgency: any real deadline beats none, earlier deadline
    /// beats later, then the lower round-robin seq wins.
    ///
    /// `None` is compared structurally — NOT substituted with a
    /// "far-future `Instant::now() + years`" sentinel. A sentinel
    /// recomputed per comparison differs on every call, so two
    /// deadline-free sessions would never compare `Equal`, the seq
    /// tiebreak would be unreachable, and the heap order would degrade
    /// to starvation-prone garbage (a popped long session could pin the
    /// top spot while a peer waits forever — caught by the
    /// `affinity_holds_under_concurrent_load_then_spills` test).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let by_deadline = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        };
        by_deadline.then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One priority class: EDF-then-round-robin heap plus stride state.
struct ClassQueue {
    stride: u64,
    pass: u64,
    heap: BinaryHeap<SessionEntry>,
    /// Sessions belonging to this class anywhere in the system: queued
    /// in `heap` *or* in flight on a worker between `pop` and the
    /// `requeue`/`retire` that follows the slice. The idle→busy pass
    /// re-sync must key on this, not on heap emptiness — a lone session
    /// being stepped leaves its heap empty, and snapping the class's
    /// pass up to `vtime` at every re-queue would erase the stride
    /// advantage its weight is supposed to buy.
    active: usize,
}

/// Stride scheduler over the priority classes (see module docs).
pub(crate) struct FairScheduler {
    classes: [ClassQueue; Priority::COUNT],
    /// Global virtual time: the pass of the most recent dispatch. A
    /// class going idle→busy resumes at `max(pass, vtime)`, so an idle
    /// class cannot bank credit and then monopolize the workers.
    vtime: u64,
    len: usize,
}

impl FairScheduler {
    /// `weights` are indexed `[Low, Normal, High]`; zero weights are
    /// treated as 1.
    pub fn new(weights: [u64; Priority::COUNT]) -> Self {
        let class = |w: u64| ClassQueue {
            stride: STRIDE1 / w.clamp(1, STRIDE1),
            pass: 0,
            heap: BinaryHeap::new(),
            active: 0,
        };
        FairScheduler {
            classes: [class(weights[0]), class(weights[1]), class(weights[2])],
            vtime: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Enter a newly submitted session. If its class was fully idle (no
    /// sessions queued *or* in flight), the class's pass re-syncs to the
    /// global virtual time so an idle class cannot bank credit.
    pub fn enqueue_new(&mut self, entry: SessionEntry) {
        let class = &mut self.classes[entry.priority.index()];
        if class.active == 0 {
            class.pass = class.pass.max(self.vtime);
        }
        class.active += 1;
        class.heap.push(entry);
        self.len += 1;
    }

    /// Re-queue a session after a scheduling slice (it stayed active the
    /// whole time, so its class's pass is left alone).
    pub fn requeue(&mut self, entry: SessionEntry) {
        self.classes[entry.priority.index()].heap.push(entry);
        self.len += 1;
    }

    /// A popped session finished (or was cancelled) instead of
    /// re-queueing: its class loses one active member.
    pub fn retire(&mut self, priority: Priority) {
        let class = &mut self.classes[priority.index()];
        class.active = class.active.saturating_sub(1);
    }

    /// Dispatch the next scheduling slice: the minimum-pass non-empty
    /// class is charged one stride and hands over its most urgent
    /// session. Ties break toward the higher priority class.
    pub fn pop(&mut self) -> Option<SessionEntry> {
        let mut best: Option<usize> = None;
        for (i, class) in self.classes.iter().enumerate() {
            if class.heap.is_empty() {
                continue;
            }
            best = match best {
                Some(b) if self.classes[b].pass < class.pass => Some(b),
                _ => Some(i),
            };
        }
        let class = &mut self.classes[best?];
        self.vtime = class.pass;
        class.pass += class.stride;
        self.len -= 1;
        class.heap.pop()
    }

    /// Remove and return every queued session (service shutdown).
    pub fn drain(&mut self) -> Vec<SessionEntry> {
        let mut out = Vec::with_capacity(self.len);
        for class in &mut self.classes {
            class.active = class.active.saturating_sub(class.heap.len());
            out.extend(class.heap.drain());
        }
        self.len = 0;
        out
    }
}
