//! Worker supervision: panic isolation and the stuck-session watchdog.
//!
//! Scheme code (`step`/`partial`/teardown) runs inside
//! [`std::panic::catch_unwind`] at the worker boundary. A panicking
//! session is **quarantined**: its ticket resolves as
//! [`TicketStatus::Failed`] with the typed [`SearchError`] recovered
//! from the panic payload, its arena is discarded rather than recycled
//! into the warm pool, its admission cost is released — and the worker
//! thread keeps serving every other session. One poisoned request
//! cannot take down a shard.
//!
//! Sessions with a wall-clock deadline are additionally registered with
//! the service **watchdog** ([`crate::ServeConfig::watchdog_grace`]): a run
//! still inside scheme code `grace` past its deadline is presumed stuck
//! (a hung evaluator, a livelocked backend), its ticket is failed with
//! [`SearchError::DeadlineExceeded`] carrying the last published
//! partial, and the wedged worker thread is abandoned and replaced so
//! pool capacity is restored. If the stuck thread ever returns it finds
//! its slot marked abandoned, disposes of the quarantined session and
//! exits without double-accounting — the slot mutex makes the handoff
//! exactly-once.

use crate::service::Inner;
use crate::session::{SessionShared, TicketStatus};
use crate::Priority;
use mcts::{SearchError, StepOutcome};
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the watchdog sweeps the worker slots.
pub(crate) const WATCHDOG_POLL: Duration = Duration::from_millis(20);

/// What a worker is executing right now (registered only for sessions
/// with a deadline, while inside scheme code).
pub(crate) struct InFlight {
    pub(crate) shared: Arc<SessionShared>,
    pub(crate) priority: Priority,
    pub(crate) cost: u64,
    /// Deadline plus [`crate::ServeConfig::watchdog_grace`]: past this, the
    /// run is presumed stuck and reaped.
    pub(crate) hard_deadline: Instant,
    /// Set by the watchdog (under the slot lock) when it reaps the
    /// session; tells the worker its result has already been settled.
    pub(crate) abandoned: bool,
}

/// One worker's supervision slot, shared with the watchdog.
pub(crate) struct WorkerSlot {
    pub(crate) inflight: Mutex<Option<InFlight>>,
}

/// Spawn one supervised worker thread.
pub(crate) fn spawn_worker(inner: &Arc<Inner>, id: u64) -> (Arc<WorkerSlot>, JoinHandle<()>) {
    let slot = Arc::new(WorkerSlot {
        inflight: Mutex::new(None),
    });
    let handle = std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn({
            let inner = Arc::clone(inner);
            let slot = Arc::clone(&slot);
            move || worker_loop(&inner, &slot)
        })
        .expect("spawn serve worker");
    (slot, handle)
}

/// One worker's scheduling loop, with every entry into scheme code
/// fenced by `catch_unwind`.
fn worker_loop(inner: &Arc<Inner>, slot: &Arc<WorkerSlot>) {
    // Unified core budget: each serve worker claims one core from the
    // tensor pool's arbiter for its lifetime, so GEMM strip parallelism
    // and session stepping draw from the same pool instead of
    // oversubscribing the host. The reservation is lent back while the
    // worker has nothing to step (and by the coalescing layer while a
    // worker is parked on a shared forward), so inference in flight can
    // widen to the idle cores.
    let _core = tensor::pool::reserve_core();
    loop {
        let mut entry = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(e) = q.pop() {
                    break e;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let _lease = tensor::pool::lend_core();
                q = inner.work_cv.wait(q);
            }
        };
        if inner.shutdown.load(Ordering::Acquire) || entry.shared.cancel_requested() {
            // Snapshot BEFORE tearing the run down: the ticket's final
            // result is the anytime partial at cancellation. Teardown
            // runs scheme code, so it is fenced like a step.
            let torn = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let partial = entry.session.partial();
                entry.session.cancel();
                partial
            }));
            match torn {
                Ok(partial) => inner.finalize(entry, partial, TicketStatus::Cancelled),
                Err(payload) => inner.fail(entry, SearchError::from_panic(payload.as_ref())),
            }
            continue;
        }
        // Register with the watchdog before entering scheme code.
        let watched = match (entry.deadline, inner.cfg.watchdog_grace) {
            (Some(deadline), Some(grace)) => {
                *slot.inflight.lock() = Some(InFlight {
                    shared: Arc::clone(&entry.shared),
                    priority: entry.priority,
                    cost: entry.cost,
                    hard_deadline: deadline + grace,
                    abandoned: false,
                });
                true
            }
            _ => false,
        };
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let outcome = entry.session.step(inner.cfg.step_quota);
            let snapshot = entry.session.partial();
            (outcome, snapshot)
        }));
        if watched {
            let taken = slot.inflight.lock().take();
            if taken.is_some_and(|inf| inf.abandoned) {
                // The watchdog reaped this session (ticket already
                // failed, accounting settled, replacement worker
                // spawned). This thread is surplus: dispose of the
                // quarantined session and retire.
                Inner::drop_quarantined(entry);
                return;
            }
        }
        let (outcome, snapshot) = match run {
            Ok(pair) => pair,
            Err(payload) => {
                inner.fail(entry, SearchError::from_panic(payload.as_ref()));
                continue;
            }
        };
        inner.counters.steps.fetch_add(1, Ordering::Relaxed);
        match outcome {
            StepOutcome::Running => {
                entry.shared.publish_partial(snapshot);
                entry.seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
                inner.queue.lock().requeue(entry);
                inner.work_cv.notify_one();
            }
            StepOutcome::Done => {
                let torn = std::panic::catch_unwind(AssertUnwindSafe(|| entry.session.cancel()));
                match torn {
                    Ok(()) => inner.finalize(entry, snapshot, TicketStatus::Done),
                    Err(payload) => inner.fail(entry, SearchError::from_panic(payload.as_ref())),
                }
            }
        }
    }
}

/// The watchdog loop: sweep worker slots, reap runs past their hard
/// deadline, replace the wedged threads.
pub(crate) fn watchdog_loop(inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(WATCHDOG_POLL);
        let now = Instant::now();
        let mut reaped: Vec<(u64, Arc<SessionShared>, Priority, u64)> = Vec::new();
        {
            let slots = inner.slots.lock();
            for (wid, slot) in slots.iter() {
                let mut inflight = slot.inflight.lock();
                if let Some(inf) = inflight.as_mut() {
                    if !inf.abandoned && now >= inf.hard_deadline {
                        // Claimed under the slot lock: the worker can no
                        // longer settle this session itself.
                        inf.abandoned = true;
                        reaped.push((*wid, Arc::clone(&inf.shared), inf.priority, inf.cost));
                    }
                }
            }
        }
        for (wid, shared, priority, cost) in reaped {
            inner.finalize_reaped(&shared, priority, cost);
            inner.replace_worker(wid);
        }
    }
}
