//! The [`SearchService`]: a fixed worker pool multiplexing many
//! resumable search sessions (see the crate docs for the architecture).

use crate::evalcache::CacheRegistry;
use crate::scheduler::{FairScheduler, SessionEntry};
use crate::session::{Engine, SearchTicket, SessionShared, TicketStatus, TypedSession};
use crate::{session_cost, Priority, SearchRequest};
use games::Game;
use mcts::{
    BatchEvaluator, CacheStats, CachedEvaluator, CoalesceStats, CoalescingEvaluator,
    ReusableSearch, Scheme, SearchBuilder,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service sizing and scheduling knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stepper threads. Each steps one session at a time, so this is
    /// also the maximum cross-session batch an evaluator can see.
    pub workers: usize,
    /// Playouts per scheduling slice. Smaller slices interleave sessions
    /// more fairly (and honor priorities/cancellation sooner) at the
    /// cost of more queue churn.
    pub step_quota: usize,
    /// Warmed [`ReusableSearch`] instances kept for reuse across
    /// `Serial`-scheme sessions.
    pub max_pooled: usize,
    /// Collection window of the shared per-backend coalescing layer
    /// (how long the first evaluator of a round waits for peers from
    /// other sessions). See [`CoalescingEvaluator::with_window`].
    pub coalesce_window: Duration,
    /// Weighted-fair share of scheduling slices per [`Priority`] class,
    /// indexed `[Low, Normal, High]`. Over any busy window each class
    /// receives slices (≈ playouts) in proportion to its weight — higher
    /// classes are *favored*, never starving the rest (stride
    /// scheduling; see `serve::scheduler`). Zero weights count as 1.
    pub class_weights: [u64; Priority::COUNT],
    /// Byte budget of the shared per-backend evaluation cache
    /// ([`mcts::EvalCache`]): leaf evaluations are memoized by
    /// `(model, position hash)` across *all* sessions of this service,
    /// so repeated positions skip inference entirely. `None` (the
    /// default) disables caching — every search is then seed-for-seed
    /// identical to a cache-free build.
    pub eval_cache_bytes: Option<usize>,
    /// Entry time-to-live for the evaluation cache; `None` keeps
    /// entries until evicted by capacity or epoch bump. Only read when
    /// [`ServeConfig::eval_cache_bytes`] is set.
    pub eval_cache_ttl: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
            .max(2);
        ServeConfig {
            workers,
            step_quota: 64,
            max_pooled: 2 * workers,
            coalesce_window: mcts::coalesce::DEFAULT_COALESCE_WINDOW,
            class_weights: [1, 4, 16],
            eval_cache_bytes: None,
            eval_cache_ttl: None,
        }
    }
}

/// Aggregate service accounting (monotone counters since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Sessions that ran their budget to completion.
    pub sessions_completed: u64,
    /// Sessions finalized by cancellation (including shutdown).
    pub sessions_cancelled: u64,
    /// Scheduling slices executed.
    pub steps: u64,
    /// Playouts across all finalized sessions.
    pub playouts: u64,
    /// Inference rounds run by the shared coalescing layers.
    pub eval_batches: u64,
    /// Samples served across those rounds.
    pub eval_samples: u64,
    /// Evaluation-cache hits: leaf evaluations answered from memory
    /// instead of the backend (0 when caching is disabled).
    pub cache_hits: u64,
    /// Evaluation-cache misses (forwarded to the backend).
    pub cache_misses: u64,
    /// Entries displaced to admit new ones under the byte budget.
    pub cache_evictions: u64,
    /// Bytes currently resident across the service's evaluation caches.
    pub cache_bytes: u64,
}

impl ServiceStats {
    /// Mean samples per inference round across all shared backends
    /// (1.0 = no cross-session coalescing happened; 0.0 = no rounds).
    pub fn mean_eval_batch(&self) -> f64 {
        if self.eval_batches == 0 {
            0.0
        } else {
            self.eval_samples as f64 / self.eval_batches as f64
        }
    }

    /// Fraction of keyed leaf evaluations answered by the cache
    /// (0.0 when caching is disabled or nothing was looked up).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fold another service's counters into this one (cluster totals).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.sessions_completed += other.sessions_completed;
        self.sessions_cancelled += other.sessions_cancelled;
        self.steps += other.steps;
        self.playouts += other.playouts;
        self.eval_batches += other.eval_batches;
        self.eval_samples += other.eval_samples;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_bytes += other.cache_bytes;
    }
}

#[derive(Default)]
struct Counters {
    sessions_completed: AtomicU64,
    sessions_cancelled: AtomicU64,
    steps: AtomicU64,
    playouts: AtomicU64,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<FairScheduler>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    next_seq: AtomicU64,
    next_id: AtomicU64,
    /// Admitted playout budget of sessions submitted and not yet
    /// finalized — the load signal cluster placement steers by.
    outstanding: AtomicU64,
    /// Warmed searchers awaiting the next `Serial` session.
    pool: Mutex<Vec<ReusableSearch>>,
    /// One shared coalescing layer per distinct evaluator backend,
    /// keyed by the backend `Arc`'s address. Entries no live session
    /// references are evicted on the next submit (their batch-fill
    /// counters fold into `retired_eval`).
    coalescers: Mutex<Vec<(usize, Arc<CoalescingEvaluator>)>>,
    /// Batch-fill counters of evicted coalescing layers, so
    /// [`SearchService::stats`] stays monotone across evictions.
    retired_eval: Mutex<CoalesceStats>,
    /// Per-backend evaluation caches (`None` ⇒ caching disabled). May
    /// be shared across shards by a [`crate::ServeCluster`].
    cache: Option<Arc<CacheRegistry>>,
    /// Whether this service owns `cache` and should report its counters
    /// in [`SearchService::stats`]. Cluster shards share one registry
    /// and report zeros here — the cluster reports the shared totals
    /// once, so folding shard stats never double counts.
    cache_owned: bool,
    counters: Counters,
}

impl Inner {
    /// Funnel `eval` through the service-wide coalescing layer for its
    /// backend (creating it on first sight), so sessions submitting the
    /// same evaluator share inference batches. Backends that gain
    /// nothing (`preferred_batch() == 1`) or that already coalesce
    /// internally (accelerator queues) pass through untouched.
    fn shared_evaluator(&self, eval: Arc<dyn BatchEvaluator>) -> Arc<dyn BatchEvaluator> {
        if eval.preferred_batch() <= 1 || eval.coalesces_internally() {
            return eval;
        }
        let key = Arc::as_ptr(&eval) as *const () as usize;
        let mut reg = self.coalescers.lock().unwrap();
        if let Some((_, c)) = reg.iter().find(|(k, _)| *k == key) {
            return Arc::clone(c) as Arc<dyn BatchEvaluator>;
        }
        // Evict layers no live session holds (registry copy is the last
        // one): a long-lived service seeing per-request backends must
        // not pin every dead model's weights forever. Their counters
        // carry over so service stats stay monotone.
        reg.retain(|(_, c)| {
            if Arc::strong_count(c) > 1 {
                return true;
            }
            let s = c.stats();
            let mut retired = self.retired_eval.lock().unwrap();
            retired.batches += s.batches;
            retired.samples += s.samples;
            false
        });
        let max_batch = eval.preferred_batch().min(self.cfg.workers.max(1));
        let c = Arc::new(CoalescingEvaluator::with_window(
            eval,
            max_batch,
            self.cfg.coalesce_window,
        ));
        reg.push((key, Arc::clone(&c)));
        c
    }

    /// Finalize one session: publish the final result, update counters,
    /// release its outstanding load, and return the warmed searcher to
    /// the pool.
    fn finalize(&self, entry: SessionEntry, result: mcts::SearchResult, status: TicketStatus) {
        self.queue.lock().unwrap().retire(entry.priority);
        let counter = match status {
            TicketStatus::Cancelled => &self.counters.sessions_cancelled,
            _ => &self.counters.sessions_completed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counters
            .playouts
            .fetch_add(result.stats.playouts, Ordering::Relaxed);
        self.outstanding.fetch_sub(entry.cost, Ordering::Relaxed);
        entry.shared.finalize(result, status);
        if let Some(mut searcher) = entry.session.reclaim() {
            searcher.reset();
            let mut pool = self.pool.lock().unwrap();
            if pool.len() < self.cfg.max_pooled {
                pool.push(searcher);
            }
        }
    }

    /// One worker's scheduling loop.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let mut entry = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(e) = q.pop() {
                        break e;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self.work_cv.wait(q).unwrap();
                }
            };
            if self.shutdown.load(Ordering::Acquire) || entry.shared.cancel_requested() {
                // Snapshot BEFORE tearing the run down: the ticket's
                // final result is the anytime partial at cancellation.
                let partial = entry.session.partial();
                entry.session.cancel();
                self.finalize(entry, partial, TicketStatus::Cancelled);
                continue;
            }
            let outcome = entry.session.step(self.cfg.step_quota);
            self.counters.steps.fetch_add(1, Ordering::Relaxed);
            let snapshot = entry.session.partial();
            match outcome {
                mcts::StepOutcome::Running => {
                    entry.shared.publish_partial(snapshot);
                    entry.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                    self.queue.lock().unwrap().requeue(entry);
                    self.work_cv.notify_one();
                }
                mcts::StepOutcome::Done => {
                    entry.session.cancel();
                    self.finalize(entry, snapshot, TicketStatus::Done);
                }
            }
        }
    }
}

/// Accepts search requests and multiplexes them over a fixed worker
/// pool (see the crate docs). Dropping the service cancels outstanding
/// sessions (their tickets resolve as [`TicketStatus::Cancelled`]) and
/// joins the workers.
pub struct SearchService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl SearchService {
    /// Spawn the worker pool.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_cache_registry(cfg, None)
    }

    /// Spawn the worker pool, optionally plugging in a cache registry
    /// shared with other services (how a [`crate::ServeCluster`] makes
    /// one backend's cache span every shard). With `None`, the service
    /// builds its own registry iff [`ServeConfig::eval_cache_bytes`]
    /// is set.
    pub(crate) fn with_cache_registry(
        cfg: ServeConfig,
        shared_cache: Option<Arc<CacheRegistry>>,
    ) -> Self {
        assert!(cfg.workers >= 1, "service needs at least one worker");
        assert!(cfg.step_quota >= 1, "step quota must be positive");
        let cache_owned = shared_cache.is_none();
        let cache = shared_cache.or_else(|| {
            cfg.eval_cache_bytes
                .map(|b| Arc::new(CacheRegistry::new(b, cfg.eval_cache_ttl)))
        });
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue: Mutex::new(FairScheduler::new(cfg.class_weights)),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            coalescers: Mutex::new(Vec::new()),
            retired_eval: Mutex::new(CoalesceStats::default()),
            cache,
            cache_owned,
            counters: Counters::default(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        SearchService { inner, workers }
    }

    /// Submit one request; returns immediately with a ticket handle.
    /// The session's run is opened on the calling thread (cheap), then
    /// queued for stepping.
    pub fn submit<G: Game>(&self, req: SearchRequest<G>) -> SearchTicket {
        let cost = session_cost(&req.budget, &req.config);
        // The cache is keyed by the *backend* identity, captured before
        // the coalescing wrap replaces the Arc — so sessions share hits
        // whether or not their backend coalesces.
        let backend = self
            .inner
            .cache
            .is_some()
            .then(|| Arc::clone(&req.evaluator));
        let mut eval = self.inner.shared_evaluator(req.evaluator);
        if let (Some(reg), Some(backend)) = (&self.inner.cache, backend) {
            // Cache outside, coalescer inside: hits are answered from
            // memory without waking the batch layer; only misses enter
            // the shared cross-session batch.
            eval = Arc::new(CachedEvaluator::new(eval, reg.cache_for(&backend)));
        }
        let engine: Engine<G> = if req.scheme == Scheme::Serial {
            let pooled = self.inner.pool.lock().unwrap().pop();
            let searcher = match pooled {
                Some(mut s) => {
                    s.reconfigure(req.config, eval);
                    s
                }
                None => ReusableSearch::new(req.config, eval),
            };
            Engine::Pooled(Box::new(searcher))
        } else {
            Engine::Built(
                SearchBuilder::new(req.scheme)
                    .config(req.config)
                    .evaluator(eval)
                    .build::<G>(),
            )
        };
        let session = TypedSession::begin(engine, &req.root, req.budget);
        let deadline = req
            .budget
            .time
            .or(req.config.time_budget_ms.map(Duration::from_millis))
            .map(|t| Instant::now() + t);
        let shared = Arc::new(SessionShared::new(
            self.inner.next_id.fetch_add(1, Ordering::Relaxed),
        ));
        let entry = SessionEntry {
            priority: req.priority,
            deadline,
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            cost,
            session: Box::new(session),
            shared: Arc::clone(&shared),
        };
        self.inner.outstanding.fetch_add(cost, Ordering::Relaxed);
        self.inner.queue.lock().unwrap().enqueue_new(entry);
        self.inner.work_cv.notify_one();
        SearchTicket { shared }
    }

    /// Sessions currently queued for a scheduling slice (excludes the
    /// ones being stepped right now).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// Admitted playout budget of sessions submitted and not yet
    /// finished — the service's outstanding load. Cluster placement
    /// routes new sessions toward the shard where this is smallest.
    pub fn outstanding_playouts(&self) -> u64 {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Aggregate accounting, including the shared coalescing layers'
    /// realized batch fill.
    pub fn stats(&self) -> ServiceStats {
        let mut eval = *self.inner.retired_eval.lock().unwrap();
        for (_, c) in self.inner.coalescers.lock().unwrap().iter() {
            let s = c.stats();
            eval.batches += s.batches;
            eval.samples += s.samples;
        }
        let cache = if self.inner.cache_owned {
            self.cache_stats().unwrap_or_default()
        } else {
            // Shared (cluster-owned) registry: the cluster reports it.
            CacheStats::default()
        };
        ServiceStats {
            sessions_completed: self
                .inner
                .counters
                .sessions_completed
                .load(Ordering::Relaxed),
            sessions_cancelled: self
                .inner
                .counters
                .sessions_cancelled
                .load(Ordering::Relaxed),
            steps: self.inner.counters.steps.load(Ordering::Relaxed),
            playouts: self.inner.counters.playouts.load(Ordering::Relaxed),
            eval_batches: eval.batches,
            eval_samples: eval.samples,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_bytes: cache.bytes,
        }
    }

    /// Raw evaluation-cache counters across this service's per-backend
    /// caches; `None` when caching is disabled. Reports the registry's
    /// totals even when the registry is cluster-shared (unlike
    /// [`SearchService::stats`], which then defers to the cluster).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|r| r.stats())
    }

    /// Invalidate every cached evaluation (O(1) per backend: an epoch
    /// bump, no scan). Call after swapping model weights *in place*
    /// behind a backend `Arc` that keeps its identity; backends
    /// replaced by a *new* `Arc` are invalidated automatically.
    pub fn invalidate_eval_cache(&self) {
        if let Some(reg) = &self.inner.cache {
            reg.invalidate_all();
        }
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Resolve whatever is still queued so no ticket waits forever.
        let leftovers: Vec<SessionEntry> = self.inner.queue.lock().unwrap().drain();
        for mut entry in leftovers {
            let partial = entry.session.partial();
            entry.session.cancel();
            self.inner.finalize(entry, partial, TicketStatus::Cancelled);
        }
    }
}
