//! The [`SearchService`]: a fixed worker pool multiplexing many
//! resumable search sessions (see the crate docs for the architecture,
//! and `serve::supervisor` for the fault-containment layer around the
//! workers).

use crate::evalcache::CacheRegistry;
use crate::health::{BreakerState, HealthConfig, HealthRegistry};
use crate::scheduler::{FairScheduler, SessionEntry};
use crate::session::{Engine, SearchTicket, SessionShared, TicketStatus, TypedSession};
use crate::supervisor;
use crate::{session_cost, Priority, SearchRequest};
use games::Game;
use mcts::{
    AutotuneReport, BatchEvaluator, BatchTuner, CacheStats, CachedEvaluator, CoalesceStats,
    CoalescingEvaluator, ReusableSearch, Scheme, SearchBuilder, SearchError, SearchResult,
};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service sizing, scheduling and fault-containment knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stepper threads. Each steps one session at a time, so this is
    /// also the maximum cross-session batch an evaluator can see.
    pub workers: usize,
    /// Playouts per scheduling slice. Smaller slices interleave sessions
    /// more fairly (and honor priorities/cancellation sooner) at the
    /// cost of more queue churn.
    pub step_quota: usize,
    /// Warmed [`ReusableSearch`] instances kept for reuse across
    /// `Serial`-scheme sessions.
    pub max_pooled: usize,
    /// Collection window of the shared per-backend coalescing layer
    /// (how long the first evaluator of a round waits for peers from
    /// other sessions). See [`CoalescingEvaluator::with_window`]. With
    /// [`ServeConfig::coalesce_auto`] on, this is the *ceiling*: the
    /// tuner derives the actual window from measured forward times.
    pub coalesce_window: Duration,
    /// Measurement-driven batching: attach a [`BatchTuner`] to every
    /// shared coalescing layer, so target batch size and collection
    /// window come from the backend's measured forward-time curve
    /// instead of the static `preferred_batch`/`coalesce_window` pair.
    /// An unseeded tuner behaves exactly like the fixed configuration,
    /// so turning this on is safe before any traffic. Default `true`.
    pub coalesce_auto: bool,
    /// Seed each backend's tuner with a one-shot calibration pass at
    /// registration (times a zero-input forward at every power-of-two
    /// batch size, against the raw backend — never through breakers or
    /// caches). Adds a few forwards of latency to the backend's first
    /// submit. Defaults to the `SERVE_CALIBRATE` environment variable
    /// (`1`/`true` to enable); off otherwise. Only read when
    /// [`ServeConfig::coalesce_auto`] is set.
    pub calibrate_on_register: bool,
    /// Weighted-fair share of scheduling slices per [`Priority`] class,
    /// indexed `[Low, Normal, High]`. Over any busy window each class
    /// receives slices (≈ playouts) in proportion to its weight — higher
    /// classes are *favored*, never starving the rest (stride
    /// scheduling; see `serve::scheduler`). Zero weights count as 1.
    pub class_weights: [u64; Priority::COUNT],
    /// Byte budget of the shared per-backend evaluation cache
    /// ([`mcts::EvalCache`]): leaf evaluations are memoized by
    /// `(model, position hash)` across *all* sessions of this service,
    /// so repeated positions skip inference entirely. `None` (the
    /// default) disables caching — every search is then seed-for-seed
    /// identical to a cache-free build.
    pub eval_cache_bytes: Option<usize>,
    /// Entry time-to-live for the evaluation cache; `None` keeps
    /// entries until evicted by capacity or epoch bump. Only read when
    /// [`ServeConfig::eval_cache_bytes`] is set.
    pub eval_cache_ttl: Option<Duration>,
    /// Retries after a *transient* backend failure
    /// ([`mcts::EvalError::transient`]) before the session fails with
    /// [`SearchError::EvaluatorFailed`]. Each attempt (initial plus
    /// retries) counts against the backend's circuit breaker.
    pub retry_budget: u32,
    /// First retry backoff; attempt `n` sleeps `backoff_base · 2ⁿ`
    /// (capped at 250 ms), with deterministic jitter so concurrent
    /// sessions don't retry in lockstep.
    pub backoff_base: Duration,
    /// Consecutive backend failures that trip its circuit breaker
    /// open. While open, evaluations fail fast with
    /// [`SearchError::BackendUnavailable`] and cluster admission sheds
    /// new sessions for that backend.
    pub breaker_threshold: u32,
    /// How long an open breaker rests before letting one probe call
    /// through; the probe's outcome closes or re-opens it.
    pub breaker_cooldown: Duration,
    /// Extra wall-clock slack past a session's deadline before the
    /// watchdog presumes the run stuck, fails its ticket with
    /// [`SearchError::DeadlineExceeded`] (last partial attached) and
    /// replaces the wedged worker thread. `None` disables the watchdog
    /// (a hung evaluator then pins its worker forever). Only sessions
    /// with a deadline are watched.
    pub watchdog_grace: Option<Duration>,
    /// Ceiling on any one session's tree arena, in bytes. Requests
    /// arriving with a larger (or absent) per-session
    /// [`mcts::MctsConfig::arena_budget_bytes`] are clamped down to
    /// this, so a single unbounded analysis session cannot grow its
    /// arena without limit on a shared worker pool — past the ceiling
    /// the search recycles cold subtrees in place (see
    /// [`mcts::EvictionPolicy`]). `None` (the default) leaves session
    /// configs untouched.
    pub session_arena_bytes: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
            .max(2);
        ServeConfig {
            workers,
            step_quota: 64,
            max_pooled: 2 * workers,
            coalesce_window: mcts::coalesce::DEFAULT_COALESCE_WINDOW,
            coalesce_auto: true,
            calibrate_on_register: std::env::var("SERVE_CALIBRATE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false),
            class_weights: [1, 4, 16],
            eval_cache_bytes: None,
            eval_cache_ttl: None,
            retry_budget: 2,
            backoff_base: Duration::from_millis(1),
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(250),
            watchdog_grace: Some(Duration::from_secs(2)),
            session_arena_bytes: None,
        }
    }
}

impl ServeConfig {
    pub(crate) fn health_config(&self) -> HealthConfig {
        HealthConfig {
            retry_budget: self.retry_budget,
            backoff_base: self.backoff_base,
            breaker_threshold: self.breaker_threshold,
            breaker_cooldown: self.breaker_cooldown,
        }
    }
}

/// Aggregate service accounting (monotone counters since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Sessions that ran their budget to completion.
    pub sessions_completed: u64,
    /// Sessions finalized by cancellation (including shutdown).
    pub sessions_cancelled: u64,
    /// Sessions that ended in a failure: a panic inside scheme code, an
    /// exhausted evaluator retry budget, an open circuit breaker, or a
    /// watchdog reap. Their tickets resolve as
    /// [`TicketStatus::Failed`]; their arenas are quarantined, never
    /// recycled.
    pub sessions_failed: u64,
    /// Scheduling slices executed.
    pub steps: u64,
    /// Playouts across all finalized sessions.
    pub playouts: u64,
    /// Inference rounds run by the shared coalescing layers.
    pub eval_batches: u64,
    /// Samples served across those rounds.
    pub eval_samples: u64,
    /// Evaluation-cache hits: leaf evaluations answered from memory
    /// instead of the backend (0 when caching is disabled).
    pub cache_hits: u64,
    /// Evaluation-cache misses (forwarded to the backend).
    pub cache_misses: u64,
    /// Entries displaced to admit new ones under the byte budget.
    pub cache_evictions: u64,
    /// Bytes currently resident across the service's evaluation caches.
    pub cache_bytes: u64,
}

impl ServiceStats {
    /// Mean samples per inference round across all shared backends
    /// (1.0 = no cross-session coalescing happened; 0.0 = no rounds).
    pub fn mean_eval_batch(&self) -> f64 {
        if self.eval_batches == 0 {
            0.0
        } else {
            self.eval_samples as f64 / self.eval_batches as f64
        }
    }

    /// Fraction of keyed leaf evaluations answered by the cache
    /// (0.0 when caching is disabled or nothing was looked up).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fold another service's counters into this one (cluster totals).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.sessions_completed += other.sessions_completed;
        self.sessions_cancelled += other.sessions_cancelled;
        self.sessions_failed += other.sessions_failed;
        self.steps += other.steps;
        self.playouts += other.playouts;
        self.eval_batches += other.eval_batches;
        self.eval_samples += other.eval_samples;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_bytes += other.cache_bytes;
    }
}

/// One backend's shared batching state: coalescing layer + tuner.
pub(crate) struct CoalesceEntry {
    key: usize,
    layer: Arc<CoalescingEvaluator>,
    tuner: Option<Arc<BatchTuner>>,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) sessions_completed: AtomicU64,
    pub(crate) sessions_cancelled: AtomicU64,
    pub(crate) sessions_failed: AtomicU64,
    pub(crate) steps: AtomicU64,
    pub(crate) playouts: AtomicU64,
}

pub(crate) struct Inner {
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: Mutex<FairScheduler>,
    pub(crate) work_cv: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) next_seq: AtomicU64,
    next_id: AtomicU64,
    /// Admitted playout budget of sessions submitted and not yet
    /// finalized — the load signal cluster placement steers by.
    outstanding: AtomicU64,
    /// Warmed searchers awaiting the next `Serial` session.
    pool: Mutex<Vec<ReusableSearch>>,
    /// One shared coalescing layer per distinct evaluator backend,
    /// keyed by the **original** backend `Arc`'s address (captured
    /// before the resilience wrap, so every session of a backend lands
    /// in the same layer), plus that backend's batch tuner when
    /// [`ServeConfig::coalesce_auto`] is on. Entries no live session
    /// references are evicted on the next submit (their batch-fill
    /// counters fold into `retired_eval`).
    coalescers: Mutex<Vec<CoalesceEntry>>,
    /// Batch-fill counters of evicted coalescing layers, so
    /// [`SearchService::stats`] stays monotone across evictions.
    retired_eval: Mutex<CoalesceStats>,
    /// Per-backend evaluation caches (`None` ⇒ caching disabled). May
    /// be shared across shards by a [`crate::ServeCluster`].
    cache: Option<Arc<CacheRegistry>>,
    /// Whether this service owns `cache` and should report its counters
    /// in [`SearchService::stats`]. Cluster shards share one registry
    /// and report zeros here — the cluster reports the shared totals
    /// once, so folding shard stats never double counts.
    cache_owned: bool,
    /// Per-backend circuit breakers + retry policy. Cluster shards
    /// share one registry so a backend's failure history is
    /// cluster-wide, not per shard.
    pub(crate) health: Arc<HealthRegistry>,
    /// Live workers' supervision slots, keyed by worker id (the
    /// watchdog sweeps these).
    pub(crate) slots: Mutex<Vec<(u64, Arc<supervisor::WorkerSlot>)>>,
    /// Live workers' join handles. A wedged worker's handle is removed
    /// (detached) when the watchdog replaces it.
    handles: Mutex<Vec<(u64, JoinHandle<()>)>>,
    next_worker: AtomicU64,
    pub(crate) counters: Counters,
}

impl Inner {
    /// Funnel a session's evaluator through the service-wide coalescing
    /// layer for its backend (creating it on first sight), so sessions
    /// submitting the same evaluator share inference batches. `backend`
    /// is the identity key (the caller's original `Arc`); `wrapped` is
    /// what actually evaluates (the resilience wrapper around it).
    /// Backends that gain nothing (`preferred_batch() == 1`) or that
    /// already coalesce internally (accelerator queues) skip the layer.
    fn shared_evaluator(
        &self,
        backend: &Arc<dyn BatchEvaluator>,
        wrapped: Arc<dyn BatchEvaluator>,
    ) -> Arc<dyn BatchEvaluator> {
        if backend.preferred_batch() <= 1 || backend.coalesces_internally() {
            return wrapped;
        }
        let key = Arc::as_ptr(backend) as *const () as usize;
        let mut reg = self.coalescers.lock();
        if let Some(e) = reg.iter().find(|e| e.key == key) {
            return Arc::clone(&e.layer) as Arc<dyn BatchEvaluator>;
        }
        // Evict layers no live session holds (registry copy is the last
        // one): a long-lived service seeing per-request backends must
        // not pin every dead model's weights forever. Their counters
        // carry over so service stats stay monotone.
        reg.retain(|e| {
            if Arc::strong_count(&e.layer) > 1 {
                return true;
            }
            let s = e.layer.stats();
            let mut retired = self.retired_eval.lock();
            retired.batches += s.batches;
            retired.samples += s.samples;
            false
        });
        // The batch bound tracks the backend's capacity, not the worker
        // count: offered concurrency (many sessions parked on one
        // round) can exceed the stepper count, and capping at `workers`
        // used to pin realized batch fill regardless of load.
        let max_batch = backend.preferred_batch().max(1);
        let mut c = CoalescingEvaluator::with_window(wrapped, max_batch, self.cfg.coalesce_window);
        let tuner = self.cfg.coalesce_auto.then(|| {
            let t = Arc::new(BatchTuner::new(max_batch, self.cfg.coalesce_window));
            if self.cfg.calibrate_on_register {
                // Against the raw backend: calibration must not trip
                // breakers, warm caches, or count as coalesced traffic.
                t.calibrate(backend.as_ref());
            }
            t
        });
        if let Some(t) = &tuner {
            c = c.with_tuner(Arc::clone(t));
        }
        let c = Arc::new(c);
        reg.push(CoalesceEntry {
            key,
            layer: Arc::clone(&c),
            tuner,
        });
        c
    }

    /// Finalize one session that ended cleanly (`Done`/`Cancelled`):
    /// publish the final result, update counters, release its
    /// outstanding load, and return the warmed searcher to the pool.
    pub(crate) fn finalize(&self, entry: SessionEntry, result: SearchResult, status: TicketStatus) {
        self.queue.lock().retire(entry.priority);
        let counter = match status {
            TicketStatus::Cancelled => &self.counters.sessions_cancelled,
            _ => &self.counters.sessions_completed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counters
            .playouts
            .fetch_add(result.stats.playouts, Ordering::Relaxed);
        self.outstanding.fetch_sub(entry.cost, Ordering::Relaxed);
        entry.shared.finalize(result, status);
        if let Some(mut searcher) = entry.session.reclaim() {
            searcher.reset();
            let mut pool = self.pool.lock();
            if pool.len() < self.cfg.max_pooled {
                pool.push(searcher);
            }
        }
    }

    /// Quarantine one failed session: fail its ticket with the typed
    /// error (last published partial attached), settle accounting, and
    /// dispose of the session **without** recycling its arena — a
    /// panicked run's tree may be arbitrarily corrupt.
    pub(crate) fn fail(&self, entry: SessionEntry, err: SearchError) {
        self.queue.lock().retire(entry.priority);
        self.counters
            .sessions_failed
            .fetch_add(1, Ordering::Relaxed);
        let partial = entry.shared.latest_partial().unwrap_or_default();
        self.counters
            .playouts
            .fetch_add(partial.stats.playouts, Ordering::Relaxed);
        self.outstanding.fetch_sub(entry.cost, Ordering::Relaxed);
        entry.shared.finalize(partial, TicketStatus::Failed(err));
        Self::drop_quarantined(entry);
    }

    /// Settle a watchdog-reaped session (the wedged worker still owns
    /// the `SessionEntry`; everything observable is settled through the
    /// shared state).
    pub(crate) fn finalize_reaped(
        &self,
        shared: &Arc<SessionShared>,
        priority: Priority,
        cost: u64,
    ) {
        // If the run is merely slow (not wedged), make sure it stops at
        // its next budget check instead of burning the worker further.
        shared.request_cancel();
        self.queue.lock().retire(priority);
        self.counters
            .sessions_failed
            .fetch_add(1, Ordering::Relaxed);
        let partial = shared.latest_partial().unwrap_or_default();
        self.counters
            .playouts
            .fetch_add(partial.stats.playouts, Ordering::Relaxed);
        self.outstanding.fetch_sub(cost, Ordering::Relaxed);
        shared.finalize(partial, TicketStatus::Failed(SearchError::DeadlineExceeded));
    }

    /// Drop a quarantined session. Its internals may be mid-mutation
    /// (we unwound out of scheme code), so even `Drop` is fenced; the
    /// arena is never returned to the warm pool.
    pub(crate) fn drop_quarantined(entry: SessionEntry) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(entry)));
    }

    /// Replace a wedged worker: detach its join handle (it may never
    /// return), retire its slot, and spawn a fresh worker so pool
    /// capacity is restored.
    pub(crate) fn replace_worker(self: &Arc<Self>, wid: u64) {
        self.handles.lock().retain(|(id, _)| *id != wid);
        self.slots.lock().retain(|(id, _)| *id != wid);
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let id = self.next_worker.fetch_add(1, Ordering::Relaxed);
        let (slot, handle) = supervisor::spawn_worker(self, id);
        self.slots.lock().push((id, slot));
        self.handles.lock().push((id, handle));
    }
}

/// Accepts search requests and multiplexes them over a fixed worker
/// pool (see the crate docs). Dropping the service cancels outstanding
/// sessions (their tickets resolve as [`TicketStatus::Cancelled`]) and
/// joins the workers.
pub struct SearchService {
    inner: Arc<Inner>,
    watchdog: Option<JoinHandle<()>>,
}

impl SearchService {
    /// Spawn the worker pool.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_registries(cfg, None, None)
    }

    /// Spawn the worker pool, optionally plugging in cache/health
    /// registries shared with other services (how a
    /// [`crate::ServeCluster`] makes one backend's cache — and failure
    /// history — span every shard). With `None`, the service builds its
    /// own: a cache registry iff [`ServeConfig::eval_cache_bytes`] is
    /// set, and always a health registry from this config's breaker
    /// knobs.
    pub(crate) fn with_registries(
        cfg: ServeConfig,
        shared_cache: Option<Arc<CacheRegistry>>,
        shared_health: Option<Arc<HealthRegistry>>,
    ) -> Self {
        assert!(cfg.workers >= 1, "service needs at least one worker");
        assert!(cfg.step_quota >= 1, "step quota must be positive");
        let cache_owned = shared_cache.is_none();
        let cache = shared_cache.or_else(|| {
            cfg.eval_cache_bytes
                .map(|b| Arc::new(CacheRegistry::new(b, cfg.eval_cache_ttl)))
        });
        let health =
            shared_health.unwrap_or_else(|| Arc::new(HealthRegistry::new(cfg.health_config())));
        let watchdog_enabled = cfg.watchdog_grace.is_some();
        let workers = cfg.workers;
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue: Mutex::new(FairScheduler::new(cfg.class_weights)),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            coalescers: Mutex::new(Vec::new()),
            retired_eval: Mutex::new(CoalesceStats::default()),
            cache,
            cache_owned,
            health,
            slots: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            next_worker: AtomicU64::new(workers as u64),
            counters: Counters::default(),
        });
        {
            let mut slots = inner.slots.lock();
            let mut handles = inner.handles.lock();
            for i in 0..workers {
                let (slot, handle) = supervisor::spawn_worker(&inner, i as u64);
                slots.push((i as u64, slot));
                handles.push((i as u64, handle));
            }
        }
        let watchdog = watchdog_enabled.then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-watchdog".to_string())
                .spawn(move || supervisor::watchdog_loop(&inner))
                .expect("spawn serve watchdog")
        });
        SearchService { inner, watchdog }
    }

    /// Submit one request; returns immediately with a ticket handle.
    /// The session's run is opened on the calling thread (cheap), then
    /// queued for stepping.
    pub fn submit<G: Game>(&self, mut req: SearchRequest<G>) -> SearchTicket {
        // Clamp the session's arena to the service ceiling — both the
        // config knob and any per-run byte budget, so neither path lets
        // one session outgrow its slice of the pool's memory.
        if let Some(cap) = self.inner.cfg.session_arena_bytes {
            req.config.arena_budget_bytes =
                Some(req.config.arena_budget_bytes.map_or(cap, |b| b.min(cap)));
            if let Some(b) = req.budget.max_bytes {
                req.budget.max_bytes = Some(b.min(cap));
            }
        }
        let cost = session_cost(&req.budget, &req.config);
        // Caches, coalescers and breakers are all keyed by the
        // *backend* identity, captured before any wrap replaces the
        // Arc — so sessions share them whether or not their backend
        // coalesces.
        let backend = Arc::clone(&req.evaluator);
        // Resilience wrap sits *inside* the coalescing layer: one retry
        // re-runs the whole shared batch, and one breaker verdict
        // covers every coalesced session.
        let resilient = self.inner.health.resilient(Arc::clone(&backend));
        let mut eval = self.inner.shared_evaluator(&backend, resilient);
        if let Some(reg) = &self.inner.cache {
            // Cache outside, coalescer inside: hits are answered from
            // memory without waking the batch layer; only misses enter
            // the shared cross-session batch.
            eval = Arc::new(CachedEvaluator::new(eval, reg.cache_for(&backend)));
        }
        let engine: Engine<G> = if req.scheme == Scheme::Serial {
            let pooled = self.inner.pool.lock().pop();
            let searcher = match pooled {
                Some(mut s) => {
                    s.reconfigure(req.config, eval);
                    s
                }
                None => ReusableSearch::new(req.config, eval),
            };
            Engine::Pooled(Box::new(searcher))
        } else {
            Engine::Built(
                SearchBuilder::new(req.scheme)
                    .config(req.config)
                    .evaluator(eval)
                    .build::<G>(),
            )
        };
        let session = TypedSession::begin(engine, &req.root, req.budget);
        let deadline = req
            .budget
            .time
            .or(req.config.time_budget_ms.map(Duration::from_millis))
            .map(|t| Instant::now() + t);
        let shared = Arc::new(SessionShared::new(
            self.inner.next_id.fetch_add(1, Ordering::Relaxed),
        ));
        let entry = SessionEntry {
            priority: req.priority,
            deadline,
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            cost,
            session: Box::new(session),
            shared: Arc::clone(&shared),
        };
        self.inner.outstanding.fetch_add(cost, Ordering::Relaxed);
        self.inner.queue.lock().enqueue_new(entry);
        self.inner.work_cv.notify_one();
        SearchTicket { shared }
    }

    /// Sessions currently queued for a scheduling slice (excludes the
    /// ones being stepped right now).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Admitted playout budget of sessions submitted and not yet
    /// finished — the service's outstanding load. Cluster placement
    /// routes new sessions toward the shard where this is smallest.
    pub fn outstanding_playouts(&self) -> u64 {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Circuit-breaker state of `backend` (matched by `Arc` identity,
    /// like cache and coalescing registration). `Closed` for a backend
    /// this service has never seen fail.
    pub fn backend_health(&self, backend: &Arc<dyn BatchEvaluator>) -> BreakerState {
        self.inner.health.breaker_for(backend).state()
    }

    /// Aggregate accounting, including the shared coalescing layers'
    /// realized batch fill.
    pub fn stats(&self) -> ServiceStats {
        let mut eval = *self.inner.retired_eval.lock();
        for e in self.inner.coalescers.lock().iter() {
            let s = e.layer.stats();
            eval.batches += s.batches;
            eval.samples += s.samples;
        }
        let cache = if self.inner.cache_owned {
            self.cache_stats().unwrap_or_default()
        } else {
            // Shared (cluster-owned) registry: the cluster reports it.
            CacheStats::default()
        };
        ServiceStats {
            sessions_completed: self
                .inner
                .counters
                .sessions_completed
                .load(Ordering::Relaxed),
            sessions_cancelled: self
                .inner
                .counters
                .sessions_cancelled
                .load(Ordering::Relaxed),
            sessions_failed: self.inner.counters.sessions_failed.load(Ordering::Relaxed),
            steps: self.inner.counters.steps.load(Ordering::Relaxed),
            playouts: self.inner.counters.playouts.load(Ordering::Relaxed),
            eval_batches: eval.batches,
            eval_samples: eval.samples,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_bytes: cache.bytes,
        }
    }

    /// One [`AutotuneReport`] per live backend with a tuner attached
    /// (empty when [`ServeConfig::coalesce_auto`] is off or no batching
    /// backend registered yet): the measured forward-time curve and the
    /// operating point currently steering that backend's batching.
    pub fn autotune_reports(&self) -> Vec<AutotuneReport> {
        self.inner
            .coalescers
            .lock()
            .iter()
            .filter_map(|e| e.tuner.as_ref().map(|t| t.report()))
            .collect()
    }

    /// Raw evaluation-cache counters across this service's per-backend
    /// caches; `None` when caching is disabled. Reports the registry's
    /// totals even when the registry is cluster-shared (unlike
    /// [`SearchService::stats`], which then defers to the cluster).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|r| r.stats())
    }

    /// Invalidate every cached evaluation (O(1) per backend: an epoch
    /// bump, no scan). Call after swapping model weights *in place*
    /// behind a backend `Arc` that keeps its identity; backends
    /// replaced by a *new* `Arc` are invalidated automatically.
    pub fn invalidate_eval_cache(&self) {
        if let Some(reg) = &self.inner.cache {
            reg.invalidate_all();
        }
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_cv.notify_all();
        // Watchdog first (it bounds its own exit at one poll interval):
        // after it is gone, no new workers can be spawned and the
        // handle list is stable.
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        let handles: Vec<_> = self.inner.handles.lock().drain(..).collect();
        for (_, h) in handles {
            let _ = h.join();
        }
        // Resolve whatever is still queued so no ticket waits forever.
        let leftovers: Vec<SessionEntry> = self.inner.queue.lock().drain();
        for mut entry in leftovers {
            let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let partial = entry.session.partial();
                entry.session.cancel();
                partial
            }));
            match torn {
                Ok(partial) => self.inner.finalize(entry, partial, TicketStatus::Cancelled),
                Err(payload) => self
                    .inner
                    .fail(entry, SearchError::from_panic(payload.as_ref())),
            }
        }
    }
}
