//! Chaos soak: a live cluster served under seeded fault injection
//! (evaluator panics, transient errors, latency spikes, stale outputs,
//! game-apply panics) while the suite asserts the fault-containment
//! contract:
//!
//! * the cluster never deadlocks — every wait below is bounded;
//! * every issued ticket reaches a terminal state (`Done`, `Cancelled`
//!   or `Failed` with a typed error) — no silent losses;
//! * accounting balances: completed + cancelled + failed equals the
//!   sessions admitted, outstanding load drains to zero;
//! * a quiet chaos layer (all fault rates zero) is an exact
//!   pass-through — fault-free runs are seed-for-seed identical to an
//!   unwrapped backend.
//!
//! Run with `--features invariants` to additionally enable the mcts
//! crate's internal tree/accounting assertions under fault load (CI's
//! cluster_smoke job does; see `.github/workflows/ci.yml`). Set
//! `CHAOS_SMOKE=1` for the bounded smoke-mode session count.

use games::tictactoe::TicTacToe;
use games::{connect4::Connect4, Game};
use mcts::{
    BatchEvaluator, Budget, ChaosConfig, ChaosEvaluator, ChaosGame, EvalError, EvalOutput,
    MctsConfig, Scheme, SearchBuilder, UniformEvaluator,
};
use serve::{
    ClusterConfig, Priority, SearchRequest, ServeCluster, ServeConfig, TicketStatus, WaitOutcome,
};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

/// Uniform priors with a batch preference, so the chaos layer sits
/// under the cluster's coalescing layer and injected faults hit shared
/// batches (the worst case for containment).
struct BatchyUniform {
    input_len: usize,
    priors: usize,
}

impl BatchEvaluator for BatchyUniform {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn action_space(&self) -> usize {
        self.priors
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        self.try_evaluate_batch(inputs, out).unwrap();
    }

    fn try_evaluate_batch(
        &self,
        _inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        let p = 1.0 / self.priors as f32;
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.priors, p);
            o.value = 0.0;
        }
        Ok(())
    }

    fn preferred_batch(&self) -> usize {
        4
    }
}

fn soak_sessions() -> usize {
    if std::env::var("CHAOS_SMOKE").is_ok() {
        24
    } else {
        72
    }
}

#[test]
fn cluster_soak_under_injected_faults_terminates_and_balances() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            workers: 2,
            step_quota: 16,
            retry_budget: 1,
            backoff_base: Duration::from_micros(200),
            // Breakers trip and recover during the soak: faults are
            // random, so healthy stretches close them again.
            breaker_threshold: 6,
            breaker_cooldown: Duration::from_millis(20),
            watchdog_grace: Some(Duration::from_millis(500)),
            coalesce_window: Duration::from_millis(1),
            ..Default::default()
        },
        // Generous limits: nothing sheds for rate/pending/bytes, so
        // accounting stays exact — but the byte gauge is live, so the
        // soak also proves reservations unwind through panics, typed
        // failures, watchdog reaps and cancellation races.
        admission: Some(serve::AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 4096,
            model_byte_budget: Some(u64::MAX / 2),
            ..Default::default()
        }),
    });
    let game = TicTacToe::new();
    let chaotic_eval: Arc<dyn BatchEvaluator> = Arc::new(ChaosEvaluator::new(
        Arc::new(BatchyUniform {
            input_len: game.encoded_len(),
            priors: game.action_space(),
        }),
        ChaosConfig {
            seed: 0xD15EA5E,
            panic_p: 0.03,
            error_p: 0.08,
            latency_p: 0.05,
            latency: Duration::from_micros(300),
            stale_p: 0.05,
        },
    ));
    let healthy_eval: Arc<dyn BatchEvaluator> =
        Arc::new(UniformEvaluator::for_game(&Connect4::new()));

    let n = soak_sessions();
    let mut tickets = Vec::with_capacity(n);
    let mut shed = 0u64;
    for i in 0..n {
        let prio = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        let submitted = if i % 4 == 3 {
            // A healthy co-resident model keeps flowing throughout.
            cluster.submit(
                SearchRequest::new(Connect4::new(), Arc::clone(&healthy_eval))
                    .config(MctsConfig {
                        playouts: 48,
                        ..Default::default()
                    })
                    .priority(prio),
            )
        } else {
            // Chaos-wrapped game AND evaluator: apply() panics mid-tree
            // exercise quarantine beyond the evaluator boundary.
            let root = ChaosGame::new(TicTacToe::new(), 0xBAD_5EED ^ i as u64, 0.002);
            cluster.submit(
                SearchRequest::new(root, Arc::clone(&chaotic_eval))
                    .config(MctsConfig {
                        playouts: 96,
                        ..Default::default()
                    })
                    .budget(Budget::playouts(96))
                    .priority(prio),
            )
        };
        match submitted {
            Ok(t) => tickets.push(t),
            Err(_) => shed += 1, // breaker-shed while a backend cools down
        }
        if i % 7 == 6 {
            if let Some(t) = tickets.last() {
                t.cancel(); // cancellation races the faults
            }
        }
    }

    // Containment contract: every issued ticket terminates (bounded
    // wait — a hang here IS the deadlock the harness exists to catch).
    let mut done = 0u64;
    let mut cancelled = 0u64;
    let mut failed = 0u64;
    for t in &tickets {
        let outcome = t.wait_timeout(WAIT);
        assert!(outcome.is_finished(), "soak ticket never terminated");
        match t.status() {
            TicketStatus::Done => done += 1,
            TicketStatus::Cancelled => cancelled += 1,
            TicketStatus::Failed(err) => {
                failed += 1;
                // Failures are typed, never opaque unwinds.
                let msg = err.to_string();
                assert!(!msg.is_empty());
            }
            other => panic!("non-terminal status after wait: {other:?}"),
        }
    }
    assert_eq!(done + cancelled + failed, tickets.len() as u64);
    assert!(done > 0, "some sessions must survive the fault rates");
    assert!(failed > 0, "fault rates are high enough that some fail");

    // Accounting balances across the shards.
    let stats = cluster.stats();
    let total = stats.total();
    assert_eq!(
        total.sessions_completed + total.sessions_cancelled + total.sessions_failed,
        tickets.len() as u64,
        "cluster accounting must match issued tickets"
    );
    assert_eq!(stats.admitted, tickets.len() as u64);
    assert_eq!(stats.shed(), shed);
    for (i, load) in cluster.shard_loads().iter().enumerate() {
        assert_eq!(*load, 0, "shard {i} outstanding load must drain to zero");
    }
    // Byte reservations unwind no matter how each session died. The
    // release fires on the worker thread during finalization, so give
    // the last one a bounded moment to land.
    let deadline = std::time::Instant::now() + WAIT;
    while cluster.stats().admitted_bytes != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "leaked byte reservation after the soak: {} bytes",
            cluster.stats().admitted_bytes
        );
        std::thread::yield_now();
    }

    // The cluster is still serviceable after the storm.
    let after = cluster
        .submit(
            SearchRequest::new(Connect4::new(), Arc::clone(&healthy_eval)).config(MctsConfig {
                playouts: 32,
                ..Default::default()
            }),
        )
        .expect("healthy backend admitted after the soak");
    assert!(matches!(
        after.wait_timeout(WAIT),
        WaitOutcome::Finished(_, TicketStatus::Done)
    ));
}

#[test]
fn quiet_chaos_layer_is_seed_for_seed_identical() {
    // All fault rates zero ⇒ the chaos wrappers must be exact
    // pass-throughs: same search, same seed, bit-identical outcome.
    let game = TicTacToe::new();
    let run = |eval: Arc<dyn BatchEvaluator>| {
        let mut s = SearchBuilder::new(Scheme::Serial)
            .config(MctsConfig {
                playouts: 400,
                ..Default::default()
            })
            .evaluator(eval)
            .build::<TicTacToe>();
        s.search(&game)
    };
    let plain = run(Arc::new(UniformEvaluator::for_game(&game)));
    let quiet = run(Arc::new(ChaosEvaluator::new(
        Arc::new(UniformEvaluator::for_game(&game)),
        ChaosConfig {
            seed: 7,
            panic_p: 0.0,
            error_p: 0.0,
            latency_p: 0.0,
            latency: Duration::ZERO,
            stale_p: 0.0,
        },
    )));
    assert_eq!(plain.visits, quiet.visits, "visit-for-visit identical");
    assert_eq!(plain.probs, quiet.probs);
    assert_eq!(plain.value, quiet.value);
    assert_eq!(plain.stats.playouts, quiet.stats.playouts);
}
