//! End-to-end tests of the sharded dispatch layer: admission control and
//! load shedding, weighted-fair scheduling, placement/affinity,
//! streaming delivery, and the anytime `wait_timeout` contract.

use games::tictactoe::TicTacToe;
use games::Game;
use mcts::{MctsConfig, UniformEvaluator};
use serve::{
    AdmissionConfig, ClusterConfig, LeastLoaded, Priority, RejectReason, SearchRequest,
    SearchService, ServeCluster, ServeConfig, StreamItem, TicketStatus,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg(playouts: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        ..Default::default()
    }
}

fn shard_cfg(workers: usize, step_quota: usize) -> ServeConfig {
    ServeConfig {
        workers,
        step_quota,
        max_pooled: 8,
        coalesce_window: Duration::from_millis(2),
        ..Default::default()
    }
}

fn uniform() -> Arc<UniformEvaluator> {
    Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
}

#[test]
fn cluster_serves_a_burst_across_shards() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: shard_cfg(2, 32),
        admission: None,
    });
    let eval = uniform();
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(100 + i)),
                )
                .expect("no admission control: everything admitted")
        })
        .collect();
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.wait().stats.playouts, (100 + i) as u64, "session {i}");
    }
    let stats = cluster.stats();
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.shed(), 0);
    assert_eq!(stats.total().sessions_completed, 12);
    assert_eq!(stats.per_shard.len(), 2);
}

#[test]
fn overload_burst_is_shed_with_retry_hint_not_queued() {
    // Bucket: 500-playout burst, 1000/s refill. A burst of twenty
    // 100-playout requests can only see ~5-6 admissions; the rest MUST
    // be rejected immediately (bounded queue, no deadlock, no growth).
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: shard_cfg(2, 16),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1000.0,
            burst_playouts: 500,
            max_pending: 64,
            ..Default::default()
        }),
    });
    let eval = uniform();
    let t0 = Instant::now();
    let mut admitted = Vec::new();
    let mut rejections = Vec::new();
    for _ in 0..20 {
        match cluster.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(100)),
        ) {
            Ok(t) => admitted.push(t),
            Err(r) => rejections.push(r),
        }
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "admission decisions are immediate, not queued"
    );
    assert!(!admitted.is_empty(), "the burst head fits the bucket");
    assert!(
        rejections.len() >= 10,
        "a 2000-playout burst against a 500-token bucket must shed most \
         requests, shed only {}",
        rejections.len()
    );
    for r in &rejections {
        assert_eq!(r.reason, RejectReason::RateLimited);
        assert!(r.retry_after > Duration::ZERO);
        assert!(r.retry_after <= Duration::from_secs(60));
    }
    // Every admitted session still runs to its exact budget.
    for t in &admitted {
        assert_eq!(t.wait().stats.playouts, 100);
    }
    let stats = cluster.stats();
    assert_eq!(stats.admitted as usize, admitted.len());
    assert_eq!(stats.shed_rate_limited as usize, rejections.len());
    assert_eq!(stats.admitted + stats.shed(), 20);
}

#[test]
fn pending_bound_sheds_queue_full_and_recovers_after_completion() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: shard_cfg(1, 8),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: u64::MAX / 2,
            max_pending: 2,
            ..Default::default()
        }),
    });
    let eval = uniform();
    let submit = || {
        cluster.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(400_000)),
        )
    };
    let a = submit().expect("slot 1");
    let b = submit().expect("slot 2");
    let shed = submit().expect_err("pending bound reached");
    assert_eq!(shed.reason, RejectReason::QueueFull);
    // Finishing (here: cancelling) a session frees its pending slot.
    a.cancel();
    b.cancel();
    assert_eq!(a.wait().stats.playouts, a.partial().unwrap().stats.playouts);
    b.wait();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match submit() {
            Ok(t) => {
                t.cancel();
                t.wait();
                break;
            }
            Err(_) if Instant::now() < deadline => std::thread::yield_now(),
            Err(e) => panic!("pending slots never freed: {e}"),
        }
    }
}

#[test]
fn weighted_fair_shares_converge_to_class_weights() {
    // One worker, two classes with weight ratio 3:1 (High:Low), two
    // never-ending sessions per class: the observed playout split must
    // converge to the configured weights instead of strict-priority
    // starvation (which would give Low exactly zero).
    let weights = [1, 1, 3];
    let service = SearchService::new(ServeConfig {
        workers: 1,
        step_quota: 16,
        max_pooled: 4,
        coalesce_window: Duration::ZERO,
        class_weights: weights,
        ..Default::default()
    });
    let eval = uniform();
    let submit = |priority: Priority| {
        service.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                .config(cfg(100_000_000))
                .priority(priority),
        )
    };
    let low = [submit(Priority::Low), submit(Priority::Low)];
    let high = [submit(Priority::High), submit(Priority::High)];
    // Let the scheduler run a few hundred slices.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().steps < 600 {
        assert!(Instant::now() < deadline, "scheduler stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    for t in low.iter().chain(&high) {
        t.cancel();
    }
    let playouts =
        |ts: &[serve::SearchTicket; 2]| ts.iter().map(|t| t.wait().stats.playouts).sum::<u64>();
    let low_total = playouts(&low) as f64;
    let high_total = playouts(&high) as f64;
    assert!(low_total > 0.0, "weighted-fair must not starve Low");
    let ratio = high_total / low_total;
    let expected = weights[2] as f64 / weights[0] as f64;
    assert!(
        ratio > expected * 0.65 && ratio < expected * 1.5,
        "observed High:Low playout ratio {ratio:.2}, configured {expected}"
    );
}

#[test]
fn weighted_fair_holds_with_multiple_workers() {
    // Two workers: a class's only queued copies are regularly in flight
    // (heap momentarily empty), which used to snap its pass up to the
    // global virtual time at every re-queue and collapse the weighted
    // shares toward 1:1. With active-count tracking the heavy class
    // must still clearly dominate.
    let weights = [1, 1, 3];
    let service = SearchService::new(ServeConfig {
        workers: 2,
        step_quota: 16,
        max_pooled: 8,
        coalesce_window: Duration::ZERO,
        class_weights: weights,
        ..Default::default()
    });
    let eval = uniform();
    let submit = |priority: Priority| {
        service.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                .config(cfg(100_000_000))
                .priority(priority),
        )
    };
    let low: Vec<_> = (0..3).map(|_| submit(Priority::Low)).collect();
    let high: Vec<_> = (0..3).map(|_| submit(Priority::High)).collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().steps < 900 {
        assert!(Instant::now() < deadline, "scheduler stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    for t in low.iter().chain(&high) {
        t.cancel();
    }
    let playouts =
        |ts: &[serve::SearchTicket]| ts.iter().map(|t| t.wait().stats.playouts).sum::<u64>();
    let low_total = playouts(&low) as f64;
    let high_total = playouts(&high) as f64;
    assert!(low_total > 0.0, "weighted-fair must not starve Low");
    let ratio = high_total / low_total;
    // Work-conserving fill-in (a Low runs whenever both queued Highs
    // are in flight) pulls the realized ratio below the configured 3,
    // but the pre-fix collapse landed at ~1. Require clear dominance.
    assert!(
        ratio > 1.8 && ratio < 4.5,
        "observed High:Low playout ratio {ratio:.2} with weights {weights:?} on 2 workers"
    );
}

#[test]
fn backend_affinity_keeps_a_model_on_one_shard() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 4,
        shard: shard_cfg(1, 32),
        admission: None,
    });
    let eval = uniform();
    let mut shards_seen = std::collections::BTreeSet::new();
    for _ in 0..6 {
        let t = cluster
            .submit(
                SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(60)),
            )
            .unwrap();
        shards_seen.insert(t.shard());
        t.wait();
    }
    assert_eq!(
        shards_seen.len(),
        1,
        "same backend, uncontended load: placement must stick to the home \
         shard, saw {shards_seen:?}"
    );
}

#[test]
fn affinity_holds_under_concurrent_load_then_spills() {
    // One dominant model, overlapping submits: the first sessions stay
    // on the home shard (within the spill headroom of 2 session costs),
    // then the overflow spills to the least-loaded shard. A
    // mean-relative spill rule would wrongly scatter from session two.
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 4,
        shard: shard_cfg(1, 8),
        admission: None,
    });
    let eval = uniform();
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(50_000_000)),
                )
                .unwrap()
        })
        .collect();
    assert_eq!(tickets[0].shard(), tickets[1].shard(), "within headroom");
    assert_eq!(tickets[0].shard(), tickets[2].shard(), "within headroom");
    assert_ne!(
        tickets[0].shard(),
        tickets[3].shard(),
        "beyond 2×cost headroom: spill to least-loaded"
    );
    for t in &tickets {
        t.cancel();
        t.wait();
    }
}

#[test]
fn least_loaded_placement_spreads_outstanding_load() {
    let cluster = ServeCluster::with_placement(
        ClusterConfig {
            shards: 2,
            shard: shard_cfg(1, 8),
            admission: None,
        },
        Box::new(LeastLoaded),
    );
    let eval = uniform();
    // Two heavyweight sessions: the second must land on the other shard
    // because the first's budget is still outstanding.
    let a = cluster
        .submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(500_000)),
        )
        .unwrap();
    let b = cluster
        .submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(500_000)),
        )
        .unwrap();
    assert_ne!(a.shard(), b.shard(), "least-loaded must balance the pair");
    a.cancel();
    b.cancel();
    a.wait();
    b.wait();
}

#[test]
fn subscription_streams_snapshots_then_final() {
    let service = SearchService::new(shard_cfg(1, 8));
    let ticket = service.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(2000)));
    let mut stream = ticket.subscribe();
    let mut last_seq = 0u64;
    let mut partials = 0usize;
    let mut final_result = None;
    for item in &mut stream {
        match item {
            StreamItem::Partial(snap) => {
                assert!(
                    snap.stats.seq > last_seq,
                    "stream must only deliver fresh snapshots ({} after {last_seq})",
                    snap.stats.seq
                );
                last_seq = snap.stats.seq;
                partials += 1;
            }
            StreamItem::Final(result, status) => {
                assert_eq!(status, TicketStatus::Done);
                final_result = Some(result);
            }
        }
    }
    let final_result = final_result.expect("stream ends with the final result");
    assert_eq!(final_result.stats.playouts, 2000);
    assert!(
        partials >= 1,
        "a 2000-playout session sliced by 8 must stream intermediate snapshots"
    );
    assert!(stream.recv().is_none(), "stream is exhausted after Final");
    assert!(
        stream.recv_timeout(Duration::from_millis(1)).is_none(),
        "exhaustion is sticky"
    );
}

#[test]
fn wait_timeout_returns_latest_snapshot_not_an_empty_hand() {
    let service = SearchService::new(shard_cfg(1, 8));
    let ticket =
        service.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(50_000_000)));
    // Wait in small slices until at least one snapshot exists; every
    // timeout must surface the newest snapshot with a usable answer.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seen_seq = 0u64;
    loop {
        let outcome = ticket.wait_timeout(Duration::from_millis(5));
        assert!(!outcome.is_finished(), "50M playouts cannot finish here");
        let snap = outcome.into_result();
        assert!(snap.stats.seq >= seen_seq, "snapshots are monotone");
        seen_seq = seen_seq.max(snap.stats.seq);
        if snap.stats.seq > 0 {
            assert!(snap.stats.playouts > 0);
            assert_eq!(snap.visits.len(), 9, "full action space, never empty");
            let _usable = snap.best_action();
            break;
        }
        assert!(Instant::now() < deadline, "no snapshot ever published");
    }
    ticket.cancel();
    let outcome = ticket.wait_timeout(Duration::from_secs(20));
    assert!(outcome.is_finished(), "cancelled session finalizes");
    assert_eq!(ticket.status(), TicketStatus::Cancelled);
}

#[test]
fn cluster_tickets_stream_too() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: shard_cfg(1, 16),
        admission: None,
    });
    let t = cluster
        .submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(600)))
        .unwrap();
    let items: Vec<_> = t.subscribe().collect();
    match items.last() {
        Some(StreamItem::Final(r, TicketStatus::Done)) => {
            assert_eq!(r.stats.playouts, 600)
        }
        other => panic!("stream must end with Final(Done), got {other:?}"),
    }
}

#[test]
fn dropping_the_cluster_resolves_outstanding_tickets() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: shard_cfg(1, 8),
        admission: None,
    });
    let eval = uniform();
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(500_000)),
                )
                .unwrap()
        })
        .collect();
    drop(cluster);
    for t in tickets {
        assert!(t.wait().stats.playouts < 500_000);
        assert_eq!(t.status(), TicketStatus::Cancelled);
    }
}

#[test]
fn cluster_cache_is_shared_across_shards() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            eval_cache_bytes: Some(8 << 20),
            ..shard_cfg(1, 32)
        },
        admission: None,
    });
    let eval = uniform();
    // Warm the cache through the front door (affinity parks the backend
    // on one shard).
    let t = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(200)))
        .unwrap();
    assert_eq!(t.wait().stats.playouts, 200);
    let warmed_on = t.shard();
    let cold = cluster.stats();
    assert!(cold.cache.misses > 0, "cold run records misses");
    // Replay the identical search on the *other* shard directly: the
    // registry spans shards, so shard 0's work is shard 1's hit.
    let other = 1 - warmed_on;
    let t = cluster
        .shard(other)
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(200)));
    assert_eq!(t.wait().stats.playouts, 200);
    let st = cluster.stats();
    assert!(
        st.cache.hits > 0,
        "other shard must hit the shared cache: {:?}",
        st.cache
    );
    // Shard-local stats carry zero cache counters (the registry is
    // cluster-owned), and total() folds the shared counters in once.
    for per in &st.per_shard {
        assert_eq!(per.cache_hits, 0);
        assert_eq!(per.cache_misses, 0);
    }
    assert_eq!(st.total().cache_hits, st.cache.hits);
    assert_eq!(st.total().cache_misses, st.cache.misses);
}

/// A batching backend cheap enough for calibration yet coalescible.
struct BatchyUniform {
    input_len: usize,
    actions: usize,
}

impl mcts::BatchEvaluator for BatchyUniform {
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn action_space(&self) -> usize {
        self.actions
    }
    fn evaluate_batch(&self, _inputs: &[&[f32]], out: &mut [mcts::EvalOutput]) {
        let p = 1.0 / self.actions as f32;
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.actions, p);
            o.value = 0.0;
        }
    }
    fn preferred_batch(&self) -> usize {
        8
    }
}

#[test]
fn cluster_stats_export_autotune_reports_and_metrics_json() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            workers: 2,
            step_quota: 32,
            coalesce_auto: true,
            calibrate_on_register: true,
            ..Default::default()
        },
        admission: None,
    });
    let g = TicTacToe::new();
    let eval: Arc<dyn mcts::BatchEvaluator> = Arc::new(BatchyUniform {
        input_len: g.encoded_len(),
        actions: g.action_space(),
    });
    let t = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval)).config(cfg(96)))
        .unwrap();
    assert_eq!(t.wait().stats.playouts, 96);
    let home = t.shard();
    let st = cluster.stats();
    assert_eq!(
        st.autotune.len(),
        1,
        "one tuner on the backend's home shard"
    );
    assert_eq!(st.autotune[0].shard, home, "report carries its shard index");
    assert!(st.autotune[0].calibrated);
    assert!(!st.autotune[0].curve.is_empty());
    // The metrics dump is valid enough JSON for a scraper: balanced
    // braces, and the headline sections all present.
    let json = st.metrics_json();
    for key in [
        "\"admitted\":",
        "\"shed\":",
        "\"eval\":",
        "\"mean_batch\":",
        "\"cache\":",
        "\"autotune\":[",
        "\"curve\":[",
        "\"forward_ns\":",
    ] {
        assert!(json.contains(key), "metrics dump missing {key}: {json}");
    }
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced JSON: {json}");
}

#[test]
fn drain_lets_in_flight_sessions_finish() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: shard_cfg(2, 64),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 64,
            ..Default::default()
        }),
    });
    let eval = uniform();
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(400)),
                )
                .unwrap()
        })
        .collect();
    let report = cluster.drain(Duration::from_secs(30));
    assert!(
        report.drained,
        "all sessions had time to finish: {report:?}"
    );
    assert_eq!(report.cancelled, 0, "nothing ran past the deadline");
    assert_eq!(report.pending_after, 0);
    assert_eq!(
        cluster.pending_sessions(),
        0,
        "admission accounting returned to zero"
    );
    assert_eq!(cluster.in_flight(), 0);
    for t in &tickets {
        assert_eq!(t.status(), TicketStatus::Done, "drain is not cancellation");
        assert_eq!(t.wait().stats.playouts, 400);
    }
    // The front door is closed for good: everything after drain sheds
    // with the terminal Draining reason and a zero retry hint.
    assert!(cluster.is_draining());
    let rej = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(50)))
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::Draining);
    assert_eq!(rej.retry_after, Duration::ZERO, "fail over, don't wait");
    let stats = cluster.stats();
    assert_eq!(stats.shed_draining, 1);
    assert_eq!(stats.shed(), 1);
    assert!(stats.metrics_json().contains("\"draining\":1"));
}

/// The byte footprint admission charges one `cfg(playouts)` TicTacToe
/// session: its provisioned arena capacity times the slot size (the
/// same arithmetic `ServeCluster::submit` runs).
fn session_bytes(playouts: usize) -> u64 {
    (cfg(playouts).arena_capacity(9) * mcts::NodeArena::slot_bytes()) as u64
}

#[test]
fn model_byte_budget_sheds_transiently_and_recovers_on_finalize() {
    let per_session = session_bytes(100);
    // Room for one session plus change, never two.
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: shard_cfg(1, 32),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 64,
            model_byte_budget: Some(per_session + per_session / 2),
            ..Default::default()
        }),
    });
    let eval = uniform();
    let submit = || {
        cluster.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(100)),
        )
    };
    let a = submit().expect("first session fits the byte budget");
    assert_eq!(
        cluster.stats().admitted_bytes,
        per_session,
        "the reservation is visible while the session is in flight"
    );
    let rej = submit().expect_err("second session exceeds the model byte budget");
    assert_eq!(rej.reason, RejectReason::OverMemory);
    assert!(
        rej.retry_after > Duration::ZERO,
        "transient: bytes come back as sessions finalize"
    );
    assert_eq!(a.wait().stats.playouts, 100);
    // Finalization releases the reservation; the next session fits. The
    // release runs on the worker thread after wait() observes the final
    // result, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let b = loop {
        match submit() {
            Ok(t) => break t,
            Err(_) if Instant::now() < deadline => std::thread::yield_now(),
            Err(e) => panic!("bytes never released after completion: {e}"),
        }
    };
    assert_eq!(b.wait().stats.playouts, 100);
    let stats = cluster.stats();
    assert!(stats.shed_over_memory >= 1);
    assert_eq!(
        stats.admitted + stats.shed(),
        stats.admitted + stats.shed_over_memory
    );
    assert!(
        stats.metrics_json().contains("\"over_memory\":"),
        "metrics dump exports the over-memory shed counter"
    );
}

#[test]
fn session_byte_quota_is_terminal_with_zero_retry() {
    let per_session = session_bytes(100);
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: shard_cfg(1, 32),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 64,
            session_byte_quota: Some(per_session / 2),
            ..Default::default()
        }),
    });
    let eval = uniform();
    let rej = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(100)))
        .expect_err("arena larger than the per-session quota");
    assert_eq!(rej.reason, RejectReason::OverMemory);
    assert_eq!(
        rej.retry_after,
        Duration::ZERO,
        "terminal: waiting never shrinks the request"
    );
    let stats = cluster.stats();
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.shed_over_memory, 1);
    assert_eq!(stats.admitted_bytes, 0, "a shed request reserves nothing");
    // A session provisioned under the quota (explicit tight arena bound)
    // is admitted: the quota prices the arena, not the playout count.
    let small = MctsConfig {
        playouts: 100,
        max_nodes: Some(64),
        ..Default::default()
    };
    let t = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(small))
        .expect("a bounded arena fits the session quota");
    assert_eq!(t.wait().stats.playouts, 100);
}

#[test]
fn byte_accounting_balances_through_cancel_and_drain() {
    let per_session = session_bytes(400_000);
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: shard_cfg(1, 16),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 64,
            model_byte_budget: Some(16 * per_session),
            ..Default::default()
        }),
    });
    let eval = uniform();
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(400_000)),
                )
                .unwrap()
        })
        .collect();
    assert_eq!(
        cluster.stats().admitted_bytes,
        3 * per_session,
        "every in-flight session's reservation is accounted"
    );
    // Cancellation releases exactly the cancelled session's bytes.
    tickets[0].cancel();
    tickets[0].wait();
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.stats().admitted_bytes != 2 * per_session {
        assert!(
            Instant::now() < deadline,
            "cancelled session never returned its bytes: {}",
            cluster.stats().admitted_bytes
        );
        std::thread::yield_now();
    }
    // Drain unwinds the rest (force-cancelling stragglers): the gauge
    // must return to zero — no leaked reservation.
    let report = cluster.drain(Duration::ZERO);
    assert!(report.drained, "{report:?}");
    let stats = cluster.stats();
    assert_eq!(stats.admitted_bytes, 0, "drain left bytes reserved");
    assert!(stats.metrics_json().contains("\"admitted_bytes\":0"));
}

#[test]
fn shutdown_cancels_stragglers_and_unwinds_accounting() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: shard_cfg(1, 128),
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 64,
            ..Default::default()
        }),
    });
    let eval = uniform();
    // Budgets far beyond what can finish before the zero-timeout drain:
    // these must be force-cancelled, not waited out.
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            cluster
                .submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(50_000_000)),
                )
                .unwrap()
        })
        .collect();
    assert!(cluster.pending_sessions() > 0, "sessions admitted");
    let report = cluster.shutdown();
    assert!(
        report.drained,
        "cancellations landed within the grace period: {report:?}"
    );
    assert!(report.cancelled >= 1, "stragglers were force-cancelled");
    assert_eq!(report.pending_after, 0, "no leaked admission slot");
    for t in &tickets {
        assert_eq!(t.status(), TicketStatus::Cancelled);
    }
}
