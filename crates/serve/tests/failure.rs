//! Fault-containment tests: panicking sessions are quarantined without
//! taking down the worker pool, backend failures surface as typed
//! [`TicketStatus::Failed`] terminal states, the watchdog reaps stuck
//! runs, circuit breakers shed and recover, and teardown stays clean
//! with failures in flight.

use games::tictactoe::TicTacToe;
use games::Game;
use mcts::{
    BatchEvaluator, Budget, ChaosConfig, ChaosEvaluator, EvalError, EvalOutput, MctsConfig,
    SearchError, UniformEvaluator,
};
use serve::{
    BreakerState, ClusterConfig, RejectReason, SearchRequest, SearchService, ServeCluster,
    ServeConfig, StreamItem, TicketStatus, WaitOutcome,
};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

fn cfg(playouts: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        ..Default::default()
    }
}

fn service(serve: ServeConfig) -> SearchService {
    SearchService::new(serve)
}

fn fast_faults() -> ServeConfig {
    ServeConfig {
        workers: 2,
        step_quota: 16,
        retry_budget: 1,
        backoff_base: Duration::from_micros(200),
        breaker_threshold: 1000, // breaker out of the way unless a test wants it
        ..Default::default()
    }
}

fn uniform() -> Arc<dyn BatchEvaluator> {
    Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
}

/// Uniform priors with a switchable failure mode and a batch preference
/// (>1 so the service installs its coalescing layer).
struct SwitchableEvaluator {
    priors: usize,
    failing: AtomicBool,
    transient: bool,
    calls: AtomicU32,
}

impl SwitchableEvaluator {
    fn healthy(priors: usize) -> Self {
        SwitchableEvaluator {
            priors,
            failing: AtomicBool::new(false),
            transient: true,
            calls: AtomicU32::new(0),
        }
    }

    fn failing(priors: usize, transient: bool) -> Self {
        SwitchableEvaluator {
            priors,
            failing: AtomicBool::new(true),
            transient,
            calls: AtomicU32::new(0),
        }
    }

    fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::SeqCst);
    }
}

impl BatchEvaluator for SwitchableEvaluator {
    fn input_len(&self) -> usize {
        TicTacToe::new().encoded_len()
    }

    fn action_space(&self) -> usize {
        self.priors
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        if let Err(e) = self.try_evaluate_batch(inputs, out) {
            std::panic::panic_any(SearchError::EvaluatorFailed { reason: e.reason });
        }
    }

    fn try_evaluate_batch(
        &self,
        _inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.failing.load(Ordering::SeqCst) {
            return Err(if self.transient {
                EvalError::transient("switchable backend down")
            } else {
                EvalError::permanent("switchable backend down")
            });
        }
        let p = 1.0 / self.priors as f32;
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.priors, p);
            o.value = 0.0;
        }
        Ok(())
    }

    fn preferred_batch(&self) -> usize {
        4
    }
}

/// An evaluator that hangs long enough for the watchdog to reap its
/// session, then returns normally.
struct HangingEvaluator {
    hang: Duration,
    priors: usize,
}

impl BatchEvaluator for HangingEvaluator {
    fn input_len(&self) -> usize {
        TicTacToe::new().encoded_len()
    }

    fn action_space(&self) -> usize {
        self.priors
    }

    fn evaluate_batch(&self, _inputs: &[&[f32]], out: &mut [EvalOutput]) {
        std::thread::sleep(self.hang);
        let p = 1.0 / self.priors as f32;
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.priors, p);
            o.value = 0.0;
        }
    }
}

#[test]
fn panicking_session_fails_typed_while_the_pool_keeps_serving() {
    let s = service(fast_faults());
    // panic_p = 1.0: the first evaluation panics with a plain &str.
    let chaotic: Arc<dyn BatchEvaluator> = Arc::new(ChaosEvaluator::new(
        uniform(),
        ChaosConfig {
            panic_p: 1.0,
            ..Default::default()
        },
    ));
    let doomed = s.submit(SearchRequest::new(TicTacToe::new(), chaotic).config(cfg(256)));
    let outcome = doomed.wait_timeout(WAIT);
    assert!(outcome.is_finished(), "failed ticket must resolve");
    assert!(doomed.status().is_failed());
    match doomed.error() {
        Some(SearchError::Panicked { payload }) => {
            assert!(payload.contains("chaos"), "payload preserved: {payload}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The worker that caught the panic keeps serving: a healthy session
    // completes on the same pool.
    let fine = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(64)));
    assert!(matches!(
        fine.wait_timeout(WAIT),
        WaitOutcome::Finished(_, TicketStatus::Done)
    ));
    let stats = s.stats();
    assert_eq!(stats.sessions_failed, 1);
    assert_eq!(stats.sessions_completed, 1);
}

#[test]
fn exhausted_retries_surface_as_evaluator_failed() {
    let s = service(fast_faults());
    let backend: Arc<dyn BatchEvaluator> = Arc::new(SwitchableEvaluator::failing(9, true));
    let t = s.submit(SearchRequest::new(TicTacToe::new(), backend).config(cfg(128)));
    t.wait_timeout(WAIT);
    match t.error() {
        Some(SearchError::EvaluatorFailed { reason }) => {
            assert!(
                reason.contains("switchable"),
                "original reason kept: {reason}"
            )
        }
        other => panic!("expected EvaluatorFailed, got {other:?}"),
    }
    assert_eq!(s.stats().sessions_failed, 1);
}

#[test]
fn result_stream_ends_with_failed_after_partials() {
    // Healthy long enough to publish partial snapshots, then permanent
    // failure: the stream must deliver the partials and then a Final
    // item carrying Failed — never silence.
    let s = service(ServeConfig {
        workers: 1,
        step_quota: 8,
        retry_budget: 0,
        ..fast_faults()
    });
    let backend = Arc::new(SwitchableEvaluator::healthy(9));
    let t = s.submit(
        SearchRequest::new(
            TicTacToe::new(),
            Arc::clone(&backend) as Arc<dyn BatchEvaluator>,
        )
        .config(cfg(100_000)),
    );
    let mut stream = t.subscribe();
    let mut partials = 0u32;
    let mut terminal = None;
    while let Some(item) = stream.recv_timeout(WAIT) {
        match item {
            StreamItem::Partial(snap) => {
                partials += 1;
                assert!(snap.stats.seq > 0);
                if partials == 2 {
                    backend.set_failing(true);
                }
            }
            StreamItem::Final(_, status) => {
                terminal = Some(status);
                break;
            }
        }
    }
    assert!(partials >= 2, "saw {partials} partials before the fault");
    match terminal {
        Some(TicketStatus::Failed(SearchError::EvaluatorFailed { .. })) => {}
        other => panic!("stream must end Failed(EvaluatorFailed), got {other:?}"),
    }
}

#[test]
fn cancel_during_retry_storm_still_terminates() {
    let s = service(ServeConfig {
        retry_budget: 3,
        backoff_base: Duration::from_millis(5),
        ..fast_faults()
    });
    let backend: Arc<dyn BatchEvaluator> = Arc::new(SwitchableEvaluator::failing(9, true));
    let t = s.submit(SearchRequest::new(TicTacToe::new(), backend).config(cfg(4096)));
    std::thread::sleep(Duration::from_millis(2));
    t.cancel();
    let outcome = t.wait_timeout(WAIT);
    assert!(outcome.is_finished(), "ticket must not hang mid-retry");
    // Depending on who wins the race the session is observed as failed
    // (retries exhausted) or cancelled (flag seen first) — both are
    // terminal and fully accounted.
    let st = t.status();
    assert!(
        st.is_failed() || st == TicketStatus::Cancelled,
        "terminal state, got {st:?}"
    );
    assert_eq!(s.outstanding_playouts(), 0);
}

#[test]
fn watchdog_reaps_stuck_session_and_restores_capacity() {
    let s = service(ServeConfig {
        workers: 1, // the hang would otherwise pin the whole pool
        watchdog_grace: Some(Duration::from_millis(100)),
        ..fast_faults()
    });
    let hung: Arc<dyn BatchEvaluator> = Arc::new(HangingEvaluator {
        hang: Duration::from_secs(4),
        priors: 9,
    });
    let stuck = s.submit(
        SearchRequest::new(TicTacToe::new(), hung)
            .config(cfg(100_000))
            .budget(Budget::time(Duration::from_millis(50))),
    );
    let outcome = stuck.wait_timeout(Duration::from_secs(10));
    assert!(outcome.is_finished(), "reaped ticket resolves promptly");
    assert_eq!(stuck.error(), Some(SearchError::DeadlineExceeded));
    // The wedged worker was replaced: a healthy session completes even
    // though the hung evaluator is still sleeping on the old thread.
    let fine = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(64)));
    let outcome = fine.wait_timeout(Duration::from_secs(10));
    assert!(matches!(
        outcome,
        WaitOutcome::Finished(_, TicketStatus::Done)
    ));
    assert_eq!(s.stats().sessions_failed, 1);
    assert_eq!(s.outstanding_playouts(), 0);
}

#[test]
fn breaker_sheds_unhealthy_backend_and_recovers_after_probe() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: ServeConfig {
            retry_budget: 0,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(100),
            ..fast_faults()
        },
        admission: None,
    });
    let backend = Arc::new(SwitchableEvaluator::failing(9, true));
    let dyn_backend: Arc<dyn BatchEvaluator> = Arc::clone(&backend) as _;
    // Drive the backend to failure until its breaker opens.
    let mut failed = 0;
    for _ in 0..20 {
        match cluster
            .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&dyn_backend)).config(cfg(64)))
        {
            Ok(t) => {
                t.wait_timeout(WAIT);
                if t.status().is_failed() {
                    failed += 1;
                }
            }
            Err(rej) => {
                assert_eq!(rej.reason, RejectReason::Unhealthy);
                assert!(rej.retry_after > Duration::ZERO, "honest backoff hint");
                break;
            }
        }
    }
    assert!(failed >= 2, "breaker needs {failed} failures to trip");
    assert_eq!(cluster.backend_health(&dyn_backend), BreakerState::Open);
    assert!(cluster.stats().shed_unhealthy >= 1);
    // A healthy co-resident backend is unaffected by the open breaker.
    let healthy = cluster
        .submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(64)))
        .expect("healthy backend admitted while the sick one cools down");
    assert!(matches!(
        healthy.wait_timeout(WAIT),
        WaitOutcome::Finished(_, TicketStatus::Done)
    ));
    // Cooldown elapses, the backend is fixed, and the probe session
    // closes the breaker again.
    backend.set_failing(false);
    std::thread::sleep(Duration::from_millis(120));
    let probe = cluster
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&dyn_backend)).config(cfg(64)))
        .expect("probe-eligible breaker admits the recovery probe");
    let outcome = probe.wait_timeout(WAIT);
    assert!(matches!(
        outcome,
        WaitOutcome::Finished(_, TicketStatus::Done)
    ));
    assert_eq!(cluster.backend_health(&dyn_backend), BreakerState::Closed);
}

#[test]
fn dropping_a_cluster_with_open_breakers_and_failed_tickets_is_clean() {
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            retry_budget: 0,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(60),
            ..fast_faults()
        },
        admission: None,
    });
    let sick: Arc<dyn BatchEvaluator> = Arc::new(SwitchableEvaluator::failing(9, true));
    let mut tickets = Vec::new();
    for i in 0..12 {
        let backend = if i % 2 == 0 {
            Arc::clone(&sick)
        } else {
            uniform()
        };
        match cluster.submit(SearchRequest::new(TicTacToe::new(), backend).config(cfg(512))) {
            Ok(t) => tickets.push(t),
            Err(rej) => assert_eq!(rej.reason, RejectReason::Unhealthy),
        }
    }
    // Drop with failures (and possibly running sessions) in flight: the
    // drop must terminate, and every issued ticket must be terminal
    // afterwards — no waiter left hanging.
    drop(cluster);
    for t in tickets {
        let outcome = t.wait_timeout(Duration::from_secs(5));
        assert!(outcome.is_finished(), "ticket left unresolved by drop");
    }
}
