//! End-to-end tests of the multi-session serving front end: completion,
//! anytime results, cancellation, priorities, pooling, budgets, and the
//! cross-session batch-coalescing acceptance criterion.

use games::tictactoe::TicTacToe;
use games::{connect4::Connect4, gomoku::Gomoku, Game};
use mcts::{BatchEvaluator, Budget, EvalOutput, MctsConfig, Scheme, UniformEvaluator};
use serve::{Priority, SearchRequest, SearchService, ServeConfig, TicketStatus};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg(playouts: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        ..Default::default()
    }
}

fn service(workers: usize, step_quota: usize) -> SearchService {
    SearchService::new(ServeConfig {
        workers,
        step_quota,
        max_pooled: 8,
        coalesce_window: Duration::from_millis(5),
        ..Default::default()
    })
}

fn uniform() -> Arc<UniformEvaluator> {
    Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
}

#[test]
fn single_request_completes_with_exact_budget() {
    let s = service(2, 16);
    let t = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(100)));
    let r = t.wait();
    assert_eq!(r.stats.playouts, 100);
    assert_eq!(r.visits.iter().sum::<u32>(), 99);
    assert_eq!(t.status(), TicketStatus::Done);
    assert!(t.latency().is_some());
    assert_eq!(s.stats().sessions_completed, 1);
}

#[test]
fn request_budget_overrides_config() {
    let s = service(2, 16);
    let t = s.submit(
        SearchRequest::new(TicTacToe::new(), uniform())
            .config(cfg(10_000))
            .budget(Budget::playouts(48)),
    );
    assert_eq!(t.wait().stats.playouts, 48);
}

#[test]
fn burst_of_concurrent_sessions_all_complete() {
    let s = service(4, 32);
    let eval = uniform();
    let tickets: Vec<_> = (0..16)
        .map(|i| {
            s.submit(
                SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                    .config(cfg(150 + i)),
            )
        })
        .collect();
    for (i, t) in tickets.iter().enumerate() {
        let r = t.wait();
        assert_eq!(r.stats.playouts, (150 + i) as u64, "session {i}");
    }
    let st = s.stats();
    assert_eq!(st.sessions_completed, 16);
    assert!(st.steps >= 16 * 4, "sessions must be sliced, not one-shot");
}

#[test]
fn anytime_partial_results_are_available_mid_run() {
    let s = service(1, 8);
    // A long session sliced finely: partial snapshots must appear well
    // before completion.
    let t = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(4000)));
    let deadline = Instant::now() + Duration::from_secs(20);
    let partial = loop {
        if let Some(p) = t.partial() {
            if p.stats.playouts > 0 && t.poll().is_none() {
                break Some(p);
            }
        }
        if t.poll().is_some() || Instant::now() >= deadline {
            break None;
        }
        std::thread::yield_now();
    };
    if let Some(p) = partial {
        assert!(p.stats.playouts < 4000, "snapshot precedes completion");
        assert!(p.visits.iter().sum::<u32>() > 0);
    }
    let r = t.wait();
    assert_eq!(r.stats.playouts, 4000);
}

#[test]
fn cancellation_resolves_with_partial_result() {
    let s = service(1, 8);
    // Two long sessions; cancel the second while the first hogs the
    // single worker.
    let a = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(2000)));
    let b = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(1_000_000)));
    b.cancel();
    let rb = b.wait();
    assert_eq!(b.status(), TicketStatus::Cancelled);
    assert!(
        rb.stats.playouts < 1_000_000,
        "cancelled long before the budget"
    );
    // The final result of a cancelled session is its anytime partial —
    // a full-action-space distribution, not an empty default.
    assert_eq!(rb.visits.len(), 9, "partial-at-cancellation preserved");
    assert_eq!(a.wait().stats.playouts, 2000);
    assert_eq!(s.stats().sessions_cancelled, 1);
}

#[test]
fn high_priority_sessions_jump_the_queue() {
    // One worker, fine slices: a later high-priority session must finish
    // before earlier low-priority ones (it wins every pop until done).
    let s = service(1, 16);
    let eval = uniform();
    let low: Vec<_> = (0..4)
        .map(|_| {
            s.submit(
                SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                    .config(cfg(1200))
                    .priority(Priority::Low),
            )
        })
        .collect();
    let high = s.submit(
        SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
            .config(cfg(1200))
            .priority(Priority::High),
    );
    let _ = high.wait();
    let high_latency = high.latency().unwrap();
    for t in &low {
        let _ = t.wait();
    }
    let slowest_low = low.iter().map(|t| t.latency().unwrap()).max().unwrap();
    assert!(
        high_latency < slowest_low,
        "high priority ({high_latency:?}) must beat the slowest low ({slowest_low:?})"
    );
}

#[test]
fn time_budget_resolves_promptly() {
    let s = service(2, 64);
    let t0 = Instant::now();
    let t = s.submit(
        SearchRequest::new(TicTacToe::new(), uniform())
            .config(cfg(50_000_000))
            .budget(Budget::time(Duration::from_millis(20))),
    );
    let r = t.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "deadline must end the session"
    );
    assert!(r.stats.playouts > 0, "some playouts completed");
    assert!(r.stats.playouts < 50_000_000);
}

#[test]
fn warmed_searchers_are_pooled_across_sessions() {
    let s = service(2, 32);
    let eval = uniform();
    for round in 0..3 {
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                s.submit(
                    SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>)
                        .config(cfg(80)),
                )
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().stats.playouts, 80, "round {round}");
        }
    }
    assert_eq!(s.stats().sessions_completed, 12);
}

#[test]
fn mixed_games_share_one_service() {
    let s = service(3, 32);
    let ttt = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(90)));
    let gomoku_root = Gomoku::new(7, 5);
    let gomoku = s.submit(
        SearchRequest::new(
            gomoku_root.clone(),
            Arc::new(UniformEvaluator::for_game(&gomoku_root)) as Arc<_>,
        )
        .config(cfg(90)),
    );
    let c4_root = Connect4::new();
    let c4 = s.submit(
        SearchRequest::new(
            c4_root,
            Arc::new(UniformEvaluator::for_game(&c4_root)) as Arc<_>,
        )
        .config(cfg(90))
        .scheme(Scheme::LeafParallel),
    );
    assert_eq!(ttt.wait().visits.len(), 9);
    assert_eq!(gomoku.wait().visits.len(), 49);
    assert_eq!(c4.wait().visits.len(), c4_root.action_space());
}

#[test]
fn non_serial_schemes_run_as_sessions() {
    let s = service(2, 32);
    for scheme in [Scheme::SharedTree, Scheme::LocalTree, Scheme::Speculative] {
        let t = s.submit(
            SearchRequest::new(TicTacToe::new(), uniform())
                .config(MctsConfig {
                    playouts: 120,
                    workers: 2,
                    ..Default::default()
                })
                .scheme(scheme),
        );
        let r = t.wait();
        assert!(r.stats.playouts >= 120, "{scheme}: {}", r.stats.playouts);
    }
}

#[test]
fn dropping_the_service_resolves_outstanding_tickets() {
    let s = service(1, 8);
    let tickets: Vec<_> = (0..6)
        .map(|_| s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(500_000))))
        .collect();
    drop(s);
    for t in tickets {
        // Every ticket must resolve (no hang); the results are partial.
        let r = t.wait();
        assert!(r.stats.playouts < 500_000);
    }
}

/// A batching evaluator with a per-round fixed cost: coalescing across
/// sessions visibly pays (one sleep serves the whole batch).
struct SlowBatchEval {
    input_len: usize,
    actions: usize,
    delay: Duration,
}

impl BatchEvaluator for SlowBatchEval {
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn action_space(&self) -> usize {
        self.actions
    }
    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        std::thread::sleep(self.delay);
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.actions, 1.0 / self.actions as f32);
            o.value = 0.0;
        }
        let _ = inputs;
    }
    fn preferred_batch(&self) -> usize {
        8
    }
}

fn coalescing_run(workers: usize, sessions: usize) -> f64 {
    let s = service(workers, 16);
    let eval: Arc<dyn BatchEvaluator> = Arc::new(SlowBatchEval {
        input_len: 36,
        actions: 9,
        delay: Duration::from_millis(1),
    });
    let tickets: Vec<_> = (0..sessions)
        .map(|_| s.submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval)).config(cfg(48))))
        .collect();
    for t in tickets {
        assert_eq!(t.wait().stats.playouts, 48);
    }
    let st = s.stats();
    assert!(st.eval_batches > 0, "coalescing layer must have been used");
    st.mean_eval_batch()
}

#[test]
fn cross_session_coalescing_fills_larger_batches_than_serial() {
    // Acceptance criterion: the same requests served concurrently must
    // produce larger mean inference batches than served one at a time.
    let serial_mean = coalescing_run(1, 6);
    let multi_mean = coalescing_run(4, 6);
    assert!(
        (serial_mean - 1.0).abs() < 1e-9,
        "one worker ⇒ no cross-session batching, got {serial_mean}"
    );
    assert!(
        multi_mean > 1.2,
        "concurrent sessions must coalesce: mean batch {multi_mean}"
    );
}

#[test]
fn batch_fill_grows_with_offered_concurrency() {
    // Regression: the coalescing bound used to be
    // `preferred_batch().min(workers)`, pinning mean batch at the
    // worker count (observed as a hard 2.000 plateau in bench_serve)
    // no matter how many sessions were offered. The bound must track
    // the backend's capacity so more offered concurrency keeps
    // filling rounds.
    let at = |workers: usize| coalescing_run(workers, 12);
    let narrow = at(2);
    let wide = at(6);
    assert!(
        wide > narrow + 0.5,
        "batch fill must grow with offered concurrency: {narrow} -> {wide}"
    );
    assert!(
        wide > 2.2,
        "six concurrent steppers must beat the old two-worker pin, got {wide}"
    );
}

#[test]
fn autotune_reports_cover_registered_batching_backends() {
    let s = SearchService::new(ServeConfig {
        workers: 2,
        step_quota: 16,
        max_pooled: 4,
        coalesce_window: Duration::from_millis(5),
        coalesce_auto: true,
        calibrate_on_register: true,
        ..Default::default()
    });
    assert!(s.autotune_reports().is_empty(), "no backend yet");
    let eval: Arc<dyn BatchEvaluator> = Arc::new(SlowBatchEval {
        input_len: 36,
        actions: 9,
        delay: Duration::from_micros(200),
    });
    let t = s.submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval)).config(cfg(64)));
    assert_eq!(t.wait().stats.playouts, 64);
    let reports = s.autotune_reports();
    assert_eq!(reports.len(), 1, "one tuner per batching backend");
    let r = &reports[0];
    assert!(r.calibrated, "registration ran the calibration pass");
    assert!((1..=8).contains(&r.batch), "operating point within bounds");
    assert_eq!(r.curve.len(), 4, "buckets 1,2,4,8 all seeded");
    assert!(r.positions_per_sec > 0.0);
    // Uniform (non-batching) backends never get a tuner.
    let t = s.submit(SearchRequest::new(TicTacToe::new(), uniform()).config(cfg(32)));
    t.wait();
    assert_eq!(s.autotune_reports().len(), 1);
}

/// Backend that counts how many samples actually reach it, so cache
/// hits are visible as saved inference work.
struct CountingBackend {
    input_len: usize,
    actions: usize,
    samples: std::sync::atomic::AtomicU64,
}

impl CountingBackend {
    fn for_tictactoe() -> Self {
        let g = TicTacToe::new();
        CountingBackend {
            input_len: g.encoded_len(),
            actions: g.action_space(),
            samples: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn samples(&self) -> u64 {
        self.samples.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl BatchEvaluator for CountingBackend {
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn action_space(&self) -> usize {
        self.actions
    }
    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        self.samples
            .fetch_add(inputs.len() as u64, std::sync::atomic::Ordering::Relaxed);
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.actions, 1.0 / self.actions as f32);
            o.value = 0.0;
        }
    }
}

fn cached_service(cache_bytes: Option<usize>) -> SearchService {
    SearchService::new(ServeConfig {
        workers: 2,
        step_quota: 32,
        max_pooled: 8,
        coalesce_window: Duration::from_millis(5),
        eval_cache_bytes: cache_bytes,
        ..Default::default()
    })
}

#[test]
fn eval_cache_answers_repeated_positions_from_memory() {
    let s = cached_service(Some(8 << 20));
    let eval = Arc::new(CountingBackend::for_tictactoe());
    // Warm: a deterministic serial search from the root evaluates a
    // fixed set of positions, all misses.
    let t = s
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(200)));
    assert_eq!(t.wait().stats.playouts, 200);
    let warm = s.stats();
    // Even the first run can hit: tictactoe reaches the same position
    // by different move orders, and the cache serves those too.
    assert!(warm.cache_misses > 0, "cold run must record misses");
    assert!(warm.cache_bytes > 0, "entries are resident");
    let cold_samples = eval.samples();
    // Replay the identical request: the same positions come straight
    // from the cache and the backend sees (almost) no new samples.
    let t = s
        .submit(SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(200)));
    assert_eq!(t.wait().stats.playouts, 200);
    let st = s.stats();
    assert!(st.cache_hits > warm.cache_hits, "warm run must hit: {st:?}");
    assert!(st.cache_hit_rate() > 0.0);
    assert_eq!(
        eval.samples(),
        cold_samples,
        "a fully warmed identical search must not touch the backend"
    );
    assert!(s.cache_stats().is_some());
}

#[test]
fn eval_cache_disabled_by_default_and_reports_zeros() {
    let s = cached_service(None);
    let eval = Arc::new(CountingBackend::for_tictactoe());
    for _ in 0..2 {
        let t = s.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(120)),
        );
        assert_eq!(t.wait().stats.playouts, 120);
    }
    let st = s.stats();
    assert_eq!(st.cache_hits, 0);
    assert_eq!(st.cache_misses, 0);
    assert_eq!(st.cache_bytes, 0);
    assert_eq!(st.cache_hit_rate(), 0.0);
    assert!(s.cache_stats().is_none(), "no registry when disabled");
}

#[test]
fn eval_cache_invalidation_forces_fresh_evaluations() {
    let s = cached_service(Some(8 << 20));
    let eval = Arc::new(CountingBackend::for_tictactoe());
    let submit = || {
        let t = s.submit(
            SearchRequest::new(TicTacToe::new(), Arc::clone(&eval) as Arc<_>).config(cfg(150)),
        );
        t.wait()
    };
    submit();
    let cold_samples = eval.samples();
    submit();
    assert_eq!(eval.samples(), cold_samples, "warm replay is free");
    // Simulate an in-place weight swap: every cached answer is stale.
    s.invalidate_eval_cache();
    submit();
    assert!(
        eval.samples() > cold_samples,
        "invalidated cache must re-evaluate"
    );
}
