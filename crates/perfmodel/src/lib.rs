//! Performance analysis for adaptive parallelism (paper §4).
//!
//! This crate contains the machinery that makes the parallelism *adaptive*:
//!
//! * [`model`] — the closed-form per-iteration latency models of Eqs. 3–6
//!   for the shared-tree and local-tree schemes on CPU-only and CPU+GPU
//!   platforms, and the compile-time scheme chooser built on them;
//! * [`profiler`] — design-time measurement of `T_select`, `T_backup`
//!   (on a synthetic tree with the target fanout/depth and random UCT
//!   scores, §4.2), `T_DNN` (random-parameter network), and the shared-
//!   memory access latency (pointer chase);
//! * [`vsearch`] — Algorithm 4: O(log N) minimum search over the
//!   "V-sequence" of per-iteration latency as a function of the
//!   accelerator sub-batch size `B`;
//! * [`sim`] — a deterministic discrete-event simulator that replays the
//!   execution timelines of Figures 1-b/2-b under arbitrary hardware
//!   parameters. This is the executable form of the paper's timeline
//!   analysis and is what regenerates the *shapes* of Figures 3–6 on hosts
//!   that lack the paper's 64-core CPU + A6000 GPU (this container has a
//!   single core);
//! * [`configurator`] — the end-to-end design-configuration workflow:
//!   profile → plug into models → pick scheme → tune `B`.

pub mod configurator;
pub mod model;
pub mod profiler;
pub mod sensitivity;
pub mod sim;
pub mod vsearch;

pub use configurator::{DesignChoice, DesignConfigurator};
pub use model::{choose_scheme, PerfParams, Platform};
pub use sensitivity::{crossover_workers, sweep, SweepParam, SweepPoint};
pub use sim::SimParams;
pub use vsearch::find_min_vsequence;
