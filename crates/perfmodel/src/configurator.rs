//! The end-to-end design-configuration workflow (§4.2):
//!
//! 1. profile `T_select`, `T_backup`, `T^CPU_DNN` and the shared-memory
//!    access latency on the target host (design time);
//! 2. plug them into the performance models (Eqs. 3–6);
//! 3. choose the parallel scheme at "compile time";
//! 4. for CPU-GPU local-tree configurations, tune the sub-batch size `B`
//!    with Algorithm 4 (O(log N) test runs).

use crate::model::{self, PerfParams, Platform};
use crate::profiler::ProfiledCosts;
use crate::vsearch;
use accel::LatencyModel;
use mcts::Scheme;
use nn::PolicyValueNet;
use serde::{Deserialize, Serialize};

/// The workflow's output: what to build and what the models predicted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignChoice {
    /// Selected parallel scheme.
    pub scheme: Scheme,
    /// Selected accelerator sub-batch size (CPU-GPU local tree only).
    pub batch: Option<usize>,
    /// Model-predicted per-iteration latency of the local-tree scheme, ns.
    pub predicted_local_ns: f64,
    /// Model-predicted per-iteration latency of the shared-tree scheme, ns.
    pub predicted_shared_ns: f64,
    /// Oracle probes spent tuning `batch` (Algorithm 4 cost).
    pub tuning_evals: usize,
}

impl DesignChoice {
    /// Predicted speedup of the selected scheme over the rejected one.
    pub fn predicted_speedup(&self) -> f64 {
        let (win, lose) = if self.scheme == Scheme::LocalTree {
            (self.predicted_local_ns, self.predicted_shared_ns)
        } else {
            (self.predicted_shared_ns, self.predicted_local_ns)
        };
        lose / win
    }
}

/// Design-configuration driver.
#[derive(Debug, Clone)]
pub struct DesignConfigurator {
    /// Profiled host costs.
    pub costs: ProfiledCosts,
    /// Accelerator model, if the platform has one.
    pub accel: Option<LatencyModel>,
}

impl DesignConfigurator {
    /// Build from an existing profile.
    pub fn new(costs: ProfiledCosts, accel: Option<LatencyModel>) -> Self {
        DesignConfigurator { costs, accel }
    }

    /// Run the design-time profile on this host (§4.2 step 1). `fanout`
    /// and `depth` describe the target algorithm's tree geometry; the
    /// network carries the input/output shapes.
    pub fn profile(
        net: &PolicyValueNet,
        fanout: usize,
        depth: usize,
        iters: usize,
        accel: Option<LatencyModel>,
    ) -> Self {
        DesignConfigurator {
            costs: crate::profiler::profile_host(net, fanout, depth, iters),
            accel,
        }
    }

    /// Model parameters for `workers` parallel workers.
    pub fn params(&self, workers: usize) -> PerfParams {
        PerfParams {
            workers,
            t_select_ns: self.costs.t_select_ns,
            t_backup_ns: self.costs.t_backup_ns,
            t_shared_access_ns: self.costs.t_shared_access_ns,
            t_dnn_cpu_ns: self.costs.t_dnn_cpu_ns,
            accel: self.accel,
        }
    }

    /// Steps 2–4: pick the scheme (and batch size on CPU-GPU platforms)
    /// for `workers` workers using the closed-form models as the oracle.
    pub fn configure(&self, platform: Platform, workers: usize) -> DesignChoice {
        let p = self.params(workers);
        match platform {
            Platform::CpuOnly => {
                let local = model::local_cpu_iteration_ns(&p);
                let shared = model::shared_cpu_iteration_ns(&p);
                DesignChoice {
                    scheme: if local <= shared {
                        Scheme::LocalTree
                    } else {
                        Scheme::SharedTree
                    },
                    batch: None,
                    predicted_local_ns: local,
                    predicted_shared_ns: shared,
                    tuning_evals: 0,
                }
            }
            Platform::CpuGpu => {
                assert!(self.accel.is_some(), "CpuGpu platform needs accel model");
                let shared = model::shared_gpu_iteration_ns(&p);
                let mut oracle = |b: usize| model::local_gpu_iteration_ns(&p, b);
                let report = vsearch::find_min_vsequence_counted(1, workers, &mut oracle);
                let local = model::local_gpu_iteration_ns(&p, report.argmin);
                let local_wins = local <= shared;
                DesignChoice {
                    scheme: if local_wins {
                        Scheme::LocalTree
                    } else {
                        Scheme::SharedTree
                    },
                    batch: Some(if local_wins { report.argmin } else { workers }),
                    predicted_local_ns: local,
                    predicted_shared_ns: shared,
                    tuning_evals: report.evals,
                }
            }
        }
    }

    /// Tune the batch size against a *live* oracle (e.g. real test runs of
    /// `get_action_prior`, the paper's "Test Run" in Algorithm 4 line 5)
    /// instead of the analytic model.
    pub fn tune_batch_live(
        &self,
        workers: usize,
        mut run: impl FnMut(usize) -> f64,
    ) -> (usize, usize) {
        let report = vsearch::find_min_vsequence_counted(1, workers, &mut run);
        (report.argmin, report.evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(dnn_ns: f64, in_tree_ns: f64) -> ProfiledCosts {
        ProfiledCosts {
            t_select_ns: in_tree_ns * 2.0 / 3.0,
            t_backup_ns: in_tree_ns / 3.0,
            t_shared_access_ns: 300.0,
            t_dnn_cpu_ns: dnn_ns,
        }
    }

    #[test]
    fn dnn_bound_configs_pick_local() {
        let c = DesignConfigurator::new(costs(2_000_000.0, 5_000.0), None);
        let choice = c.configure(Platform::CpuOnly, 4);
        assert_eq!(choice.scheme, Scheme::LocalTree);
        assert!(choice.predicted_speedup() >= 1.0);
    }

    #[test]
    fn in_tree_bound_configs_pick_shared() {
        let c = DesignConfigurator::new(costs(50_000.0, 60_000.0), None);
        let choice = c.configure(Platform::CpuOnly, 64);
        assert_eq!(choice.scheme, Scheme::SharedTree);
    }

    #[test]
    fn cpu_gpu_choice_reports_batch() {
        let accel = LatencyModel::a6000_like(4 * 15 * 15 * 4);
        let c = DesignConfigurator::new(costs(1_200_000.0, 9_000.0), Some(accel));
        let choice = c.configure(Platform::CpuGpu, 32);
        assert!(choice.batch.is_some());
        let b = choice.batch.unwrap();
        assert!((1..=32).contains(&b));
        // Algorithm 4 cost: O(log N), not O(N).
        assert!(
            choice.tuning_evals <= 2 * 6,
            "evals {}",
            choice.tuning_evals
        );
    }

    #[test]
    fn live_tuning_uses_logarithmic_probes() {
        let c = DesignConfigurator::new(costs(1.0, 1.0), None);
        let mut calls = 0usize;
        let (b, evals) = c.tune_batch_live(64, |x| {
            calls += 1;
            (x as f64 - 20.0).abs()
        });
        assert_eq!(b, 20);
        assert!(evals <= 12);
        assert_eq!(calls, evals);
    }

    #[test]
    fn speedup_is_symmetric_in_favored_scheme() {
        let local_favored = DesignChoice {
            scheme: Scheme::LocalTree,
            batch: None,
            predicted_local_ns: 100.0,
            predicted_shared_ns: 150.0,
            tuning_evals: 0,
        };
        assert!((local_favored.predicted_speedup() - 1.5).abs() < 1e-9);
        let shared_favored = DesignChoice {
            scheme: Scheme::SharedTree,
            predicted_local_ns: 300.0,
            predicted_shared_ns: 150.0,
            ..local_favored
        };
        assert!((shared_favored.predicted_speedup() - 2.0).abs() < 1e-9);
    }
}
