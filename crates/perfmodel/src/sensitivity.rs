//! Sensitivity analysis over the closed-form performance models.
//!
//! The paper's design-configuration workflow (§4.2) plugs one profiled
//! parameter set into Eqs. 3–6 and picks a scheme. A natural follow-up
//! question — and the basis of our ablation benches — is *how robust that
//! choice is*: how far can a profiled quantity drift before the chosen
//! scheme flips? This module sweeps one model input at a time (holding the
//! rest fixed), reports the predicted latency of both schemes at every
//! point, and locates the worker-count crossover `N*` where the shared
//! tree overtakes the local tree.

use crate::model::{choose_scheme, PerfParams, Platform};
use mcts::Scheme;
use serde::{Deserialize, Serialize};

/// Which model input a sweep varies. All sweeps are *multiplicative*: the
/// swept value is `base × factor`, so factors are dimensionless and a
/// factor of 1.0 reproduces the base configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepParam {
    /// Single-thread CPU inference latency `T^CPU_DNN`.
    DnnCpu,
    /// Serialized shared-memory access cost `T_shared tree access`.
    SharedAccess,
    /// In-tree work `T_select + T_backup` (both scaled together).
    InTree,
    /// Accelerator kernel-launch latency `L` (CPU-GPU platform only).
    Launch,
    /// Interconnect bandwidth (CPU-GPU platform only).
    PcieBandwidth,
}

impl SweepParam {
    /// Human-readable parameter name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            SweepParam::DnnCpu => "T_dnn_cpu",
            SweepParam::SharedAccess => "T_shared_access",
            SweepParam::InTree => "T_in_tree",
            SweepParam::Launch => "launch_ns",
            SweepParam::PcieBandwidth => "pcie_bandwidth",
        }
    }

    /// Produce the parameter set with this input scaled by `factor`.
    pub fn scaled(self, base: &PerfParams, factor: f64) -> PerfParams {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut p = *base;
        match self {
            SweepParam::DnnCpu => p.t_dnn_cpu_ns *= factor,
            SweepParam::SharedAccess => p.t_shared_access_ns *= factor,
            SweepParam::InTree => {
                p.t_select_ns *= factor;
                p.t_backup_ns *= factor;
            }
            SweepParam::Launch => {
                let a = p.accel.as_mut().expect("Launch sweep needs accel params");
                a.launch_ns *= factor;
            }
            SweepParam::PcieBandwidth => {
                let a = p
                    .accel
                    .as_mut()
                    .expect("PcieBandwidth sweep needs accel params");
                a.pcie_bytes_per_ns *= factor;
            }
        }
        p
    }
}

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The scale factor applied to the swept parameter.
    pub factor: f64,
    /// Scheme the model would choose at this point.
    pub chosen: Scheme,
    /// Predicted amortized per-iteration latency, local tree (ns).
    pub local_ns: f64,
    /// Predicted amortized per-iteration latency, shared tree (ns).
    pub shared_ns: f64,
}

impl SweepPoint {
    /// Speedup of the chosen scheme over the rejected one (≥ 1).
    pub fn advantage(&self) -> f64 {
        let (win, lose) = if self.local_ns <= self.shared_ns {
            (self.local_ns, self.shared_ns)
        } else {
            (self.shared_ns, self.local_ns)
        };
        if win <= 0.0 {
            1.0
        } else {
            lose / win
        }
    }
}

/// Sweep one parameter over `factors`, re-running the scheme choice at
/// every point.
pub fn sweep(
    platform: Platform,
    base: &PerfParams,
    param: SweepParam,
    factors: &[f64],
) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&factor| {
            let p = param.scaled(base, factor);
            let (chosen, local_ns, shared_ns) = choose_scheme(platform, &p);
            SweepPoint {
                factor,
                chosen,
                local_ns,
                shared_ns,
            }
        })
        .collect()
}

/// The smallest worker count `N ∈ [1, max_workers]` at which the shared
/// tree is predicted to beat (or tie) the local tree — the crossover the
/// paper observes at `N = 16` on its platform (§5.2). `None` when the
/// local tree wins everywhere in range.
pub fn crossover_workers(
    platform: Platform,
    base: &PerfParams,
    max_workers: usize,
) -> Option<usize> {
    (1..=max_workers).find(|&n| {
        let p = PerfParams {
            workers: n,
            ..*base
        };
        let (scheme, _, _) = choose_scheme(platform, &p);
        scheme == Scheme::SharedTree
    })
}

/// Render a sweep as an aligned text table (one row per factor).
pub fn format_table(param: SweepParam, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10}  {:>14} {:>14}  {:>8}  {}\n",
        "factor",
        "local(us)",
        "shared(us)",
        "adv",
        param.name()
    ));
    for p in points {
        out.push_str(&format!(
            "{:>10.3}  {:>14.2} {:>14.2}  {:>7.2}x  {}\n",
            p.factor,
            p.local_ns / 1_000.0,
            p.shared_ns / 1_000.0,
            p.advantage(),
            p.chosen,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::LatencyModel;

    fn base(workers: usize) -> PerfParams {
        PerfParams {
            workers,
            t_select_ns: 2_000.0,
            t_backup_ns: 1_000.0,
            t_shared_access_ns: 300.0,
            t_dnn_cpu_ns: 500_000.0,
            accel: Some(LatencyModel::a6000_like(4 * 15 * 15 * 4)),
        }
    }

    #[test]
    fn factor_one_reproduces_base() {
        let b = base(16);
        for param in [
            SweepParam::DnnCpu,
            SweepParam::SharedAccess,
            SweepParam::InTree,
            SweepParam::Launch,
            SweepParam::PcieBandwidth,
        ] {
            let p = param.scaled(&b, 1.0);
            assert_eq!(p, b, "{param:?} at factor 1 must be identity");
        }
    }

    #[test]
    fn expensive_dnn_favors_local_tree() {
        // Sweep the CPU inference cost upward: once the DNN dominates, the
        // local tree's overlap must win (paper intuition §3.2).
        let pts = sweep(
            Platform::CpuOnly,
            &base(16),
            SweepParam::DnnCpu,
            &[0.01, 0.1, 1.0, 10.0, 100.0],
        );
        assert_eq!(pts.last().unwrap().chosen, Scheme::LocalTree);
        // Local latency strictly increases with DNN cost.
        for w in pts.windows(2) {
            assert!(w[1].local_ns >= w[0].local_ns);
        }
    }

    #[test]
    fn expensive_in_tree_favors_shared_tree() {
        let pts = sweep(
            Platform::CpuOnly,
            &base(64),
            SweepParam::InTree,
            &[1.0, 10.0, 100.0, 1000.0],
        );
        assert_eq!(
            pts.last().unwrap().chosen,
            Scheme::SharedTree,
            "serial master must become the bottleneck"
        );
    }

    #[test]
    fn shared_access_cost_only_moves_shared_latency() {
        let pts = sweep(
            Platform::CpuOnly,
            &base(16),
            SweepParam::SharedAccess,
            &[1.0, 5.0, 25.0],
        );
        for w in pts.windows(2) {
            assert!(w[1].shared_ns > w[0].shared_ns, "shared must degrade");
            assert!(
                (w[1].local_ns - w[0].local_ns).abs() < 1e-9,
                "local is unaffected by DDR cost"
            );
        }
    }

    #[test]
    fn cpu_only_crossover_exists() {
        // CPU-only: the local master eventually serializes while the
        // shared tree amortizes its DDR cost, so shared must win at some
        // finite N (Figure 4's crossover).
        let b = base(1);
        let x = crossover_workers(Platform::CpuOnly, &b, 4096);
        assert!(x.is_some(), "shared tree must eventually win on CPU");
        assert!(x.unwrap() > 1, "local tree must win at N=1");
    }

    #[test]
    fn cpu_gpu_tuned_local_tree_holds_at_large_n() {
        // Figure 5's direction: with the sub-batch size tuned by
        // Algorithm 4, the local tree remains competitive (here: winning)
        // at N = 64 even though the full-batch local tree degrades.
        let b = base(64);
        let (scheme, local, shared) = choose_scheme(Platform::CpuGpu, &b);
        assert_eq!(
            scheme,
            Scheme::LocalTree,
            "local {local} vs shared {shared}"
        );
    }

    #[test]
    fn crossover_moves_out_when_dnn_gets_pricier() {
        let b = base(1);
        let cheap = crossover_workers(Platform::CpuOnly, &b, 4096).unwrap_or(usize::MAX);
        let pricey_params = SweepParam::DnnCpu.scaled(&b, 8.0);
        let pricey =
            crossover_workers(Platform::CpuOnly, &pricey_params, 4096).unwrap_or(usize::MAX);
        assert!(
            pricey >= cheap,
            "more DNN work should delay the crossover: {cheap} -> {pricey}"
        );
    }

    #[test]
    fn advantage_is_at_least_one() {
        for pt in sweep(
            Platform::CpuGpu,
            &base(32),
            SweepParam::Launch,
            &[0.1, 1.0, 10.0],
        ) {
            assert!(pt.advantage() >= 1.0);
        }
    }

    #[test]
    fn more_bandwidth_never_hurts_either_scheme() {
        let pts = sweep(
            Platform::CpuGpu,
            &base(32),
            SweepParam::PcieBandwidth,
            &[1.0, 2.0, 4.0, 8.0],
        );
        for w in pts.windows(2) {
            assert!(w[1].local_ns <= w[0].local_ns + 1e-9);
            assert!(w[1].shared_ns <= w[0].shared_ns + 1e-9);
        }
    }

    #[test]
    fn table_lists_every_point() {
        let pts = sweep(
            Platform::CpuOnly,
            &base(8),
            SweepParam::DnnCpu,
            &[0.5, 1.0, 2.0],
        );
        let t = format_table(SweepParam::DnnCpu, &pts);
        assert_eq!(t.lines().count(), 4, "header + 3 rows:\n{t}");
        assert!(t.contains("T_dnn_cpu"));
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn nonpositive_factor_rejected() {
        let _ = SweepParam::DnnCpu.scaled(&base(4), 0.0);
    }

    #[test]
    #[should_panic(expected = "needs accel")]
    fn launch_sweep_without_accel_rejected() {
        let mut b = base(4);
        b.accel = None;
        let _ = SweepParam::Launch.scaled(&b, 2.0);
    }
}
