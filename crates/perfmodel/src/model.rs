//! Closed-form per-iteration latency models — Eqs. 3–6 of the paper — and
//! the compile-time scheme chooser built on them.
//!
//! All model outputs are the latency of one *round* in which each of the
//! `N` workers completes one iteration, divided by `N`: the paper's
//! "amortized per-worker-iteration latency" (§5.3).

use accel::LatencyModel;
use mcts::Scheme;
use serde::{Deserialize, Serialize};

/// Profiled quantities feeding the models (all nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfParams {
    /// Workers `N`.
    pub workers: usize,
    /// Single-thread Node Selection latency per iteration, `T_select`.
    pub t_select_ns: f64,
    /// Single-thread Expansion+BackUp latency per iteration, `T_backup`.
    pub t_backup_ns: f64,
    /// Serialized shared-memory (DDR) access cost per iteration,
    /// `T_shared tree access`.
    pub t_shared_access_ns: f64,
    /// One DNN inference on one CPU thread, `T^CPU_DNN`.
    pub t_dnn_cpu_ns: f64,
    /// Accelerator model (None ⇒ CPU-only platform).
    pub accel: Option<LatencyModel>,
}

impl PerfParams {
    /// CPU-only parameter set.
    pub fn cpu_only(
        workers: usize,
        t_select_ns: f64,
        t_backup_ns: f64,
        t_shared_access_ns: f64,
        t_dnn_cpu_ns: f64,
    ) -> Self {
        PerfParams {
            workers,
            t_select_ns,
            t_backup_ns,
            t_shared_access_ns,
            t_dnn_cpu_ns,
            accel: None,
        }
    }

    /// In-tree per-iteration cost `T_select + T_backup`.
    pub fn t_in_tree(&self) -> f64 {
        self.t_select_ns + self.t_backup_ns
    }
}

/// Target platform for the model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// Everything on the multi-core CPU.
    CpuOnly,
    /// In-tree operations on the CPU, inference offloaded (needs
    /// `PerfParams::accel`).
    CpuGpu,
}

/// Eq. 3 — shared tree on a multi-core CPU:
/// `T ≈ T_shared×N + T_select + T_backup + T^CPU_DNN`, amortized over `N`.
pub fn shared_cpu_iteration_ns(p: &PerfParams) -> f64 {
    let n = p.workers as f64;
    let round = p.t_shared_access_ns * n + p.t_select_ns + p.t_backup_ns + p.t_dnn_cpu_ns;
    round / n
}

/// Eq. 4 — shared tree with GPU-offloaded full-batch inference:
/// `T ≈ T_shared×N + T_select + T_backup + T^GPU_DNN(batch=N)`.
pub fn shared_gpu_iteration_ns(p: &PerfParams) -> f64 {
    let accel = p.accel.expect("CpuGpu model needs accelerator params");
    let n = p.workers as f64;
    let round =
        p.t_shared_access_ns * n + p.t_select_ns + p.t_backup_ns + accel.batch_ns(p.workers);
    round / n
}

/// Eq. 5 — local tree on a multi-core CPU:
/// `T ≈ max((T_select + T_backup)×N, T^CPU_DNN)` per round of `N`.
pub fn local_cpu_iteration_ns(p: &PerfParams) -> f64 {
    let n = p.workers as f64;
    let round = (p.t_in_tree() * n).max(p.t_dnn_cpu_ns);
    round / n
}

/// Eq. 6 — local tree with GPU inference in `N/B` sub-batches:
/// `T ≈ max((T_select+T_backup)×N, T_PCIe, T^GPU_compute(batch=B))`.
///
/// `T_PCIe` is the total transfer time of the round's `N` samples in
/// `ceil(N/B)` submissions: `(N/B)·L + N·bytes/BW` — monotonically
/// decreasing in `B`. `T^GPU_compute(batch=B)` is the compute time of one
/// sub-batch kernel — monotonically increasing in `B` (the `N/B` CUDA
/// streams overlap their kernels with other streams' transfers, so the
/// per-kernel time is the steady-state compute bound). The element-wise
/// max is therefore a V-sequence in `B`, which is what makes Algorithm 4
/// applicable (§4.2).
pub fn local_gpu_iteration_ns(p: &PerfParams, batch: usize) -> f64 {
    assert!(batch >= 1, "batch must be >= 1");
    let accel = p.accel.expect("CpuGpu model needs accelerator params");
    let n = p.workers as f64;
    let num_batches = p.workers.div_ceil(batch);
    let t_pcie =
        num_batches as f64 * accel.launch_ns + n * accel.bytes_per_sample / accel.pcie_bytes_per_ns;
    let t_compute = accel.compute_ns(batch.min(p.workers));
    let round = (p.t_in_tree() * n).max(t_pcie).max(t_compute);
    round / n
}

/// Model-predicted per-iteration latency for a (scheme, platform) pair.
/// For `LocalTree` on `CpuGpu`, `batch` selects the sub-batch size
/// (defaults to `N` when `None`).
pub fn predict_iteration_ns(
    scheme: Scheme,
    platform: Platform,
    p: &PerfParams,
    batch: Option<usize>,
) -> f64 {
    match (scheme, platform) {
        (Scheme::SharedTree, Platform::CpuOnly) => shared_cpu_iteration_ns(p),
        (Scheme::SharedTree, Platform::CpuGpu) => shared_gpu_iteration_ns(p),
        (Scheme::LocalTree, Platform::CpuOnly) => local_cpu_iteration_ns(p),
        (Scheme::LocalTree, Platform::CpuGpu) => {
            local_gpu_iteration_ns(p, batch.unwrap_or(p.workers))
        }
        (Scheme::Serial, _) => p.t_in_tree() + p.t_dnn_cpu_ns,
        (other, _) => panic!("no closed-form model for {other}"),
    }
}

/// The paper's compile-time decision (§4.2): evaluate both models with the
/// profiled parameters and pick the faster scheme. For `CpuGpu`, the local
/// tree is given its best modeled batch size (found by Algorithm 4 over
/// the model itself).
pub fn choose_scheme(platform: Platform, p: &PerfParams) -> (Scheme, f64, f64) {
    let shared = match platform {
        Platform::CpuOnly => shared_cpu_iteration_ns(p),
        Platform::CpuGpu => shared_gpu_iteration_ns(p),
    };
    let local = match platform {
        Platform::CpuOnly => local_cpu_iteration_ns(p),
        Platform::CpuGpu => {
            let (b, _) =
                crate::vsearch::find_min_vsequence(1, p.workers, |b| local_gpu_iteration_ns(p, b));
            local_gpu_iteration_ns(p, b)
        }
    };
    if local <= shared {
        (Scheme::LocalTree, local, shared)
    } else {
        (Scheme::SharedTree, local, shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(workers: usize) -> PerfParams {
        PerfParams {
            workers,
            t_select_ns: 2_000.0,
            t_backup_ns: 1_000.0,
            t_shared_access_ns: 300.0,
            t_dnn_cpu_ns: 500_000.0,
            accel: Some(LatencyModel::a6000_like(4 * 15 * 15 * 4)),
        }
    }

    #[test]
    fn eq3_matches_formula() {
        let p = params(8);
        let t = shared_cpu_iteration_ns(&p);
        let expect = (300.0 * 8.0 + 2_000.0 + 1_000.0 + 500_000.0) / 8.0;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn eq5_is_max_of_bottlenecks() {
        // DNN-bound at small N: round = T_DNN.
        let p = params(4);
        let t = local_cpu_iteration_ns(&p);
        assert!((t - 500_000.0 / 4.0).abs() < 1e-9);
        // In-tree-bound at huge N.
        let p = params(512);
        let t = local_cpu_iteration_ns(&p);
        assert!((t - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn local_beats_shared_when_dnn_dominates() {
        // Expensive DNN, few workers: overlap wins (paper intuition §3.2).
        let p = PerfParams {
            t_dnn_cpu_ns: 5_000_000.0,
            ..params(4)
        };
        let (scheme, _, _) = choose_scheme(Platform::CpuOnly, &p);
        assert_eq!(scheme, Scheme::LocalTree);
    }

    #[test]
    fn shared_wins_when_in_tree_dominates() {
        // Cheap DNN, many workers, deep/expensive in-tree ops: the serial
        // master becomes the bottleneck and the shared tree wins.
        let p = PerfParams {
            workers: 64,
            t_select_ns: 40_000.0,
            t_backup_ns: 20_000.0,
            t_shared_access_ns: 100.0,
            t_dnn_cpu_ns: 60_000.0,
            accel: None,
        };
        let (scheme, _, _) = choose_scheme(Platform::CpuOnly, &p);
        assert_eq!(scheme, Scheme::SharedTree);
    }

    #[test]
    fn eq6_batch_extremes_are_both_bad() {
        // The V shape: B=1 pays launch per sample, B=N pays compute bulk +
        // master fill; some middle B is at least as good as both.
        let p = params(64);
        let b1 = local_gpu_iteration_ns(&p, 1);
        let bn = local_gpu_iteration_ns(&p, 64);
        let best = (1..=64)
            .map(|b| local_gpu_iteration_ns(&p, b))
            .fold(f64::INFINITY, f64::min);
        assert!(best <= b1 && best <= bn);
        assert!(best < b1.max(bn), "interior minimum expected");
    }

    #[test]
    fn model_vsearch_agrees_with_exhaustive() {
        let p = params(64);
        let exhaustive = (1..=64)
            .min_by(|&a, &b| {
                local_gpu_iteration_ns(&p, a)
                    .partial_cmp(&local_gpu_iteration_ns(&p, b))
                    .unwrap()
            })
            .unwrap();
        let (b, _) = crate::vsearch::find_min_vsequence(1, 64, |b| local_gpu_iteration_ns(&p, b));
        let diff = (local_gpu_iteration_ns(&p, b) - local_gpu_iteration_ns(&p, exhaustive)).abs();
        assert!(
            diff < 1e-6 * local_gpu_iteration_ns(&p, exhaustive).abs(),
            "vsearch B={b} vs exhaustive B={exhaustive}"
        );
    }

    #[test]
    fn serial_prediction_is_sum() {
        let p = params(1);
        let t = predict_iteration_ns(Scheme::Serial, Platform::CpuOnly, &p, None);
        assert!((t - (3_000.0 + 500_000.0)).abs() < 1e-9);
    }

    #[test]
    fn gpu_offload_helps_shared_scheme() {
        let p = params(16);
        assert!(shared_gpu_iteration_ns(&p) < shared_cpu_iteration_ns(&p));
    }
}
