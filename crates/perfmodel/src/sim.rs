//! Deterministic discrete-event simulation of the two schemes' execution
//! timelines (Figures 1-b and 2-b).
//!
//! The closed-form models (Eqs. 3–6) capture steady-state bottlenecks; the
//! simulators here additionally capture pipeline fill, partial batches and
//! in-flight caps, and are used to regenerate the *shapes* of the paper's
//! Figures 3–6 under paper-like hardware parameters (64 cores, GPU) on
//! hosts that don't physically have them. Virtual time is `f64`
//! nanoseconds; no wall-clock, threads, or randomness is involved, so
//! results are exactly reproducible.
//!
//! Modeling assumptions (documented in DESIGN.md / EXPERIMENTS.md):
//! * `cores ≥ N` as on the paper's 64-core platform — each worker (and the
//!   master) has its own hardware thread;
//! * the local tree is cache-resident (§3.1.2), so the master pays
//!   `t_select + t_backup` per iteration; the shared tree lives in DDR,
//!   so shared-tree workers pay `ddr_in_tree_factor ×` that;
//! * shared-tree workers additionally serialize on a per-iteration shared
//!   access (root virtual loss + root backup, Eq. 3's `T_shared×N` term)
//!   whose cost grows with the number of contending workers
//!   (`contention_per_worker`, modeling lock/cache-line contention);
//! * per the paper's §4.1 observation 1, the local master's per-iteration
//!   in-tree cost shrinks as the accelerator sub-batch `B` grows (new
//!   nodes appear in bursts, so selection traverses shallower trees):
//!   `t_in_tree(B) = t_in_tree / (1 + in_tree_shrink_per_batch · B)`.

use accel::LatencyModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hardware/algorithm parameters for a simulated move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Parallel workers `N`.
    pub workers: usize,
    /// Playouts per move (the paper uses 1600).
    pub playouts: usize,
    /// Node Selection latency per iteration (cache-resident tree), ns.
    pub t_select_ns: f64,
    /// Expansion+BackUp latency per iteration (cache-resident tree), ns.
    pub t_backup_ns: f64,
    /// Multiplier on in-tree cost when the tree lives in shared DDR
    /// (shared-tree scheme).
    pub ddr_in_tree_factor: f64,
    /// Base serialized shared-memory access per shared-tree iteration, ns.
    pub t_shared_access_ns: f64,
    /// Relative growth of the serialized access cost per contending
    /// worker (lock/cache-line contention).
    pub contention_per_worker: f64,
    /// One DNN inference on one CPU thread, ns.
    pub t_dnn_cpu_ns: f64,
    /// §4.1 observation 1: relative shrink of the local master's in-tree
    /// cost per unit of accelerator sub-batch size.
    pub in_tree_shrink_per_batch: f64,
    /// Accelerator latency model (for the CPU-GPU variants).
    pub accel: LatencyModel,
}

impl SimParams {
    /// Parameters shaped like the paper's platform (3990X + A6000, Gomoku
    /// 15×15 with the 5-conv/3-FC net, 1600-node trees of fanout 225):
    /// in-tree operations are tens of microseconds, CPU inference ~1 ms,
    /// batched GPU inference amortizes a ~20 µs launch cost.
    pub fn paper_like(workers: usize) -> Self {
        SimParams {
            workers,
            playouts: 1600,
            t_select_ns: 20_000.0,
            t_backup_ns: 10_000.0,
            ddr_in_tree_factor: 4.0 / 3.0,
            t_shared_access_ns: 1_500.0,
            contention_per_worker: 0.04,
            t_dnn_cpu_ns: 1_200_000.0,
            in_tree_shrink_per_batch: 0.08,
            accel: LatencyModel::a6000_like(4 * 15 * 15 * 4),
        }
    }

    /// In-tree per-iteration cost on a cache-resident (local) tree.
    pub fn t_in_tree(&self) -> f64 {
        self.t_select_ns + self.t_backup_ns
    }

    /// In-tree per-iteration cost on the DDR-resident shared tree.
    pub fn t_in_tree_shared(&self) -> f64 {
        self.t_in_tree() * self.ddr_in_tree_factor
    }

    /// Serialized shared-access cost under `N`-worker contention.
    pub fn sigma(&self) -> f64 {
        self.t_shared_access_ns * (1.0 + self.contention_per_worker * self.workers as f64)
    }

    /// Local-master in-tree shrink factor at sub-batch size `b` (§4.1).
    pub fn in_tree_shrink(&self, b: usize) -> f64 {
        1.0 / (1.0 + self.in_tree_shrink_per_batch * b as f64)
    }
}

/// Outcome of a simulated move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Total virtual time of the move, ns.
    pub move_ns: f64,
    /// Amortized per-worker-iteration latency (move / playouts), ns.
    pub iteration_ns: f64,
}

fn outcome(move_ns: f64, playouts: usize) -> SimOutcome {
    SimOutcome {
        move_ns,
        iteration_ns: move_ns / playouts as f64,
    }
}

/// Shared tree, CPU-only (Figure 1-b; Eq. 3 steady state).
///
/// Each worker iterates: serialized shared-memory access (contended) →
/// DDR-resident in-tree work and inference on its own thread.
pub fn simulate_shared_cpu(p: &SimParams) -> SimOutcome {
    let sigma = p.sigma();
    let service = p.t_in_tree_shared() + p.t_dnn_cpu_ns;
    let mut worker_free = vec![0.0f64; p.workers];
    let mut mem_free = 0.0f64;
    let mut finish_last = 0.0f64;
    for _ in 0..p.playouts {
        // Next playout goes to the earliest-available worker.
        let w = argmin(&worker_free);
        // Root access is serialized through shared memory.
        let start = worker_free[w].max(mem_free);
        mem_free = start + sigma;
        let done = start + sigma + service;
        worker_free[w] = done;
        finish_last = finish_last.max(done);
    }
    outcome(finish_last, p.playouts)
}

/// Shared tree, CPU+GPU with full-batch inference (batch = `N`, §3.3).
///
/// Workers run their in-tree phases (staggered by the serialized,
/// contended shared access), then all submit to the device, which
/// executes one batch of `N`; workers resume for backup when the batch
/// completes.
pub fn simulate_shared_accel(p: &SimParams) -> SimOutcome {
    let sigma = p.sigma();
    let t_select = p.t_select_ns * p.ddr_in_tree_factor;
    let t_backup = p.t_backup_ns * p.ddr_in_tree_factor;
    let mut worker_free = vec![0.0f64; p.workers];
    let mut mem_free = 0.0f64;
    let mut device_free = 0.0f64;
    let mut done = 0usize;
    let mut finish_last = 0.0f64;
    while done < p.playouts {
        let round = p.workers.min(p.playouts - done);
        // Phase 1: each participating worker performs its serialized
        // access + selection, producing a request.
        let mut last_submit = 0.0f64;
        for (w, free) in worker_free.iter().enumerate().take(round) {
            let start = free.max(mem_free);
            mem_free = start + sigma;
            let submit = start + sigma + t_select;
            last_submit = last_submit.max(submit);
            let _ = w;
        }
        // Phase 2: the device waits for the full batch, then computes.
        let batch_start = last_submit.max(device_free);
        let batch_done = batch_start + p.accel.batch_ns(round);
        device_free = batch_done;
        // Phase 3: workers back up.
        for free in worker_free.iter_mut().take(round) {
            let end = batch_done + t_backup;
            *free = end;
            finish_last = finish_last.max(end);
        }
        done += round;
    }
    outcome(finish_last, p.playouts)
}

/// Local tree, CPU-only (Figure 2-b; Eq. 5 steady state).
///
/// The master serially performs selection per iteration and backup per
/// completed evaluation; `N` workers evaluate in parallel; the master
/// blocks when `N` evaluations are in flight.
pub fn simulate_local_cpu(p: &SimParams) -> SimOutcome {
    let mut master = 0.0f64;
    let mut worker_free = vec![0.0f64; p.workers];
    // Completion times of in-flight evaluations (chronological).
    let mut in_flight: VecDeque<f64> = VecDeque::new();
    for _ in 0..p.playouts {
        // Block while the pool is saturated (Algorithm 3, lines 12-13).
        while in_flight.len() >= p.workers {
            let done = in_flight.pop_front().unwrap();
            master = master.max(done) + p.t_backup_ns;
        }
        master += p.t_select_ns;
        let w = argmin(&worker_free);
        let start = worker_free[w].max(master);
        let done = start + p.t_dnn_cpu_ns;
        worker_free[w] = done;
        // The VecDeque stays sorted because all evals take equal time and
        // start in dispatch order.
        in_flight.push_back(done);
    }
    while let Some(done) = in_flight.pop_front() {
        master = master.max(done) + p.t_backup_ns;
    }
    outcome(master, p.playouts)
}

/// Local tree, CPU+GPU with sub-batches of `B` (§3.3, Eq. 6): the master
/// accumulates `B` selections per submission; `N/B` submissions can be in
/// flight concurrently (the paper's CUDA streams); the in-flight cap is
/// `N` samples. The master's per-iteration in-tree cost shrinks with `B`
/// (§4.1 observation 1).
pub fn simulate_local_accel(p: &SimParams, batch: usize) -> SimOutcome {
    assert!(batch >= 1, "batch must be >= 1");
    let b = batch.min(p.workers).max(1);
    let shrink = p.in_tree_shrink(b);
    let t_select = p.t_select_ns * shrink;
    let t_backup = p.t_backup_ns * shrink;
    let mut master = 0.0f64;
    let mut device_free = 0.0f64;
    // (completion time, samples) of in-flight submissions.
    let mut in_flight: VecDeque<(f64, usize)> = VecDeque::new();
    let mut in_flight_samples = 0usize;
    let mut queued = 0usize; // selections accumulated toward the next batch

    let submit = |master: f64,
                  device_free: &mut f64,
                  in_flight: &mut VecDeque<(f64, usize)>,
                  count: usize| {
        let start = master.max(*device_free);
        let done = start + p.accel.batch_ns(count);
        *device_free = done;
        in_flight.push_back((done, count));
    };

    for i in 0..p.playouts {
        // Respect the N-sample in-flight cap.
        while in_flight_samples + queued >= p.workers {
            let (done, count) = in_flight.pop_front().expect("cap implies in-flight work");
            master = master.max(done) + count as f64 * t_backup;
            in_flight_samples -= count;
        }
        master += t_select;
        queued += 1;
        if queued == b || i + 1 == p.playouts {
            submit(master, &mut device_free, &mut in_flight, queued);
            in_flight_samples += queued;
            queued = 0;
        }
    }
    while let Some((done, count)) = in_flight.pop_front() {
        master = master.max(done) + count as f64 * t_backup;
    }
    outcome(master, p.playouts)
}

/// Training-throughput simulation (Figure 6): the tree-based search
/// produces samples, the trainer consumes them; with producer/consumer
/// overlap the episode time is the max of the two stages.
///
/// Returns samples/second. One "sample" is one move (1600 iterations).
pub fn simulate_training_throughput(
    search_move_ns: f64,
    train_per_sample_ns: f64,
    moves_per_episode: usize,
) -> f64 {
    let search_total = search_move_ns * moves_per_episode as f64;
    let train_total = train_per_sample_ns * moves_per_episode as f64;
    let episode_ns = search_total.max(train_total);
    moves_per_episode as f64 / (episode_ns * 1e-9)
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cpu_single_worker_is_serial() {
        let p = SimParams {
            workers: 1,
            playouts: 10,
            ..SimParams::paper_like(1)
        };
        let o = simulate_shared_cpu(&p);
        let per = p.sigma() + p.t_in_tree_shared() + p.t_dnn_cpu_ns;
        assert!((o.move_ns - 10.0 * per).abs() < 1e-6);
    }

    #[test]
    fn shared_cpu_scales_until_memory_bound() {
        let base = SimParams::paper_like(1);
        let lat = |n: usize| simulate_shared_cpu(&SimParams { workers: n, ..base }).iteration_ns;
        assert!(lat(4) < lat(1));
        assert!(lat(16) < lat(4));
        // The serialized contended access caps the gain: latency can
        // never go below the base access cost.
        assert!(lat(64) >= base.t_shared_access_ns);
    }

    #[test]
    fn local_cpu_overlaps_inference() {
        let base = SimParams::paper_like(1);
        let lat = |n: usize| simulate_local_cpu(&SimParams { workers: n, ..base }).iteration_ns;
        // DNN-bound regime: doubling workers ≈ halves iteration latency.
        assert!(lat(2) < 0.7 * lat(1));
        // In-tree-bound regime: latency floors at t_select + t_backup.
        let floor = base.t_in_tree();
        assert!(lat(512) >= floor * 0.99);
    }

    #[test]
    fn local_cpu_floor_is_in_tree_rate() {
        // With enough workers the master's serial in-tree loop is the
        // bottleneck (the paper's motivation for switching schemes).
        let p = SimParams {
            workers: 4096,
            playouts: 2000,
            ..SimParams::paper_like(1)
        };
        let o = simulate_local_cpu(&p);
        let floor = p.t_in_tree();
        assert!(o.iteration_ns >= floor * 0.99);
        assert!(o.iteration_ns <= floor * 1.25);
    }

    #[test]
    fn crossover_exists_between_schemes_cpu() {
        // Paper Figure 4: the optimal scheme differs with N — local wins
        // in the DNN-bound regime, shared wins once the serial master
        // floors out (by N = 64 with paper-like parameters).
        let lat_shared = |n: usize| simulate_shared_cpu(&SimParams::paper_like(n)).iteration_ns;
        let lat_local = |n: usize| simulate_local_cpu(&SimParams::paper_like(n)).iteration_ns;
        assert!(
            lat_local(16) < lat_shared(16),
            "local should win at N=16: {} vs {}",
            lat_local(16),
            lat_shared(16)
        );
        assert!(
            lat_shared(64) < lat_local(64),
            "shared should win at N=64: {} vs {}",
            lat_shared(64),
            lat_local(64)
        );
    }

    #[test]
    fn cpu_adaptive_speedup_near_paper_band() {
        // The paper reports up to 1.5x CPU-only adaptive speedup.
        let mut best: f64 = 1.0;
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let p = SimParams::paper_like(n);
            let shared = simulate_shared_cpu(&p).iteration_ns;
            let local = simulate_local_cpu(&p).iteration_ns;
            best = best.max(shared.max(local) / shared.min(local));
        }
        assert!(
            best > 1.2 && best < 2.5,
            "CPU adaptive speedup {best:.2} out of band"
        );
    }

    #[test]
    fn local_accel_batch_sequence_is_v_shaped_coarsely() {
        // Paper Figure 3: extremes are worse than the interior.
        let p = SimParams::paper_like(64);
        let lat = |b: usize| simulate_local_accel(&p, b).iteration_ns;
        let b1 = lat(1);
        let bn = lat(64);
        let best = (1..=64).map(lat).fold(f64::INFINITY, f64::min);
        assert!(best < 0.5 * b1, "B=1 should be clearly suboptimal");
        assert!(best < bn, "B=N should be suboptimal at N=64");
    }

    #[test]
    fn gpu_scheme_crossover_matches_paper() {
        // Paper §5.3 / Figure 5: shared wins at N=16; tuned local wins at
        // N ∈ {32, 64}.
        let tuned_local = |n: usize| {
            let p = SimParams::paper_like(n);
            let (b, _) = crate::vsearch::find_min_vsequence(1, n, |b| {
                simulate_local_accel(&p, b).iteration_ns
            });
            simulate_local_accel(&p, b).iteration_ns
        };
        let shared = |n: usize| simulate_shared_accel(&SimParams::paper_like(n)).iteration_ns;
        assert!(
            shared(16) < tuned_local(16),
            "shared should win at N=16: {} vs {}",
            shared(16),
            tuned_local(16)
        );
        for n in [32usize, 64] {
            assert!(
                tuned_local(n) < shared(n),
                "tuned local should win at N={n}: {} vs {}",
                tuned_local(n),
                shared(n)
            );
        }
    }

    #[test]
    fn accel_beats_cpu_inference() {
        let p = SimParams::paper_like(16);
        let cpu = simulate_local_cpu(&p).iteration_ns;
        let (b, _) =
            crate::vsearch::find_min_vsequence(1, 16, |b| simulate_local_accel(&p, b).iteration_ns);
        let gpu = simulate_local_accel(&p, b).iteration_ns;
        assert!(gpu < cpu, "offload should help: {gpu} vs {cpu}");
    }

    #[test]
    fn shared_accel_full_batch_matches_structure() {
        let p = SimParams::paper_like(32);
        let o = simulate_shared_accel(&p);
        // Must take at least the device time for all batches.
        let min_device = p.accel.batch_ns(32) * (p.playouts as f64 / 32.0);
        assert!(o.move_ns >= min_device * 0.9);
    }

    #[test]
    fn throughput_hides_training_when_search_dominates() {
        let tp_slow_search = simulate_training_throughput(1e9, 1e8, 40);
        let tp_fast_search = simulate_training_throughput(1e8, 1e8, 40);
        assert!(tp_fast_search > tp_slow_search);
        // Training-bound regime: further search speedup does nothing.
        let tp_faster = simulate_training_throughput(1e7, 1e8, 40);
        assert!((tp_faster - tp_fast_search).abs() / tp_fast_search < 1e-9);
    }

    #[test]
    fn deterministic() {
        let p = SimParams::paper_like(32);
        assert_eq!(simulate_local_accel(&p, 8), simulate_local_accel(&p, 8));
        assert_eq!(simulate_shared_cpu(&p), simulate_shared_cpu(&p));
    }
}
