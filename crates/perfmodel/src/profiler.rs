//! Design-time profiling (§4.2): measure the model inputs on the target
//! host.
//!
//! * `T_select` / `T_backup` are measured on a **synthetic tree** with the
//!   target algorithm's fanout and depth limit, filled with random UCT
//!   statistics — no game or network needed, exactly as the paper
//!   prescribes ("a synthetic tree constructed for one episode with
//!   random-generated UCT scores, emulating the same fanout and depth").
//! * `T^CPU_DNN` is measured by timing inference through a network with
//!   random parameters and correctly-shaped random inputs.
//! * `T_shared tree access` is estimated with a dependent-load pointer
//!   chase over a buffer much larger than the last-level cache,
//!   approximating the documented DDR access latency.

use nn::PolicyValueNet;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Profiled in-tree and inference costs (nanoseconds, amortized).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfiledCosts {
    /// Per-iteration Node Selection latency.
    pub t_select_ns: f64,
    /// Per-iteration Expansion+BackUp latency.
    pub t_backup_ns: f64,
    /// Shared-memory (DDR-class) dependent access latency.
    pub t_shared_access_ns: f64,
    /// Single-sample CPU inference latency.
    pub t_dnn_cpu_ns: f64,
}

/// A synthetic UCT tree: `depth` levels, `fanout` children per node, with
/// random priors/values. Mirrors the arena layout of the real tree so the
/// measured selection/backup walks touch memory the same way.
pub struct SyntheticTree {
    /// Flattened statistics per node: (prior, q, n).
    prior: Vec<f32>,
    q: Vec<f32>,
    n: Vec<u32>,
    fanout: usize,
    depth: usize,
}

impl SyntheticTree {
    /// Build a complete `fanout`-ary tree of the given depth with random
    /// UCT statistics (deterministic for a seed).
    pub fn new(fanout: usize, depth: usize, seed: u64) -> Self {
        assert!(fanout >= 1 && depth >= 1, "degenerate synthetic tree");
        // Nodes in a complete tree: (f^(d+1)-1)/(f-1); cap to keep the
        // profile cheap while still exceeding L1/L2.
        let mut count = 1usize;
        let mut level = 1usize;
        for _ in 0..depth {
            level = level.saturating_mul(fanout).min(4_000_000);
            count = count.saturating_add(level).min(4_000_000);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SyntheticTree {
            prior: (0..count).map(|_| rng.gen_range(0.0..1.0)).collect(),
            q: (0..count).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            n: (0..count).map(|_| rng.gen_range(0..1000)).collect(),
            fanout,
            depth,
        }
    }

    /// Number of nodes materialized.
    pub fn len(&self) -> usize {
        self.prior.len()
    }

    /// True when the tree is trivial.
    pub fn is_empty(&self) -> bool {
        self.prior.is_empty()
    }

    /// One selection walk: UCT argmax over `fanout` children per level.
    /// Returns the leaf index (also used as a do-not-optimize sink).
    pub fn select_walk(&self, c_puct: f32) -> usize {
        let mut cur = 0usize;
        for _ in 0..self.depth {
            let first = cur * self.fanout + 1;
            if first >= self.len() {
                break;
            }
            let count = self.fanout.min(self.len() - first);
            let sum_n: u32 = self.n[first..first + count].iter().sum();
            let sqrt_sum = (sum_n as f32).sqrt();
            let mut best = first;
            let mut best_score = f32::NEG_INFINITY;
            for i in first..first + count {
                let u = self.q[i] + c_puct * self.prior[i] * sqrt_sum / (1.0 + self.n[i] as f32);
                if u > best_score {
                    best_score = u;
                    best = i;
                }
            }
            cur = best;
        }
        cur
    }

    /// One backup walk from `leaf` to the root, updating statistics.
    pub fn backup_walk(&mut self, leaf: usize, value: f32) {
        let mut cur = leaf;
        let mut v = value;
        loop {
            self.n[cur] += 1;
            let n = self.n[cur] as f32;
            self.q[cur] += (v - self.q[cur]) / n;
            if cur == 0 {
                break;
            }
            cur = (cur - 1) / self.fanout;
            v = -v;
        }
    }
}

/// Measure `T_select` and `T_backup` on a synthetic tree (ns/iteration).
pub fn profile_in_tree(fanout: usize, depth: usize, iters: usize) -> (f64, f64) {
    assert!(iters > 0);
    let mut tree = SyntheticTree::new(fanout, depth, 0xC0FFEE);
    // Warm-up and leaf collection.
    let mut leaves = Vec::with_capacity(iters);
    for _ in 0..iters.min(64) {
        leaves.push(tree.select_walk(5.0));
    }

    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        sink = sink.wrapping_add(tree.select_walk(5.0));
    }
    let t_select = t0.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(sink);

    let t1 = Instant::now();
    for i in 0..iters {
        let leaf = leaves[i % leaves.len()];
        tree.backup_walk(leaf, if i % 2 == 0 { 1.0 } else { -1.0 });
    }
    let t_backup = t1.elapsed().as_nanos() as f64 / iters as f64;
    (t_select, t_backup)
}

/// Measure single-sample CPU inference latency of `net` (ns/inference),
/// using random inputs of the correct shape.
pub fn profile_dnn_cpu(net: &PolicyValueNet, iters: usize) -> f64 {
    assert!(iters > 0);
    let c = net.config;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let x = tensor::init::uniform(&mut rng, &[1, c.in_c, c.h, c.w], 0.0, 1.0);
    let _ = net.predict(&x); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(net.predict(&x));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Measure batched CPU inference latency (ns per *batch* of size `b`).
pub fn profile_dnn_batch(net: &PolicyValueNet, b: usize, iters: usize) -> f64 {
    assert!(b > 0 && iters > 0);
    let c = net.config;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let x = tensor::init::uniform(&mut rng, &[b, c.in_c, c.h, c.w], 0.0, 1.0);
    let _ = net.predict(&x);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(net.predict(&x));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Estimate the dependent shared-memory access latency with a pointer
/// chase over `buffer_mib` MiB (use > LLC size for DDR-class latency).
pub fn profile_memory_latency(buffer_mib: usize, hops: usize) -> f64 {
    assert!(buffer_mib > 0 && hops > 0);
    let len = buffer_mib * 1024 * 1024 / std::mem::size_of::<u32>();
    // Sattolo's algorithm: a single random cycle through the buffer, so
    // every load depends on the previous one.
    let mut next: Vec<u32> = (0..len as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    for i in (1..len).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut idx = 0u32;
    // Warm-up partial chase.
    for _ in 0..len.min(1 << 16) {
        idx = next[idx as usize];
    }
    let t0 = Instant::now();
    for _ in 0..hops {
        idx = next[idx as usize];
    }
    std::hint::black_box(idx);
    t0.elapsed().as_nanos() as f64 / hops as f64
}

/// Run the full §4.2 design-time profile for a given network and tree
/// geometry. `iters` trades precision for profiling time.
pub fn profile_host(
    net: &PolicyValueNet,
    fanout: usize,
    depth: usize,
    iters: usize,
) -> ProfiledCosts {
    let (t_select_ns, t_backup_ns) = profile_in_tree(fanout, depth, iters);
    let t_dnn_cpu_ns = profile_dnn_cpu(net, iters.clamp(1, 50));
    let t_shared_access_ns = profile_memory_latency(64, 200_000);
    ProfiledCosts {
        t_select_ns,
        t_backup_ns,
        t_shared_access_ns,
        t_dnn_cpu_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::NetConfig;

    #[test]
    fn synthetic_tree_size_bounded() {
        let t = SyntheticTree::new(225, 4, 1);
        assert!(t.len() <= 4_000_000);
        assert!(t.len() > 225);
    }

    #[test]
    fn select_walk_reaches_a_leafish_node() {
        let t = SyntheticTree::new(3, 5, 2);
        let leaf = t.select_walk(5.0);
        assert!(leaf > 0, "walk must descend");
        assert!(leaf < t.len());
    }

    #[test]
    fn backup_updates_statistics() {
        let mut t = SyntheticTree::new(3, 4, 3);
        let leaf = t.select_walk(5.0);
        let n_before = t.n[leaf];
        t.backup_walk(leaf, 1.0);
        assert_eq!(t.n[leaf], n_before + 1);
        assert_eq!(t.n[0], {
            // root also incremented
            t.n[0]
        });
    }

    #[test]
    fn in_tree_profile_returns_positive_times() {
        let (sel, back) = profile_in_tree(9, 4, 500);
        assert!(sel > 0.0 && sel < 1e7, "t_select {sel}");
        assert!(back > 0.0 && back < 1e7, "t_backup {back}");
    }

    #[test]
    fn deeper_trees_cost_more_to_select() {
        let (shallow, _) = profile_in_tree(8, 2, 2000);
        let (deep, _) = profile_in_tree(8, 8, 2000);
        assert!(
            deep > shallow,
            "deeper walk should cost more: {deep} vs {shallow}"
        );
    }

    #[test]
    fn dnn_profile_positive() {
        let net = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 1);
        let t = profile_dnn_cpu(&net, 5);
        assert!(t > 0.0);
        let tb = profile_dnn_batch(&net, 4, 3);
        assert!(tb > t, "a batch of 4 should cost more than 1 sample");
    }

    #[test]
    fn memory_latency_in_sane_range() {
        // Use a small buffer in tests (cache-resident): just check units.
        let t = profile_memory_latency(1, 50_000);
        assert!(t > 0.0 && t < 10_000.0, "latency {t} ns");
    }
}
