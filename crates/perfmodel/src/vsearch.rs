//! Algorithm 4: find the minimizing batch size of a "V-sequence" in
//! O(log N) probes.
//!
//! The paper observes (§4.1) that per-iteration latency as a function of
//! the sub-batch size `B` first monotonically decreases, then monotonically
//! increases — a V-sequence — so the minimum can be located by comparing
//! adjacent elements at the midpoint and recursing on the half that
//! contains the descent, mirroring bitonic binary search.

/// Result statistics of a V-search run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VSearchReport {
    /// The minimizing argument found.
    pub argmin: usize,
    /// Number of oracle evaluations performed (the paper's "test runs").
    pub evals: usize,
}

/// Find the argmin of `f` over `[lo, hi]`, assuming `f` is a V-sequence
/// (non-increasing then non-decreasing). Each distinct argument is probed
/// at most once; the total number of probes is O(log(hi-lo)).
///
/// Returns `(argmin, f(argmin))`.
pub fn find_min_vsequence(lo: usize, hi: usize, mut f: impl FnMut(usize) -> f64) -> (usize, f64) {
    let report = find_min_vsequence_counted(lo, hi, &mut f);
    (report.argmin, f_cached(report.argmin, &mut f))
}

// Small helper so the public API can return the value without re-running
// the (possibly expensive) oracle when callers don't memoize: we simply
// call it again — the contract is that `f` is deterministic.
fn f_cached(x: usize, f: &mut impl FnMut(usize) -> f64) -> f64 {
    f(x)
}

/// As [`find_min_vsequence`] but reports the number of oracle probes,
/// which is what the paper's complexity claim (O(log N) vs O(N)) is about.
pub fn find_min_vsequence_counted(
    lo: usize,
    hi: usize,
    f: &mut impl FnMut(usize) -> f64,
) -> VSearchReport {
    assert!(lo <= hi, "empty search range");
    let mut evals = 0usize;
    let mut lo = lo;
    let mut hi = hi;
    // Algorithm 4: probe (mid, mid+1); descend toward the smaller side.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let a = f(mid);
        let b = f(mid + 1);
        evals += 2;
        if a >= b {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    VSearchReport { argmin: lo, evals }
}

/// Exhaustive argmin over `[lo, hi]` — the naive baseline the paper's
/// Algorithm 4 replaces. Exposed for correctness tests and the cost
/// comparison bench.
pub fn find_min_exhaustive(
    lo: usize,
    hi: usize,
    f: &mut impl FnMut(usize) -> f64,
) -> VSearchReport {
    assert!(lo <= hi);
    let mut best = lo;
    let mut best_v = f(lo);
    let mut evals = 1usize;
    for x in lo + 1..=hi {
        let v = f(x);
        evals += 1;
        if v < best_v {
            best_v = v;
            best = x;
        }
    }
    VSearchReport {
        argmin: best,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A V-sequence with its minimum at `m`.
    fn vee(m: usize) -> impl FnMut(usize) -> f64 {
        move |x| (x as f64 - m as f64).abs()
    }

    #[test]
    fn finds_interior_minimum() {
        for m in [1usize, 7, 20, 33, 64] {
            let (argmin, val) = find_min_vsequence(1, 64, vee(m));
            assert_eq!(argmin, m.clamp(1, 64));
            assert_eq!(val, 0.0);
        }
    }

    #[test]
    fn handles_monotone_decreasing() {
        let (argmin, _) = find_min_vsequence(1, 64, |x| -(x as f64));
        assert_eq!(argmin, 64);
    }

    #[test]
    fn handles_monotone_increasing() {
        let (argmin, _) = find_min_vsequence(1, 64, |x| x as f64);
        assert_eq!(argmin, 1);
    }

    #[test]
    fn single_point_range() {
        let (argmin, val) = find_min_vsequence(5, 5, |x| x as f64);
        assert_eq!((argmin, val), (5, 5.0));
    }

    #[test]
    fn logarithmic_probe_count() {
        let mut f = vee(40);
        let report = find_min_vsequence_counted(1, 1024, &mut f);
        assert_eq!(report.argmin, 40);
        // 2 probes per halving step: 2·ceil(log2(1024)) = 20.
        assert!(report.evals <= 20, "evals = {}", report.evals);
        let mut f = vee(40);
        let naive = find_min_exhaustive(1, 1024, &mut f);
        assert_eq!(naive.argmin, 40);
        assert_eq!(naive.evals, 1024);
    }

    #[test]
    fn flat_plateaus_are_tolerated() {
        // Non-strict V: plateau around the minimum must still land on a
        // minimizing argument.
        let f = |x: usize| {
            if (10..=20).contains(&x) {
                1.0
            } else {
                2.0 + x as f64
            }
        };
        let (argmin, val) = find_min_vsequence(1, 64, f);
        assert!((10..=20).contains(&argmin), "argmin {argmin}");
        assert_eq!(val, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty search range")]
    fn inverted_range_rejected() {
        let _ = find_min_vsequence(5, 4, |x| x as f64);
    }
}
