//! Learning-rate schedules.
//!
//! AlphaZero-style training anneals the learning rate over the run; the
//! pipeline applies one of these schedules between episodes.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule mapping a step index to a rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f32),
    /// Multiply by `factor` every `every` steps, floored at `min`.
    StepDecay {
        base: f32,
        factor: f32,
        every: u64,
        min: f32,
    },
    /// Cosine annealing from `base` to `min` over `period` steps, then
    /// held at `min`.
    Cosine { base: f32, min: f32, period: u64 },
    /// Linear ramp from 0 to `base` over `warmup` steps, then cosine
    /// annealing to `min` over the following `period` steps (the usual
    /// warmup-then-decay recipe for training from scratch).
    WarmupCosine {
        base: f32,
        min: f32,
        warmup: u64,
        period: u64,
    },
}

impl LrSchedule {
    /// Learning rate at step `t` (0-based).
    pub fn at(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                base,
                factor,
                every,
                min,
            } => {
                assert!(every > 0, "decay interval must be positive");
                let k = (t / every) as i32;
                (base * factor.powi(k)).max(min)
            }
            LrSchedule::Cosine { base, min, period } => {
                assert!(period > 0, "cosine period must be positive");
                if t >= period {
                    return min;
                }
                let frac = t as f32 / period as f32;
                min + 0.5 * (base - min) * (1.0 + (std::f32::consts::PI * frac).cos())
            }
            LrSchedule::WarmupCosine {
                base,
                min,
                warmup,
                period,
            } => {
                assert!(warmup > 0, "warmup length must be positive");
                if t < warmup {
                    base * (t + 1) as f32 / warmup as f32
                } else {
                    LrSchedule::Cosine { base, min, period }.at(t - warmup)
                }
            }
        }
    }

    /// The schedule's initial rate.
    pub fn initial(&self) -> f32 {
        self.at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            base: 0.1,
            factor: 0.5,
            every: 10,
            min: 0.01,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(9), 0.1);
        assert_eq!(s.at(10), 0.05);
        assert_eq!(s.at(20), 0.025);
        // Floored at min.
        assert_eq!(s.at(1_000), 0.01);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = LrSchedule::Cosine {
            base: 0.1,
            min: 0.001,
            period: 100,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(100) - 0.001).abs() < 1e-6);
        assert!((s.at(10_000) - 0.001).abs() < 1e-6);
        let mut prev = s.at(0);
        for t in 1..=100 {
            let cur = s.at(t);
            assert!(cur <= prev + 1e-6, "cosine must not increase");
            prev = cur;
        }
    }

    #[test]
    fn initial_matches_at_zero() {
        for s in [
            LrSchedule::Constant(0.2),
            LrSchedule::StepDecay {
                base: 0.3,
                factor: 0.1,
                every: 5,
                min: 0.0,
            },
            LrSchedule::Cosine {
                base: 0.4,
                min: 0.0,
                period: 7,
            },
        ] {
            assert_eq!(s.initial(), s.at(0));
        }
    }

    #[test]
    fn warmup_ramps_then_anneals() {
        let s = LrSchedule::WarmupCosine {
            base: 0.1,
            min: 0.001,
            warmup: 10,
            period: 100,
        };
        // Ramp: strictly increasing, hits base at the end of warmup.
        let mut prev = 0.0;
        for t in 0..10 {
            let cur = s.at(t);
            assert!(cur > prev, "warmup must increase");
            prev = cur;
        }
        assert!((s.at(9) - 0.1).abs() < 1e-6);
        assert!((s.at(10) - 0.1).abs() < 1e-6, "cosine starts at base");
        // Decay: non-increasing afterwards, ends at min.
        let mut prev = s.at(10);
        for t in 11..=110 {
            let cur = s.at(t);
            assert!(cur <= prev + 1e-6);
            prev = cur;
        }
        assert!((s.at(110) - 0.001).abs() < 1e-6);
        assert!((s.at(10_000) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn warmup_first_step_is_nonzero() {
        let s = LrSchedule::WarmupCosine {
            base: 0.5,
            min: 0.0,
            warmup: 5,
            period: 10,
        };
        assert!(s.at(0) > 0.0, "step 0 must already train");
        assert!((s.at(0) - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "decay interval")]
    fn zero_decay_interval_rejected() {
        let _ = LrSchedule::StepDecay {
            base: 0.1,
            factor: 0.5,
            every: 0,
            min: 0.0,
        }
        .at(1);
    }
}
