//! AlphaZero-style residual-tower policy-value network.
//!
//! The paper evaluates the plain 5-conv/3-FC network ([`crate::model::PolicyValueNet`]),
//! but positions its framework as serving *any* DNN-MCTS algorithm (§1).
//! This model is the obvious second architecture a user would bring: a
//! conv-bn-relu stem, a tower of residual blocks, and the AlphaZero policy
//! and value heads. It exercises the batch-norm / residual machinery and
//! gives the benchmarks a heavier inference workload to schedule.

use crate::layer::{
    backward_stack, forward_cached_train, update_stack_running_stats, Conv2d, Layer, LayerKind,
    Linear,
};
use crate::loss::{alphazero_loss_backward, LossParts};
use crate::norm::BatchNorm2d;
use crate::residual::ResidualBlock;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tensor::{Tensor, Workspace};

/// Residual-tower hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Input channels (encoding planes).
    pub in_c: usize,
    /// Board height.
    pub h: usize,
    /// Board width.
    pub w: usize,
    /// Action-space size (policy logits).
    pub actions: usize,
    /// Trunk width (filters per residual block).
    pub filters: usize,
    /// Number of residual blocks in the tower.
    pub blocks: usize,
    /// Hidden width of the value head.
    pub value_hidden: usize,
}

impl ResNetConfig {
    /// A small tower for the 15×15 Gomoku benchmark.
    pub fn gomoku15() -> Self {
        ResNetConfig {
            in_c: 4,
            h: 15,
            w: 15,
            actions: 225,
            filters: 64,
            blocks: 4,
            value_hidden: 64,
        }
    }

    /// Tiny tower for fast unit tests.
    pub fn tiny(in_c: usize, h: usize, w: usize, actions: usize) -> Self {
        ResNetConfig {
            in_c,
            h,
            w,
            actions,
            filters: 8,
            blocks: 2,
            value_hidden: 8,
        }
    }
}

/// Residual-tower policy-value network. `forward` is pure (`&self`) so the
/// same instance serves concurrent inference workers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResNetPolicyValueNet {
    pub config: ResNetConfig,
    trunk: Vec<LayerKind>,
    policy_head: Vec<LayerKind>,
    value_head: Vec<LayerKind>,
}

/// Caches from a training-mode forward pass, consumed by `backward`.
pub struct ResNetCaches {
    trunk: Vec<Tensor>,
    policy: Vec<Tensor>,
    value: Vec<Tensor>,
    /// Policy logits `[b, actions]` (pre-softmax).
    pub policy_logits: Tensor,
    /// Value output `[b, 1]` (post-tanh).
    pub values: Tensor,
}

/// Per-layer gradient buffers matching the network's parameter layout.
#[derive(Debug, Clone)]
pub struct ResNetGrads {
    trunk: Vec<Vec<Tensor>>,
    policy: Vec<Vec<Tensor>>,
    value: Vec<Vec<Tensor>>,
}

impl ResNetGrads {
    /// Zero all gradient buffers (call between optimizer steps).
    pub fn zero(&mut self) {
        for stack in [&mut self.trunk, &mut self.policy, &mut self.value] {
            for layer in stack.iter_mut() {
                for g in layer.iter_mut() {
                    g.zero_();
                }
            }
        }
    }

    /// Flat gradient list matching [`ResNetPolicyValueNet::params`].
    pub fn flat(&self) -> Vec<&Tensor> {
        self.trunk
            .iter()
            .chain(self.policy.iter())
            .chain(self.value.iter())
            .flat_map(|layer| layer.iter())
            .collect()
    }

    /// Mutable flat gradient list (for clipping).
    pub fn flat_mut(&mut self) -> Vec<&mut Tensor> {
        self.trunk
            .iter_mut()
            .chain(self.policy.iter_mut())
            .chain(self.value.iter_mut())
            .flat_map(|layer| layer.iter_mut())
            .collect()
    }

    /// Scale every gradient (e.g. 1/batch for mean reduction).
    pub fn scale(&mut self, s: f32) {
        for g in self.flat_mut() {
            g.scale(s);
        }
    }
}

impl ResNetPolicyValueNet {
    /// Build a tower with freshly initialized parameters.
    pub fn new(config: ResNetConfig, seed: u64) -> Self {
        assert!(config.blocks >= 1, "need at least one residual block");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = &mut rng;
        let f = config.filters;
        let plane = config.h * config.w;
        let mut trunk = vec![
            LayerKind::Conv2d(Conv2d::new(r, config.in_c, f, 3, 1)),
            LayerKind::BatchNorm2d(BatchNorm2d::new(f)),
            LayerKind::ReLU,
        ];
        for _ in 0..config.blocks {
            trunk.push(LayerKind::Residual(Box::new(ResidualBlock::new(r, f))));
        }
        let policy_head = vec![
            LayerKind::Conv2d(Conv2d::new(r, f, 2, 1, 0)),
            LayerKind::BatchNorm2d(BatchNorm2d::new(2)),
            LayerKind::ReLU,
            LayerKind::Flatten,
            LayerKind::Linear(Linear::new(r, 2 * plane, config.actions)),
        ];
        let value_head = vec![
            LayerKind::Conv2d(Conv2d::new(r, f, 1, 1, 0)),
            LayerKind::BatchNorm2d(BatchNorm2d::new(1)),
            LayerKind::ReLU,
            LayerKind::Flatten,
            LayerKind::Linear(Linear::new(r, plane, config.value_hidden)),
            LayerKind::ReLU,
            LayerKind::Linear(Linear::new(r, config.value_hidden, 1)),
            LayerKind::Tanh,
        ];
        ResNetPolicyValueNet {
            config,
            trunk,
            policy_head,
            value_head,
        }
    }

    fn all_stacks(&self) -> impl Iterator<Item = &Vec<LayerKind>> {
        [&self.trunk, &self.policy_head, &self.value_head].into_iter()
    }

    /// Number of residual blocks in the tower.
    pub fn block_count(&self) -> usize {
        self.trunk
            .iter()
            .filter(|l| matches!(l, LayerKind::Residual(_)))
            .count()
    }

    /// Total parameter scalar count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Flat immutable parameter list (trunk, policy head, value head order).
    pub fn params(&self) -> Vec<&Tensor> {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .flat_map(|l| l.param_views())
            .collect()
    }

    /// Flat mutable parameter list (same order as `params`).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.trunk
            .iter_mut()
            .chain(self.policy_head.iter_mut())
            .chain(self.value_head.iter_mut())
            .flat_map(|l| l.param_views_mut())
            .collect()
    }

    /// Flat list of non-trainable state (batch-norm running statistics).
    pub fn state_tensors(&self) -> Vec<&Tensor> {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .flat_map(|l| l.state_views())
            .collect()
    }

    /// Mutable non-trainable state (same order).
    pub fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        self.trunk
            .iter_mut()
            .chain(self.policy_head.iter_mut())
            .chain(self.value_head.iter_mut())
            .flat_map(|l| l.state_views_mut())
            .collect()
    }

    /// Fresh zeroed gradient buffers.
    pub fn grad_buffers(&self) -> ResNetGrads {
        let make = |stack: &Vec<LayerKind>| stack.iter().map(|l| l.grad_buffers()).collect();
        ResNetGrads {
            trunk: make(&self.trunk),
            policy: make(&self.policy_head),
            value: make(&self.value_head),
        }
    }

    /// Inference: `x` is `[b, in_c, h, w]`; returns policy logits `[b, A]`
    /// and tanh values `[b, 1]`. Pure and thread-safe; batch norm uses
    /// running statistics.
    ///
    /// Runs on the workspace fast path (batched convs, fused epilogues,
    /// recycled buffers from the calling thread's shared [`Workspace`]);
    /// only the two returned tensors are allocated.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        crate::model::net_forward(&self.trunk, &self.policy_head, &self.value_head, x)
    }

    /// Workspace inference: every buffer, including the returned
    /// logits/values, is leased from `ws` (zero steady-state allocation).
    /// Release both returned tensors with `ws.release(t.into_vec())`.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, Tensor) {
        crate::model::net_forward_ws(&self.trunk, &self.policy_head, &self.value_head, x, ws)
    }

    /// Allocation-free batched prediction: softmaxed policies (`[b·A]`,
    /// row-major) into `policy`, values (`[b]`) into `values`, reusing
    /// their capacity across calls.
    pub fn predict_into(
        &self,
        x: &Tensor,
        ws: &mut Workspace,
        policy: &mut Vec<f32>,
        values: &mut Vec<f32>,
    ) {
        crate::model::net_predict_into(
            &self.trunk,
            &self.policy_head,
            &self.value_head,
            self.config.actions,
            x,
            ws,
            policy,
            values,
        );
    }

    /// Inference snapshot with every batch norm (stem, heads, and inside
    /// each residual block) folded into its convolution — see
    /// [`crate::fuse`]. Same eval-mode function within float rounding; the
    /// folded net's training-mode passes are meaningless. This is the net
    /// to hand to an inference server (e.g. `accel::Device::with_model`).
    pub fn folded_for_inference(&self) -> ResNetPolicyValueNet {
        ResNetPolicyValueNet {
            config: self.config,
            trunk: crate::fuse::fold_stack(&self.trunk),
            policy_head: crate::fuse::fold_stack(&self.policy_head),
            value_head: crate::fuse::fold_stack(&self.value_head),
        }
    }

    /// Inference returning softmax policies instead of logits.
    pub fn predict(&self, x: &Tensor) -> (Tensor, Tensor) {
        let (mut logits, values) = self.forward(x);
        let b = logits.dims()[0];
        let a = logits.dims()[1];
        for r in 0..b {
            tensor::ops::softmax_inplace(&mut logits.data_mut()[r * a..(r + 1) * a]);
        }
        (logits, values)
    }

    /// Training-mode forward: batch-norm layers use batch statistics, and
    /// every layer input is cached for `backward`.
    pub fn forward_train(&self, x: &Tensor) -> ResNetCaches {
        let (trunk_caches, feat) = forward_cached_train(&self.trunk, x);
        let (policy_caches, policy_logits) = forward_cached_train(&self.policy_head, &feat);
        let (value_caches, values) = forward_cached_train(&self.value_head, &feat);
        ResNetCaches {
            trunk: trunk_caches,
            policy: policy_caches,
            value: value_caches,
            policy_logits,
            values,
        }
    }

    /// Full backward pass for the AlphaZero loss (Eq. 2). Accumulates
    /// parameter gradients into `grads` and returns the loss decomposition.
    pub fn backward(
        &self,
        caches: &ResNetCaches,
        target_pi: &Tensor,
        target_r: &Tensor,
        grads: &mut ResNetGrads,
    ) -> LossParts {
        let (parts, grad_logits, grad_values) =
            alphazero_loss_backward(&caches.policy_logits, &caches.values, target_pi, target_r);
        let g_feat_p = backward_stack(
            &self.policy_head,
            &caches.policy,
            &mut grads.policy,
            grad_logits,
        );
        let g_feat_v = backward_stack(
            &self.value_head,
            &caches.value,
            &mut grads.value,
            grad_values,
        );
        let mut g_feat = g_feat_p;
        g_feat.add_assign(&g_feat_v);
        backward_stack(&self.trunk, &caches.trunk, &mut grads.trunk, g_feat);
        parts
    }

    /// Fold the running batch-norm statistics for the step that produced
    /// `caches` (call once per optimizer step, after `backward`).
    pub fn update_running_stats(&mut self, caches: &ResNetCaches) {
        update_stack_running_stats(&mut self.trunk, &caches.trunk);
        update_stack_running_stats(&mut self.policy_head, &caches.policy);
        update_stack_running_stats(&mut self.value_head, &caches.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_net() -> ResNetPolicyValueNet {
        ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 21)
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        tensor::init::uniform(&mut r, dims, -1.0, 1.0)
    }

    #[test]
    fn forward_shapes_and_value_range() {
        let net = tiny_net();
        let x = rand_t(&[2, 3, 4, 4], 1);
        let (logits, values) = net.forward(&x);
        assert_eq!(logits.dims(), &[2, 16]);
        assert_eq!(values.dims(), &[2, 1]);
        assert!(values.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn tower_has_requested_blocks() {
        let net = tiny_net();
        assert_eq!(net.block_count(), 2);
        let big = ResNetPolicyValueNet::new(ResNetConfig::gomoku15(), 3);
        assert_eq!(big.block_count(), 4);
    }

    #[test]
    fn predict_rows_are_distributions() {
        let net = tiny_net();
        let x = rand_t(&[3, 3, 4, 4], 2);
        let (pi, _) = net.predict(&x);
        for r in 0..3 {
            let s: f32 = pi.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(pi.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn grads_align_with_params() {
        let net = tiny_net();
        let grads = net.grad_buffers();
        let flat = grads.flat();
        let params = net.params();
        assert_eq!(flat.len(), params.len());
        // Each residual block contributes 8 params + stem conv/bn + heads.
        assert!(params.len() > 16);
        for (g, p) in flat.iter().zip(params) {
            assert_eq!(g.dims(), p.dims());
        }
    }

    #[test]
    fn state_tensors_cover_all_batchnorms() {
        let net = tiny_net();
        // stem bn (2) + 2 blocks × 2 bns × 2 (4 each = 8) + policy bn (2) + value bn (2).
        assert_eq!(net.state_tensors().len(), 2 + 8 + 2 + 2);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut net = tiny_net();
        let x = rand_t(&[4, 3, 4, 4], 5);
        let mut pi = rand_t(&[4, 16], 6).map(f32::abs);
        for r in 0..4 {
            let s: f32 = pi.row(r).iter().sum();
            for v in &mut pi.data_mut()[r * 16..(r + 1) * 16] {
                *v /= s;
            }
        }
        let target_r = Tensor::from_vec(vec![1.0, -1.0, 0.0, 1.0], &[4, 1]);

        let mut grads = net.grad_buffers();
        let mut losses = Vec::new();
        for _ in 0..60 {
            grads.zero();
            let caches = net.forward_train(&x);
            let parts = net.backward(&caches, &pi, &target_r, &mut grads);
            losses.push(parts.total);
            let flat = grads.flat();
            let lr = 0.05;
            for (p, g) in net.params_mut().into_iter().zip(flat) {
                p.axpy(-lr, g);
            }
        }
        let (first, last) = (losses[0], *losses.last().unwrap());
        assert!(
            last < first - 0.05 && last.is_finite(),
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn running_stats_update_changes_inference() {
        let mut net = tiny_net();
        let x = rand_t(&[4, 3, 4, 4], 7);
        let before = net.forward(&x).0;
        for _ in 0..20 {
            let caches = net.forward_train(&x);
            net.update_running_stats(&caches);
        }
        let after = net.forward(&x).0;
        assert_ne!(before.data(), after.data());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 9);
        let b = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 9);
        let x = rand_t(&[1, 3, 4, 4], 3);
        assert_eq!(a.forward(&x).0.data(), b.forward(&x).0.data());
    }

    /// A net whose batch norms hold non-trivial running statistics (so
    /// folding actually has something to fold).
    fn trained_net() -> ResNetPolicyValueNet {
        let mut net = tiny_net();
        let x = rand_t(&[4, 3, 4, 4], 33);
        for _ in 0..10 {
            let caches = net.forward_train(&x);
            net.update_running_stats(&caches);
        }
        net
    }

    #[test]
    fn folded_tower_matches_unfolded_eval() {
        let net = trained_net();
        let folded = net.folded_for_inference();
        let x = rand_t(&[3, 3, 4, 4], 34);
        let (l_ref, v_ref) = net.forward(&x);
        let (l_fold, v_fold) = folded.forward(&x);
        for (f, u) in l_fold.data().iter().zip(l_ref.data()) {
            assert!((f - u).abs() < 1e-4, "logits {f} vs {u}");
        }
        for (f, u) in v_fold.data().iter().zip(v_ref.data()) {
            assert!((f - u).abs() < 1e-4, "values {f} vs {u}");
        }
    }

    #[test]
    fn predict_into_matches_predict() {
        let net = trained_net();
        let x = rand_t(&[2, 3, 4, 4], 35);
        let (pi, v) = net.predict(&x);
        let mut ws = Workspace::new();
        let (mut policy, mut values) = (Vec::new(), Vec::new());
        net.predict_into(&x, &mut ws, &mut policy, &mut values);
        assert_eq!(policy, pi.data());
        assert_eq!(values, v.data());
    }
}
