//! Binary checkpoint format for network parameters.
//!
//! A tiny self-describing little-endian format (magic, version, tensor
//! count, then `rank, dims…, f32 data…` per tensor) built on the `bytes`
//! crate. Only parameter *values* are stored; the architecture comes from
//! `NetConfig`, so loading checks that shapes line up.

use crate::model::PolicyValueNet;
use crate::resnet::ResNetPolicyValueNet;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tensor::Tensor;

const MAGIC: u32 = 0x4D43_5453; // "MCTS"
const VERSION: u32 = 1;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer too short or corrupt.
    Truncated,
    /// Magic number mismatch: not a checkpoint.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Tensor count or a tensor shape differs from the target network.
    ShapeMismatch { index: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "bad magic number"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape mismatch")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialize an arbitrary tensor list in checkpoint order. This is the
/// model-agnostic core: a model checkpoint is just its parameter tensors
/// (plus any running statistics) flattened into a deterministic order.
pub fn save_tensor_list(tensors: &[&Tensor]) -> Bytes {
    let payload: usize = tensors
        .iter()
        .map(|p| 4 + 8 * p.dims().len() + 4 * p.numel())
        .sum();
    let mut buf = BytesMut::with_capacity(16 + payload);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(tensors.len() as u32);
    for p in tensors {
        buf.put_u32_le(p.dims().len() as u32);
        for &d in p.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in p.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Load a tensor list saved by [`save_tensor_list`] into pre-shaped
/// destination tensors (count and every shape must match).
pub fn load_tensor_list(
    tensors: &mut [&mut Tensor],
    mut data: &[u8],
) -> Result<(), CheckpointError> {
    if data.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = data.get_u32_le() as usize;
    if count != tensors.len() {
        return Err(CheckpointError::ShapeMismatch { index: 0 });
    }
    for (index, p) in tensors.iter_mut().enumerate() {
        if data.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = data.get_u32_le() as usize;
        if data.remaining() < 8 * rank {
            return Err(CheckpointError::Truncated);
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(data.get_u64_le() as usize);
        }
        if dims != p.dims() {
            return Err(CheckpointError::ShapeMismatch { index });
        }
        if data.remaining() < 4 * p.numel() {
            return Err(CheckpointError::Truncated);
        }
        for v in p.data_mut() {
            *v = data.get_f32_le();
        }
    }
    Ok(())
}

/// Serialize the network's parameters.
pub fn save_params(net: &PolicyValueNet) -> Bytes {
    save_tensor_list(&net.params())
}

/// Load parameters into an existing network (architecture must match).
pub fn load_params(net: &mut PolicyValueNet, data: &[u8]) -> Result<(), CheckpointError> {
    load_tensor_list(&mut net.params_mut(), data)
}

/// Serialize a residual-tower network: parameters *plus* the batch-norm
/// running statistics (without them, loaded models would normalize with
/// the identity statistics at inference).
pub fn save_resnet(net: &ResNetPolicyValueNet) -> Bytes {
    let mut tensors = net.params();
    tensors.extend(net.state_tensors());
    save_tensor_list(&tensors)
}

/// Load a residual-tower checkpoint saved by [`save_resnet`].
pub fn load_resnet(net: &mut ResNetPolicyValueNet, data: &[u8]) -> Result<(), CheckpointError> {
    // Two disjoint mutable borrows of `net` are not expressible through the
    // accessor methods, so load into clones and write back.
    let mut params: Vec<Tensor> = net.params().into_iter().cloned().collect();
    let mut states: Vec<Tensor> = net.state_tensors().into_iter().cloned().collect();
    {
        let mut dst: Vec<&mut Tensor> = params.iter_mut().chain(states.iter_mut()).collect();
        load_tensor_list(&mut dst, data)?;
    }
    for (p, src) in net.params_mut().into_iter().zip(&params) {
        *p = src.clone();
    }
    for (s, src) in net.state_tensors_mut().into_iter().zip(&states) {
        *s = src.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetConfig;
    use tensor::Tensor;

    fn tiny() -> PolicyValueNet {
        PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 5)
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let src = tiny();
        let bytes = save_params(&src);
        let mut dst = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 999);
        load_params(&mut dst, &bytes).unwrap();
        let x = Tensor::ones(&[1, 4, 3, 3]);
        assert_eq!(src.forward(&x).0.data(), dst.forward(&x).0.data());
        assert_eq!(src.forward(&x).1.data(), dst.forward(&x).1.data());
    }

    #[test]
    fn rejects_garbage() {
        let mut net = tiny();
        assert_eq!(
            load_params(&mut net, b"nope"),
            Err(CheckpointError::Truncated)
        );
        let mut bad = vec![0u8; 64];
        bad[0] = 0xFF;
        assert_eq!(load_params(&mut net, &bad), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let src = tiny();
        let bytes = save_params(&src);
        let mut other = PolicyValueNet::new(NetConfig::tiny(4, 4, 4, 16), 5);
        assert!(matches!(
            load_params(&mut other, &bytes),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let src = tiny();
        let bytes = save_params(&src);
        let cut = &bytes[..bytes.len() / 2];
        let mut dst = tiny();
        assert_eq!(load_params(&mut dst, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn resnet_roundtrip_preserves_outputs_and_running_stats() {
        use crate::resnet::{ResNetConfig, ResNetPolicyValueNet};
        let mut src = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 1);
        // Move the running stats off their init values so the test catches
        // checkpoints that forget them.
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let caches = src.forward_train(&x);
        src.update_running_stats(&caches);

        let bytes = save_resnet(&src);
        let mut dst = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 999);
        load_resnet(&mut dst, &bytes).unwrap();
        assert_eq!(src.forward(&x).0.data(), dst.forward(&x).0.data());
        assert_eq!(src.forward(&x).1.data(), dst.forward(&x).1.data());
        for (a, b) in src.state_tensors().iter().zip(dst.state_tensors()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn resnet_rejects_plain_param_checkpoint() {
        use crate::resnet::{ResNetConfig, ResNetPolicyValueNet};
        let src = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 1);
        // A tensor list missing the running stats must be rejected.
        let bytes = save_tensor_list(&src.params());
        let mut dst = ResNetPolicyValueNet::new(ResNetConfig::tiny(3, 4, 4, 16), 2);
        assert!(matches!(
            load_resnet(&mut dst, &bytes),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn tensor_list_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0, 7.0], &[2, 2]);
        let bytes = save_tensor_list(&[&a, &b]);
        let mut a2 = Tensor::zeros(&[3]);
        let mut b2 = Tensor::zeros(&[2, 2]);
        load_tensor_list(&mut [&mut a2, &mut b2], &bytes).unwrap();
        assert_eq!(a.data(), a2.data());
        assert_eq!(b.data(), b2.data());
    }

    #[test]
    fn rejects_future_version() {
        let src = tiny();
        let mut raw = save_params(&src).to_vec();
        raw[4] = 99; // bump version field
        let mut dst = tiny();
        assert_eq!(
            load_params(&mut dst, &raw),
            Err(CheckpointError::BadVersion(99))
        );
    }
}
