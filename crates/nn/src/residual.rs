//! Pre-activation-free residual block: `y = relu(bn2(conv2(relu(bn1(conv1 x)))) + x)`.
//!
//! This is the building block of the AlphaZero/AlphaGo-Zero residual tower,
//! offered alongside the paper's plain 5-conv/3-FC network as the
//! "arbitrary DNN-MCTS algorithm" the adaptive framework must serve
//! (§1: the methodology applies to any DNN-MCTS specification).
//!
//! The backward pass *recomputes* the block's internal activations from the
//! cached block input instead of storing them during the forward pass —
//! gradient checkpointing. This keeps the `Layer` calling convention (only
//! the layer input is cached) at the cost of one extra forward per block,
//! a standard memory/compute tradeoff.

use crate::layer::Conv2d;
use crate::norm::BatchNorm2d;
use serde::{Deserialize, Serialize};
use tensor::{Tensor, Workspace};

/// Two 3×3 convolutions with batch norm and an identity skip connection.
/// Input and output are both `[b, c, h, w]` (channel-preserving).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock {
    pub conv1: Conv2d,
    pub bn1: BatchNorm2d,
    pub conv2: Conv2d,
    pub bn2: BatchNorm2d,
}

/// Internal activations of one block, recomputed on demand.
struct BlockActs {
    /// `conv1(x)` — input to bn1.
    a1: Tensor,
    /// `bn1(a1)` — pre-ReLU hidden.
    b1: Tensor,
    /// `relu(b1)` — input to conv2.
    h: Tensor,
    /// `conv2(h)` — input to bn2.
    a2: Tensor,
    /// `bn2(a2) + x` — pre-ReLU output.
    z: Tensor,
}

fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

impl ResidualBlock {
    /// He-initialized residual block over `channels` feature maps.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, channels: usize) -> Self {
        ResidualBlock {
            conv1: Conv2d::new(rng, channels, channels, 3, 1),
            bn1: BatchNorm2d::new(channels),
            conv2: Conv2d::new(rng, channels, channels, 3, 1),
            bn2: BatchNorm2d::new(channels),
        }
    }

    fn acts(&self, x: &Tensor, train: bool) -> BlockActs {
        let bn = |b: &BatchNorm2d, t: &Tensor| {
            if train {
                b.forward_batch(t)
            } else {
                b.forward_eval(t)
            }
        };
        let a1 = self.conv1.forward(x);
        let b1 = bn(&self.bn1, &a1);
        let h = relu(&b1);
        let a2 = self.conv2.forward(&h);
        let mut z = bn(&self.bn2, &a2);
        z.add_assign(x);
        BlockActs { a1, b1, h, a2, z }
    }

    /// Inference-mode forward (running batch-norm statistics).
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        relu(&self.acts(x, false).z)
    }

    /// Zero-allocation inference forward: activations leased from `ws`,
    /// batch norms applied in place (skipped entirely when folded to the
    /// identity by [`crate::fuse`]). Numerically identical to
    /// [`ResidualBlock::forward_eval`]. The returned tensor's buffer is
    /// leased from `ws`.
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut h = self.conv1.forward_ws(x, false, ws);
        if !self.bn1.is_identity() {
            self.bn1.forward_eval_inplace(&mut h);
        }
        h.map_inplace(|v| v.max(0.0));
        let mut z = self.conv2.forward_ws(&h, false, ws);
        ws.release(h.into_vec());
        if !self.bn2.is_identity() {
            self.bn2.forward_eval_inplace(&mut z);
        }
        z.add_assign(x);
        z.map_inplace(|v| v.max(0.0));
        z
    }

    /// Inference snapshot with both batch norms folded into their
    /// convolutions (see [`crate::fuse::fold_conv_bn`]); the remaining norm
    /// layers are exact identities that the fast forward path skips.
    /// Training-mode passes through the folded block are meaningless.
    pub fn fold_inference(&self) -> ResidualBlock {
        ResidualBlock {
            conv1: crate::fuse::fold_conv_bn(&self.conv1, &self.bn1),
            bn1: crate::fuse::identity_bn(self.bn1.channels),
            conv2: crate::fuse::fold_conv_bn(&self.conv2, &self.bn2),
            bn2: crate::fuse::identity_bn(self.bn2.channels),
        }
    }

    /// Training-mode forward (batch statistics). Pure.
    pub fn forward_train(&self, x: &Tensor) -> Tensor {
        relu(&self.acts(x, true).z)
    }

    /// Fold the batch statistics induced by input `x` into both batch-norm
    /// layers' running estimates.
    pub fn update_running_stats(&mut self, x: &Tensor) {
        let acts = self.acts(x, true);
        self.bn1.update_running_stats(&acts.a1);
        self.bn2.update_running_stats(&acts.a2);
    }

    /// Training-mode backward; recomputes internal activations from `x`.
    /// `grads` layout: `[conv1.w, conv1.b, bn1.γ, bn1.β, conv2.w, conv2.b,
    /// bn2.γ, bn2.β]` (same order as [`ResidualBlock::param_views`]).
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        assert_eq!(grads.len(), 8, "residual block has 8 parameter tensors");
        let acts = self.acts(x, true);

        // y = relu(z): gate the incoming gradient.
        let mut dz = grad_out.clone();
        for (g, &zv) in dz.data_mut().iter_mut().zip(acts.z.data()) {
            if zv <= 0.0 {
                *g = 0.0;
            }
        }

        // Split grads into the five per-layer views up front:
        // [conv1.w, conv1.b | bn1.γ, bn1.β | conv2.w, conv2.b | bn2.γ, bn2.β]
        let (c1g, rest) = grads.split_at_mut(2);
        let (b1g, rest) = rest.split_at_mut(2);
        let (c2g, b2g) = rest.split_at_mut(2);

        // z = bn2(a2) + x: skip path gets dz directly.
        let da2 = self.bn2.backward(&acts.a2, &dz, b2g);

        // a2 = conv2(h).
        let (c2w, c2b) = c2g.split_at_mut(1);
        let dh = self.conv2.backward(&acts.h, &da2, &mut c2w[0], &mut c2b[0]);

        // h = relu(b1).
        let mut db1 = dh;
        for (g, &bv) in db1.data_mut().iter_mut().zip(acts.b1.data()) {
            if bv <= 0.0 {
                *g = 0.0;
            }
        }

        // b1 = bn1(a1).
        let da1 = self.bn1.backward(&acts.a1, &db1, b1g);

        // a1 = conv1(x).
        let (c1w, c1b) = c1g.split_at_mut(1);
        let mut dx = self.conv1.backward(x, &da1, &mut c1w[0], &mut c1b[0]);

        // Skip connection: dx += dz.
        dx.add_assign(&dz);
        dx
    }

    /// Parameter tensors in gradient-buffer order.
    pub fn param_views(&self) -> Vec<&Tensor> {
        vec![
            &self.conv1.weight,
            &self.conv1.bias,
            &self.bn1.gamma,
            &self.bn1.beta,
            &self.conv2.weight,
            &self.conv2.bias,
            &self.bn2.gamma,
            &self.bn2.beta,
        ]
    }

    /// Mutable parameter tensors (same order).
    pub fn param_views_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.conv1.weight,
            &mut self.conv1.bias,
            &mut self.bn1.gamma,
            &mut self.bn1.beta,
            &mut self.conv2.weight,
            &mut self.conv2.bias,
            &mut self.bn2.gamma,
            &mut self.bn2.beta,
        ]
    }

    /// Non-trainable state (batch-norm running statistics) that checkpoints
    /// must persist: `[bn1.mean, bn1.var, bn2.mean, bn2.var]`.
    pub fn state_views(&self) -> Vec<&Tensor> {
        vec![
            &self.bn1.running_mean,
            &self.bn1.running_var,
            &self.bn2.running_mean,
            &self.bn2.running_var,
        ]
    }

    /// Mutable non-trainable state (same order).
    pub fn state_views_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.bn1.running_mean,
            &mut self.bn1.running_var,
            &mut self.bn2.running_mean,
            &mut self.bn2.running_var,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        tensor::init::uniform(&mut r, dims, -1.0, 1.0)
    }

    #[test]
    fn forward_preserves_shape() {
        let blk = ResidualBlock::new(&mut rng(), 4);
        let x = rand_t(&[2, 4, 5, 5], 1);
        assert_eq!(blk.forward_eval(&x).dims(), x.dims());
        assert_eq!(blk.forward_train(&x).dims(), x.dims());
    }

    #[test]
    fn zeroed_convs_reduce_to_relu_of_skip() {
        // With conv2 weights and bias zero and bn2 at identity-init, the
        // residual branch contributes β₂ = 0, so y = relu(x).
        let mut blk = ResidualBlock::new(&mut rng(), 2);
        blk.conv2.weight.zero_();
        blk.conv2.bias.zero_();
        let x = rand_t(&[1, 2, 3, 3], 2);
        let y = blk.forward_eval(&x);
        for (yv, xv) in y.data().iter().zip(x.data()) {
            assert!((yv - xv.max(0.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn eight_params_four_state_tensors() {
        let blk = ResidualBlock::new(&mut rng(), 3);
        assert_eq!(blk.param_views().len(), 8);
        assert_eq!(blk.state_views().len(), 4);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let blk = ResidualBlock::new(&mut rng(), 2);
        let x = rand_t(&[2, 2, 3, 3], 3);
        let g_out = rand_t(&[2, 2, 3, 3], 4);
        let mut grads: Vec<Tensor> = blk
            .param_views()
            .iter()
            .map(|p| Tensor::zeros(p.dims()))
            .collect();
        let gx = blk.backward(&x, &g_out, &mut grads);

        let loss = |blk: &ResidualBlock, x: &Tensor| -> f32 {
            blk.forward_train(x)
                .data()
                .iter()
                .zip(g_out.data())
                .map(|(&y, &g)| y * g)
                .sum()
        };
        let eps = 1e-2;
        let mut xp = x.clone();
        for idx in [0usize, x.numel() / 2, x.numel() - 1] {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = loss(&blk, &xp);
            xp.data_mut()[idx] = orig - eps;
            let lm = loss(&blk, &xp);
            xp.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 6e-2,
                "dx mismatch at {idx}: fd={fd} an={}",
                gx.data()[idx]
            );
        }
        // Spot-check one coordinate of every parameter tensor.
        for (pi, _) in blk.param_views().iter().enumerate() {
            let mut b2 = blk.clone();
            let orig = b2.param_views()[pi].data()[0];
            b2.param_views_mut()[pi].data_mut()[0] = orig + eps;
            let lp = loss(&b2, &x);
            b2.param_views_mut()[pi].data_mut()[0] = orig - eps;
            let lm = loss(&b2, &x);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[pi].data()[0]).abs() < 6e-2,
                "param {pi} grad mismatch: fd={fd} an={}",
                grads[pi].data()[0]
            );
        }
    }

    #[test]
    fn update_running_stats_moves_both_norms() {
        let mut blk = ResidualBlock::new(&mut rng(), 2);
        let x = rand_t(&[4, 2, 4, 4], 5);
        let before1 = blk.bn1.running_mean.clone();
        let before2 = blk.bn2.running_mean.clone();
        blk.update_running_stats(&x);
        assert_ne!(blk.bn1.running_mean.data(), before1.data());
        assert_ne!(blk.bn2.running_mean.data(), before2.data());
    }
}
