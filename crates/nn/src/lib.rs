//! Neural-network substrate for the DNN-MCTS reproduction.
//!
//! The paper's benchmark network is "5 convolution layers and 3
//! fully-connected layers" on a 15×15 Gomoku board (§5.1). The standard
//! Gomoku-AlphaZero architecture with exactly that layer budget is:
//!
//! ```text
//! trunk:  conv3x3(4→32) → ReLU → conv3x3(32→64) → ReLU → conv3x3(64→128) → ReLU
//! policy: conv1x1(128→4) → ReLU → flatten → FC(4·H·W → H·W)            [logits]
//! value:  conv1x1(128→2) → ReLU → flatten → FC(2·H·W → 64) → ReLU → FC(64 → 1) → tanh
//! ```
//!
//! (= 5 convs + 3 FCs). [`model::PolicyValueNet`] implements it generically
//! over board shape so small test games reuse the same code.
//!
//! Everything needed for the full training pipeline is here: cached forward
//! passes, exact backward passes (validated against finite differences),
//! the AlphaZero loss of Eq. 2, and SGD/Adam optimizers.

pub mod layer;
pub mod loss;
pub mod model;
pub mod norm;
pub mod optim;
pub mod residual;
pub mod resnet;
pub mod schedule;
pub mod serialize;

pub use layer::{Conv2d, Layer, LayerKind, Linear};
pub use loss::{alphazero_loss, LossParts};
pub use model::{NetConfig, PolicyValueNet};
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::LrSchedule;
