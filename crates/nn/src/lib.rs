//! Neural-network substrate for the DNN-MCTS reproduction.
//!
//! The paper's benchmark network is "5 convolution layers and 3
//! fully-connected layers" on a 15×15 Gomoku board (§5.1). The standard
//! Gomoku-AlphaZero architecture with exactly that layer budget is:
//!
//! ```text
//! trunk:  conv3x3(4→32) → ReLU → conv3x3(32→64) → ReLU → conv3x3(64→128) → ReLU
//! policy: conv1x1(128→4) → ReLU → flatten → FC(4·H·W → H·W)            [logits]
//! value:  conv1x1(128→2) → ReLU → flatten → FC(2·H·W → 64) → ReLU → FC(64 → 1) → tanh
//! ```
//!
//! (= 5 convs + 3 FCs). [`model::PolicyValueNet`] implements it generically
//! over board shape so small test games reuse the same code.
//!
//! Everything needed for the full training pipeline is here: cached forward
//! passes, exact backward passes (validated against finite differences),
//! the AlphaZero loss of Eq. 2, and SGD/Adam optimizers.
//!
//! # Performance notes (inference)
//!
//! Inference rides the `tensor` crate's fast path:
//!
//! * **Batched convolutions** — each `Conv2d` forward issues **one GEMM per
//!   batch** (the whole `[B, C, H, W]` input is unfolded at once), so
//!   batching leaf evaluations pays off inside the network, not just at the
//!   search boundary.
//! * **Workspace reuse** — [`layer::forward_stack_ws`] /
//!   [`PolicyValueNet::forward_ws`](model::PolicyValueNet::forward_ws) /
//!   [`PolicyValueNet::predict_into`](model::PolicyValueNet::predict_into)
//!   lease every intermediate activation (and the im2col/staging scratch)
//!   from a `tensor::Workspace`, so steady-state forward passes allocate
//!   nothing. The plain `forward` APIs stay pure and use the calling
//!   thread's shared workspace for scratch.
//! * **Epilogue fusion** — `Conv2d`/`Linear` followed by `ReLU` execute as
//!   a single GEMM with bias+ReLU fused into the output loop (numerically
//!   identical to the separate passes).
//! * **Conv+BN folding** — [`fuse`] folds inference-mode batch norms into
//!   the preceding convolution;
//!   [`PolicyValueNet::folded_for_inference`](model::PolicyValueNet::folded_for_inference)
//!   snapshots a whole net. Folded layers are inference-only;
//!   `forward_train` on the *original* layers is untouched.
//! * **Before/after** — the pre-rewrite path is retained as
//!   `forward_reference`/`forward_stack_reference` for parity tests and
//!   the `BENCH_inference.json` speedup record.

pub mod fuse;
pub mod layer;
pub mod loss;
pub mod model;
pub mod norm;
pub mod optim;
pub mod quant;
pub mod residual;
pub mod resnet;
pub mod schedule;
pub mod serialize;

pub use layer::{Conv2d, Layer, LayerKind, Linear};
pub use loss::{alphazero_loss, LossParts};
pub use model::{NetConfig, PolicyValueNet};
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::LrSchedule;
