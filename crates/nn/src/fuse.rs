//! Inference-time layer fusion: fold batch normalization into the
//! preceding convolution.
//!
//! At inference a batch norm is an affine map per channel,
//! `y = γ·(x − μ)/√(σ² + ε) + β`, and a convolution is linear in its
//! weights, so `bn(conv(x))` collapses into a single convolution:
//!
//! ```text
//! s  = γ / √(σ² + ε)          (per output channel)
//! W' = s · W                  (scale every kernel slice)
//! b' = s · (b − μ) + β
//! ```
//!
//! Folding is a *snapshot*: it bakes the running statistics in, so the
//! folded layers are inference-only — `forward_train` semantics are not
//! preserved (the originals remain untouched; training keeps using them).
//! [`fold_stack`] rewrites a layer stack, collapsing adjacent
//! `Conv2d → BatchNorm2d` pairs and folding the norms inside residual
//! blocks (whose norms become exact identities that the workspace forward
//! path skips).

use crate::layer::{Conv2d, LayerKind};
use crate::norm::BatchNorm2d;

/// Fold `bn`'s inference affine map into `conv`, returning the fused
/// convolution with `conv(x)` ≈ `bn(conv_original(x))` (eval mode).
pub fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Conv2d {
    assert_eq!(conv.out_c, bn.channels, "conv out_c must match bn channels");
    let mut out = conv.clone();
    let kvol = conv.in_c * conv.kh * conv.kw;
    for oc in 0..conv.out_c {
        let inv_std = (bn.running_var.data()[oc] + bn.eps).sqrt().recip();
        let s = bn.gamma.data()[oc] * inv_std;
        for w in &mut out.weight.data_mut()[oc * kvol..(oc + 1) * kvol] {
            *w *= s;
        }
        out.bias.data_mut()[oc] =
            s * (conv.bias.data()[oc] - bn.running_mean.data()[oc]) + bn.beta.data()[oc];
    }
    out
}

/// A batch norm whose evaluation is *exactly* the identity (`scale == 1`,
/// `shift == 0`, `ε == 0`): what [`fold_conv_bn`] leaves behind inside a
/// residual block. [`BatchNorm2d::is_identity`] detects it so the fast
/// forward path skips the pass.
pub fn identity_bn(channels: usize) -> BatchNorm2d {
    let mut bn = BatchNorm2d::new(channels);
    bn.eps = 0.0;
    bn
}

/// Rewrite a layer stack for inference: adjacent `Conv2d → BatchNorm2d`
/// pairs become one folded convolution, residual blocks fold their internal
/// norms, everything else is cloned as-is. The result computes the same
/// eval-mode function (within float rounding) with fewer passes.
pub fn fold_stack(layers: &[LayerKind]) -> Vec<LayerKind> {
    let mut out = Vec::with_capacity(layers.len());
    let mut i = 0;
    while i < layers.len() {
        match (&layers[i], layers.get(i + 1)) {
            (LayerKind::Conv2d(c), Some(LayerKind::BatchNorm2d(bn))) => {
                out.push(LayerKind::Conv2d(fold_conv_bn(c, bn)));
                i += 2;
            }
            (LayerKind::Residual(r), _) => {
                out.push(LayerKind::Residual(Box::new(r.fold_inference())));
                i += 1;
            }
            (l, _) => {
                out.push(l.clone());
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{forward_stack, forward_stack_ws};
    use crate::residual::ResidualBlock;
    use rand::SeedableRng;
    use tensor::{Tensor, Workspace};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rng(seed);
        tensor::init::uniform(&mut r, dims, -1.0, 1.0)
    }

    /// A batch norm with non-trivial learned and running statistics.
    fn busy_bn(channels: usize, seed: u64) -> BatchNorm2d {
        let mut bn = BatchNorm2d::new(channels);
        bn.gamma = rand_t(&[channels], seed).map(|v| 0.5 + v.abs());
        bn.beta = rand_t(&[channels], seed ^ 1);
        bn.running_mean = rand_t(&[channels], seed ^ 2);
        bn.running_var = rand_t(&[channels], seed ^ 3).map(|v| 0.3 + v.abs());
        bn
    }

    #[test]
    fn folded_conv_matches_conv_then_bn() {
        let conv = Conv2d::new(&mut rng(1), 3, 5, 3, 1);
        let bn = busy_bn(5, 10);
        let x = rand_t(&[2, 3, 6, 6], 20);
        let unfolded = bn.forward_eval(&conv.forward(&x));
        let folded = fold_conv_bn(&conv, &bn).forward(&x);
        for (f, u) in folded.data().iter().zip(unfolded.data()) {
            assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
    }

    #[test]
    fn identity_bn_is_detected_and_exact() {
        let bn = identity_bn(4);
        assert!(bn.is_identity());
        let x = rand_t(&[1, 4, 3, 3], 30);
        assert_eq!(bn.forward_eval(&x).data(), x.data());
        // A default-eps norm is NOT an exact identity.
        assert!(!BatchNorm2d::new(4).is_identity());
    }

    #[test]
    fn folded_stack_matches_unfolded_eval() {
        let mut r = rng(2);
        let layers = vec![
            LayerKind::Conv2d(Conv2d::new(&mut r, 2, 4, 3, 1)),
            LayerKind::BatchNorm2d(busy_bn(4, 40)),
            LayerKind::ReLU,
            LayerKind::Conv2d(Conv2d::new(&mut r, 4, 4, 3, 1)),
            LayerKind::BatchNorm2d(busy_bn(4, 41)),
        ];
        let folded = fold_stack(&layers);
        assert_eq!(folded.len(), 3, "two conv+bn pairs collapse");
        let x = rand_t(&[3, 2, 5, 5], 42);
        let y_ref = forward_stack(&layers, &x);
        let y_fold = forward_stack(&folded, &x);
        for (f, u) in y_fold.data().iter().zip(y_ref.data()) {
            assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
        // The workspace path agrees too (and skips the identity norms).
        let mut ws = Workspace::new();
        let y_ws = forward_stack_ws(&folded, &x, &mut ws);
        for (f, u) in y_ws.data().iter().zip(y_ref.data()) {
            assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
        ws.release(y_ws.into_vec());
    }

    #[test]
    fn folded_residual_matches_eval_forward() {
        let blk = ResidualBlock {
            conv1: Conv2d::new(&mut rng(3), 3, 3, 3, 1),
            bn1: busy_bn(3, 50),
            conv2: Conv2d::new(&mut rng(4), 3, 3, 3, 1),
            bn2: busy_bn(3, 51),
        };
        let folded = blk.fold_inference();
        assert!(folded.bn1.is_identity() && folded.bn2.is_identity());
        let x = rand_t(&[2, 3, 4, 4], 52);
        let y_ref = blk.forward_eval(&x);
        let y_fold = folded.forward_eval(&x);
        for (f, u) in y_fold.data().iter().zip(y_ref.data()) {
            assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
        let mut ws = Workspace::new();
        let y_ws = folded.forward_eval_ws(&x, &mut ws);
        for (f, u) in y_ws.data().iter().zip(y_ref.data()) {
            assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
        ws.release(y_ws.into_vec());
    }
}
