//! The paper's policy-value network: 5 convolutions + 3 fully-connected
//! layers with a policy head and a value head (§5.1).

use crate::layer::{
    backward_stack, forward_cached, forward_stack_reference, forward_stack_ws, Conv2d, Layer,
    LayerKind, Linear,
};
use crate::loss::{alphazero_loss_backward, LossParts};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tensor::{Tensor, Workspace};

/// Architecture hyper-parameters. Defaults follow the paper's Gomoku setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Input channels (encoding planes).
    pub in_c: usize,
    /// Board height.
    pub h: usize,
    /// Board width.
    pub w: usize,
    /// Action-space size (policy logits).
    pub actions: usize,
    /// Trunk widths for the three 3×3 convolutions.
    pub trunk: [usize; 3],
    /// 1×1 channels feeding the policy FC.
    pub policy_c: usize,
    /// 1×1 channels feeding the value FCs.
    pub value_c: usize,
    /// Hidden width of the value head.
    pub value_hidden: usize,
}

impl NetConfig {
    /// The paper's 15×15 Gomoku configuration.
    pub fn gomoku15() -> Self {
        NetConfig {
            in_c: 4,
            h: 15,
            w: 15,
            actions: 225,
            trunk: [32, 64, 128],
            policy_c: 4,
            value_c: 2,
            value_hidden: 64,
        }
    }

    /// A configuration for an arbitrary board (e.g. small test games).
    pub fn for_board(in_c: usize, h: usize, w: usize, actions: usize) -> Self {
        NetConfig {
            in_c,
            h,
            w,
            actions,
            trunk: [16, 32, 32],
            policy_c: 4,
            value_c: 2,
            value_hidden: 32,
        }
    }

    /// Tiny network for fast unit tests.
    pub fn tiny(in_c: usize, h: usize, w: usize, actions: usize) -> Self {
        NetConfig {
            in_c,
            h,
            w,
            actions,
            trunk: [4, 8, 8],
            policy_c: 2,
            value_c: 1,
            value_hidden: 8,
        }
    }
}

/// Policy-value network with a shared convolutional trunk and two heads.
///
/// `forward` is pure (`&self`) so a single network can serve concurrent
/// inference requests from many worker threads, exactly like a frozen
/// inference model on an accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyValueNet {
    pub config: NetConfig,
    trunk: Vec<LayerKind>,
    policy_head: Vec<LayerKind>,
    value_head: Vec<LayerKind>,
}

/// Caches from a training-mode forward pass, consumed by `backward`.
pub struct ForwardCaches {
    trunk: Vec<Tensor>,
    policy: Vec<Tensor>,
    value: Vec<Tensor>,
    /// Policy logits `[b, actions]` (pre-softmax).
    pub policy_logits: Tensor,
    /// Value output `[b, 1]` (post-tanh).
    pub values: Tensor,
}

/// Per-layer gradient buffers matching the network's parameter layout.
#[derive(Debug, Clone)]
pub struct NetGrads {
    trunk: Vec<Vec<Tensor>>,
    policy: Vec<Vec<Tensor>>,
    value: Vec<Vec<Tensor>>,
}

impl NetGrads {
    /// Zero all gradient buffers (call between optimizer steps).
    pub fn zero(&mut self) {
        for stack in [&mut self.trunk, &mut self.policy, &mut self.value] {
            for layer in stack.iter_mut() {
                for g in layer.iter_mut() {
                    g.zero_();
                }
            }
        }
    }

    /// Flat list of gradient tensors, matching [`PolicyValueNet::params`].
    pub fn flat(&self) -> Vec<&Tensor> {
        self.trunk
            .iter()
            .chain(self.policy.iter())
            .chain(self.value.iter())
            .flat_map(|layer| layer.iter())
            .collect()
    }

    /// Scale every gradient (e.g. 1/batch for mean reduction).
    pub fn scale(&mut self, s: f32) {
        for stack in [&mut self.trunk, &mut self.policy, &mut self.value] {
            for layer in stack.iter_mut() {
                for g in layer.iter_mut() {
                    g.scale(s);
                }
            }
        }
    }
}

/// Trunk + two-heads workspace forward, shared by [`PolicyValueNet`] and
/// [`crate::resnet::ResNetPolicyValueNet`]. Returned tensors are leased
/// from `ws`.
pub(crate) fn net_forward_ws(
    trunk: &[LayerKind],
    policy_head: &[LayerKind],
    value_head: &[LayerKind],
    x: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor) {
    let feat = forward_stack_ws(trunk, x, ws);
    let logits = forward_stack_ws(policy_head, &feat, ws);
    let values = forward_stack_ws(value_head, &feat, ws);
    ws.release(feat.into_vec());
    (logits, values)
}

/// Pure-API wrapper over [`net_forward_ws`]: runs on the calling thread's
/// shared workspace, allocating only the two returned tensors.
pub(crate) fn net_forward(
    trunk: &[LayerKind],
    policy_head: &[LayerKind],
    value_head: &[LayerKind],
    x: &Tensor,
) -> (Tensor, Tensor) {
    Workspace::with_thread(|ws| {
        let (logits, values) = net_forward_ws(trunk, policy_head, value_head, x, ws);
        let out = (
            Tensor::from_vec(logits.data().to_vec(), logits.dims()),
            Tensor::from_vec(values.data().to_vec(), values.dims()),
        );
        ws.release(logits.into_vec());
        ws.release(values.into_vec());
        out
    })
}

/// Allocation-free batched prediction shared by the policy-value nets:
/// softmaxed policies (`[b·actions]`, row-major) into `policy`, values
/// (`[b]`) into `values`, reusing their capacity across calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn net_predict_into(
    trunk: &[LayerKind],
    policy_head: &[LayerKind],
    value_head: &[LayerKind],
    actions: usize,
    x: &Tensor,
    ws: &mut Workspace,
    policy: &mut Vec<f32>,
    values: &mut Vec<f32>,
) {
    let b = x.dims()[0];
    let (logits, vals) = net_forward_ws(trunk, policy_head, value_head, x, ws);
    policy.clear();
    policy.extend_from_slice(logits.data());
    values.clear();
    values.extend_from_slice(vals.data());
    ws.release(logits.into_vec());
    ws.release(vals.into_vec());
    for r in 0..b {
        tensor::ops::softmax_inplace(&mut policy[r * actions..(r + 1) * actions]);
    }
}

impl PolicyValueNet {
    /// Build a network with freshly initialized parameters.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = &mut rng;
        let [t1, t2, t3] = config.trunk;
        let plane = config.h * config.w;
        let trunk = vec![
            LayerKind::Conv2d(Conv2d::new(r, config.in_c, t1, 3, 1)),
            LayerKind::ReLU,
            LayerKind::Conv2d(Conv2d::new(r, t1, t2, 3, 1)),
            LayerKind::ReLU,
            LayerKind::Conv2d(Conv2d::new(r, t2, t3, 3, 1)),
            LayerKind::ReLU,
        ];
        let policy_head = vec![
            LayerKind::Conv2d(Conv2d::new(r, t3, config.policy_c, 1, 0)),
            LayerKind::ReLU,
            LayerKind::Flatten,
            LayerKind::Linear(Linear::new(r, config.policy_c * plane, config.actions)),
        ];
        let value_head = vec![
            LayerKind::Conv2d(Conv2d::new(r, t3, config.value_c, 1, 0)),
            LayerKind::ReLU,
            LayerKind::Flatten,
            LayerKind::Linear(Linear::new(r, config.value_c * plane, config.value_hidden)),
            LayerKind::ReLU,
            LayerKind::Linear(Linear::new(r, config.value_hidden, 1)),
            LayerKind::Tanh,
        ];
        PolicyValueNet {
            config,
            trunk,
            policy_head,
            value_head,
        }
    }

    /// Number of convolution layers (should be 5 per the paper).
    pub fn conv_count(&self) -> usize {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .filter(|l| matches!(l, LayerKind::Conv2d(_)))
            .count()
    }

    /// Number of fully-connected layers (should be 3 per the paper).
    pub fn fc_count(&self) -> usize {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .filter(|l| matches!(l, LayerKind::Linear(_)))
            .count()
    }

    fn all_stacks(&self) -> impl Iterator<Item = &Vec<LayerKind>> {
        [&self.trunk, &self.policy_head, &self.value_head].into_iter()
    }

    /// Total parameter scalar count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Flat immutable parameter list (trunk, policy head, value head order).
    pub fn params(&self) -> Vec<&Tensor> {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .flat_map(|l| l.param_views())
            .collect()
    }

    /// Flat mutable parameter list (same order as [`PolicyValueNet::params`]).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.trunk
            .iter_mut()
            .chain(self.policy_head.iter_mut())
            .chain(self.value_head.iter_mut())
            .flat_map(|l| l.param_views_mut())
            .collect()
    }

    /// Fresh zeroed gradient buffers.
    pub fn grad_buffers(&self) -> NetGrads {
        let make = |stack: &Vec<LayerKind>| stack.iter().map(|l| l.grad_buffers()).collect();
        NetGrads {
            trunk: make(&self.trunk),
            policy: make(&self.policy_head),
            value: make(&self.value_head),
        }
    }

    /// Inference: `x` is `[b, in_c, h, w]`; returns policy logits `[b, A]`
    /// and tanh values `[b, 1]`. Pure and thread-safe.
    ///
    /// Runs on the workspace fast path (batched convs, fused epilogues,
    /// recycled intermediate buffers from the calling thread's shared
    /// [`Workspace`]); only the two returned tensors are allocated.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        net_forward(&self.trunk, &self.policy_head, &self.value_head, x)
    }

    /// Workspace inference: like [`PolicyValueNet::forward`] but every
    /// buffer — including the returned logits/values — is leased from `ws`,
    /// so steady-state calls perform no heap allocation. Release both
    /// returned tensors with `ws.release(t.into_vec())` when done.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, Tensor) {
        net_forward_ws(&self.trunk, &self.policy_head, &self.value_head, x, ws)
    }

    /// Allocation-free batched prediction: writes softmaxed policies
    /// (`[b·A]`, row-major) into `policy` and values (`[b]`) into `values`,
    /// reusing their capacity across calls. The workhorse behind batch
    /// evaluators.
    pub fn predict_into(
        &self,
        x: &Tensor,
        ws: &mut Workspace,
        policy: &mut Vec<f32>,
        values: &mut Vec<f32>,
    ) {
        net_predict_into(
            &self.trunk,
            &self.policy_head,
            &self.value_head,
            self.config.actions,
            x,
            ws,
            policy,
            values,
        );
    }

    /// Pre-rewrite forward (per-image convolutions, baseline GEMM, fresh
    /// allocations per layer). Retained as the "before" measurement for
    /// benchmark comparisons and kernel-parity tests.
    pub fn forward_reference(&self, x: &Tensor) -> (Tensor, Tensor) {
        let feat = forward_stack_reference(&self.trunk, x);
        let logits = forward_stack_reference(&self.policy_head, &feat);
        let values = forward_stack_reference(&self.value_head, &feat);
        (logits, values)
    }

    /// Inference snapshot with every `Conv2d → BatchNorm2d` pair (and the
    /// norms inside residual blocks) folded into single convolutions — see
    /// [`crate::fuse`]. The folded net computes the same eval-mode function
    /// within float rounding; its training-mode passes are meaningless.
    pub fn folded_for_inference(&self) -> PolicyValueNet {
        PolicyValueNet {
            config: self.config,
            trunk: crate::fuse::fold_stack(&self.trunk),
            policy_head: crate::fuse::fold_stack(&self.policy_head),
            value_head: crate::fuse::fold_stack(&self.value_head),
        }
    }

    /// Int8 inference snapshot: folds norms as
    /// [`PolicyValueNet::folded_for_inference`] does, then quantizes every
    /// conv/linear weight per output channel into the packed form the int8
    /// GEMM consumes (see [`crate::quant`]). Returns `None` when the net
    /// contains layer kinds the int8 path does not support (residual
    /// blocks); callers fall back to the f32 snapshot.
    pub fn quantized_for_inference(&self) -> Option<crate::quant::QuantPolicyValueNet> {
        let trunk = crate::fuse::fold_stack(&self.trunk);
        let policy_head = crate::fuse::fold_stack(&self.policy_head);
        let value_head = crate::fuse::fold_stack(&self.value_head);
        crate::quant::QuantPolicyValueNet::from_folded_stacks(
            self.config,
            &trunk,
            &policy_head,
            &value_head,
        )
    }

    /// True when [`PolicyValueNet::folded_for_inference`] would change
    /// anything (the net contains batch norms, standalone or inside
    /// residual blocks). Lets wrappers skip snapshotting a folded copy of
    /// a net that has nothing to fold.
    pub fn has_foldable_norms(&self) -> bool {
        self.all_stacks()
            .flat_map(|s| s.iter())
            .any(|l| matches!(l, LayerKind::BatchNorm2d(_) | LayerKind::Residual(_)))
    }

    /// Inference returning softmax policies instead of logits.
    pub fn predict(&self, x: &Tensor) -> (Tensor, Tensor) {
        let (mut logits, values) = self.forward(x);
        let b = logits.dims()[0];
        let a = logits.dims()[1];
        for r in 0..b {
            tensor::ops::softmax_inplace(&mut logits.data_mut()[r * a..(r + 1) * a]);
        }
        (logits, values)
    }

    /// Training-mode forward: caches every layer input for `backward`.
    pub fn forward_train(&self, x: &Tensor) -> ForwardCaches {
        let (trunk_caches, feat) = forward_cached(&self.trunk, x);
        let (policy_caches, policy_logits) = forward_cached(&self.policy_head, &feat);
        let (value_caches, values) = forward_cached(&self.value_head, &feat);
        ForwardCaches {
            trunk: trunk_caches,
            policy: policy_caches,
            value: value_caches,
            policy_logits,
            values,
        }
    }

    /// Full backward pass for the AlphaZero loss (Eq. 2):
    /// `l = (v − r)² − π · log softmax(logits)`, mean over the batch.
    ///
    /// Accumulates parameter gradients into `grads` and returns the loss
    /// decomposition for logging.
    pub fn backward(
        &self,
        caches: &ForwardCaches,
        target_pi: &Tensor,
        target_r: &Tensor,
        grads: &mut NetGrads,
    ) -> LossParts {
        let (parts, grad_logits, grad_values) =
            alphazero_loss_backward(&caches.policy_logits, &caches.values, target_pi, target_r);

        let g_feat_p = backward_stack(
            &self.policy_head,
            &caches.policy,
            &mut grads.policy,
            grad_logits,
        );
        let g_feat_v = backward_stack(
            &self.value_head,
            &caches.value,
            &mut grads.value,
            grad_values,
        );
        let mut g_feat = g_feat_p;
        g_feat.add_assign(&g_feat_v);
        backward_stack(&self.trunk, &caches.trunk, &mut grads.trunk, g_feat);
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_net() -> PolicyValueNet {
        PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 42)
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        tensor::init::uniform(&mut r, dims, -1.0, 1.0)
    }

    #[test]
    fn paper_layer_budget() {
        let net = PolicyValueNet::new(NetConfig::gomoku15(), 1);
        assert_eq!(net.conv_count(), 5, "paper: 5 convolution layers");
        assert_eq!(net.fc_count(), 3, "paper: 3 fully-connected layers");
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net();
        let x = rand_t(&[2, 4, 3, 3], 1);
        let (logits, values) = net.forward(&x);
        assert_eq!(logits.dims(), &[2, 9]);
        assert_eq!(values.dims(), &[2, 1]);
        assert!(values.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn predict_rows_are_distributions() {
        let net = tiny_net();
        let x = rand_t(&[3, 4, 3, 3], 2);
        let (pi, _) = net.predict(&x);
        for r in 0..3 {
            let s: f32 = pi.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(pi.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 7);
        let b = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 7);
        let x = rand_t(&[1, 4, 3, 3], 3);
        assert_eq!(a.forward(&x).0.data(), b.forward(&x).0.data());
        let c = PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 8);
        assert_ne!(a.forward(&x).0.data(), c.forward(&x).0.data());
    }

    #[test]
    fn train_and_pure_forward_agree() {
        let net = tiny_net();
        let x = rand_t(&[2, 4, 3, 3], 4);
        let (logits, values) = net.forward(&x);
        let caches = net.forward_train(&x);
        assert_eq!(logits.data(), caches.policy_logits.data());
        assert_eq!(values.data(), caches.values.data());
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // One datapoint; repeated SGD steps must reduce the AlphaZero loss.
        let mut net = tiny_net();
        let x = rand_t(&[4, 4, 3, 3], 5);
        let mut pi = rand_t(&[4, 9], 6).map(f32::abs);
        for r in 0..4 {
            let s: f32 = pi.row(r).iter().sum();
            for v in &mut pi.data_mut()[r * 9..(r + 1) * 9] {
                *v /= s;
            }
        }
        let target_r = Tensor::from_vec(vec![1.0, -1.0, 0.0, 1.0], &[4, 1]);

        let mut grads = net.grad_buffers();
        let mut losses = Vec::new();
        for _ in 0..100 {
            grads.zero();
            let caches = net.forward_train(&x);
            let parts = net.backward(&caches, &pi, &target_r, &mut grads);
            losses.push(parts.total);
            let flat = grads.flat();
            let lr = 0.2;
            for (p, g) in net.params_mut().into_iter().zip(flat) {
                p.axpy(-lr, g);
            }
        }
        let (first, last) = (losses[0], *losses.last().unwrap());
        assert!(
            last < first - 0.05 && last.is_finite(),
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn param_count_nonzero_and_matches_grads() {
        let net = tiny_net();
        assert!(net.param_count() > 0);
        let grads = net.grad_buffers();
        let flat = grads.flat();
        let params = net.params();
        assert_eq!(flat.len(), params.len());
        for (g, p) in flat.iter().zip(params) {
            assert_eq!(g.dims(), p.dims());
        }
    }

    #[test]
    fn netgrads_zero_and_scale() {
        let net = tiny_net();
        let x = rand_t(&[1, 4, 3, 3], 9);
        let pi = Tensor::full(&[1, 9], 1.0 / 9.0);
        let r = Tensor::zeros(&[1, 1]);
        let mut grads = net.grad_buffers();
        let caches = net.forward_train(&x);
        net.backward(&caches, &pi, &r, &mut grads);
        let n1: f32 = grads.flat().iter().map(|g| g.norm()).sum();
        assert!(n1 > 0.0);
        grads.scale(0.5);
        let n2: f32 = grads.flat().iter().map(|g| g.norm()).sum();
        assert!((n2 - 0.5 * n1).abs() < 1e-3 * n1.max(1.0));
        grads.zero();
        assert!(grads.flat().iter().all(|g| g.norm() == 0.0));
    }
}
