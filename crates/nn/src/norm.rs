//! Batch normalization (Ioffe & Szegedy) for NCHW feature maps.
//!
//! Normalization statistics differ between modes:
//!
//! * **Inference** (`Layer::forward`): uses the frozen running mean/variance,
//!   so the pass stays pure (`&self`) and thread-safe for parallel inference
//!   workers — the same contract every other layer obeys.
//! * **Training** (`Layer::forward_train`): normalizes with the statistics of
//!   the current mini-batch. The pass is still pure; the separate
//!   [`BatchNorm2d::update_running_stats`] hook (called by the training loop
//!   via `Layer::update_running_stats`) folds the batch statistics into the
//!   running estimates.
//!
//! The backward pass recomputes the batch statistics from the cached layer
//! input, so it is exact for training-mode forwards without storing extra
//! activations (the same recompute-over-store tradeoff the residual block
//! makes).

use serde::{Deserialize, Serialize};
use tensor::Tensor;

/// Per-channel batch normalization over `[b, c, h, w]` tensors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Learned scale `γ`, `[c]`.
    pub gamma: Tensor,
    /// Learned shift `β`, `[c]`.
    pub beta: Tensor,
    /// Running mean used at inference, `[c]`.
    pub running_mean: Tensor,
    /// Running variance used at inference, `[c]`.
    pub running_var: Tensor,
    /// Exponential-moving-average factor for the running statistics.
    pub momentum: f32,
    /// Variance floor added before the square root.
    pub eps: f32,
    pub channels: usize,
}

/// Per-channel mean and biased variance of a `[b, c, h, w]` batch.
fn batch_stats(x: &Tensor, c: usize) -> (Vec<f32>, Vec<f32>) {
    let d = x.dims();
    assert_eq!(d.len(), 4, "BatchNorm2d expects NCHW input");
    assert_eq!(d[1], c, "channel count mismatch");
    let (b, h, w) = (d[0], d[2], d[3]);
    let plane = h * w;
    let m = (b * plane) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for bi in 0..b {
        for (ci, m) in mean.iter_mut().enumerate() {
            let base = (bi * c + ci) * plane;
            let slice = &x.data()[base..base + plane];
            *m += slice.iter().sum::<f32>();
        }
    }
    for mv in &mut mean {
        *mv /= m;
    }
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * plane;
            for &v in &x.data()[base..base + plane] {
                let dlt = v - mean[ci];
                var[ci] += dlt * dlt;
            }
        }
    }
    for vv in &mut var {
        *vv /= m;
    }
    (mean, var)
}

impl BatchNorm2d {
    /// Identity-initialized batch norm (`γ = 1`, `β = 0`) with PyTorch-style
    /// defaults (`momentum = 0.1`, `eps = 1e-5`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    fn normalize(&self, x: &Tensor, mean: &[f32], var: &[f32]) -> Tensor {
        let mut out = x.clone();
        self.normalize_inplace(&mut out, mean, var);
        out
    }

    fn normalize_inplace(&self, x: &mut Tensor, mean: &[f32], var: &[f32]) {
        let d = x.dims();
        let (b, c, plane) = (d[0], d[1], d[2] * d[3]);
        for bi in 0..b {
            for ci in 0..c {
                let inv_std = (var[ci] + self.eps).sqrt().recip();
                let scale = self.gamma.data()[ci] * inv_std;
                let shift = self.beta.data()[ci] - mean[ci] * scale;
                let base = (bi * c + ci) * plane;
                for v in &mut x.data_mut()[base..base + plane] {
                    *v = *v * scale + shift;
                }
            }
        }
    }

    /// Inference-mode forward using the running statistics.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        self.normalize(x, self.running_mean.data(), self.running_var.data())
    }

    /// In-place inference-mode forward (the zero-allocation path); same
    /// numerics as [`BatchNorm2d::forward_eval`].
    pub fn forward_eval_inplace(&self, x: &mut Tensor) {
        let d = x.dims();
        assert_eq!(d.len(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(d[1], self.channels, "channel count mismatch");
        self.normalize_inplace(x, self.running_mean.data(), self.running_var.data());
    }

    /// True when evaluation is exactly the identity for every channel
    /// (scale 1, shift 0) — the state [`crate::fuse`] leaves behind after
    /// folding this norm into the preceding convolution, letting the fast
    /// forward path skip the pass entirely.
    ///
    /// Deliberately recomputed from the parameters (a few sqrt per layer,
    /// noise next to a GEMM) rather than cached as a flag: the exact check
    /// can never skip a norm that still does work, no matter how the
    /// public fields are later mutated.
    pub fn is_identity(&self) -> bool {
        (0..self.channels).all(|ci| {
            let inv_std = (self.running_var.data()[ci] + self.eps).sqrt().recip();
            let scale = self.gamma.data()[ci] * inv_std;
            let shift = self.beta.data()[ci] - self.running_mean.data()[ci] * scale;
            scale == 1.0 && shift == 0.0
        })
    }

    /// Training-mode forward using the current batch statistics. Pure: the
    /// running estimates are *not* touched (see
    /// [`BatchNorm2d::update_running_stats`]).
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        let (mean, var) = batch_stats(x, self.channels);
        self.normalize(x, &mean, &var)
    }

    /// Fold the batch statistics of `x` into the running estimates:
    /// `running ← (1 − momentum)·running + momentum·batch`. Uses the
    /// unbiased variance for the running estimate (PyTorch convention).
    pub fn update_running_stats(&mut self, x: &Tensor) {
        let (mean, var) = batch_stats(x, self.channels);
        let d = x.dims();
        let m = (d[0] * d[2] * d[3]) as f32;
        let unbias = if m > 1.0 { m / (m - 1.0) } else { 1.0 };
        for ci in 0..self.channels {
            let rm = &mut self.running_mean.data_mut()[ci];
            *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ci];
            let rv = &mut self.running_var.data_mut()[ci];
            *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ci] * unbias;
        }
    }

    /// Training-mode backward. `x` is the cached layer input; batch
    /// statistics are recomputed from it. Accumulates `dγ` into `grads[0]`
    /// and `dβ` into `grads[1]`; returns `dL/dx`.
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        let (mean, var) = batch_stats(x, self.channels);
        let d = x.dims();
        let (b, c, plane) = (d[0], d[1], d[2] * d[3]);
        let m = (b * plane) as f32;
        let (gg, rest) = grads.split_first_mut().expect("batchnorm gamma grad");
        let gb = rest.first_mut().expect("batchnorm beta grad");

        let mut gi = Tensor::zeros(x.dims());
        for ci in 0..c {
            let inv_std = (var[ci] + self.eps).sqrt().recip();
            // Channel reductions: Σ dy, Σ dy·x̂.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                let xs = &x.data()[base..base + plane];
                let gs = &grad_out.data()[base..base + plane];
                for (xv, gv) in xs.iter().zip(gs) {
                    let xhat = (xv - mean[ci]) * inv_std;
                    sum_dy += gv;
                    sum_dy_xhat += gv * xhat;
                }
            }
            gg.data_mut()[ci] += sum_dy_xhat;
            gb.data_mut()[ci] += sum_dy;
            // dx = γ·inv_std/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
            let k = self.gamma.data()[ci] * inv_std / m;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for i in 0..plane {
                    let xv = x.data()[base + i];
                    let gv = grad_out.data()[base + i];
                    let xhat = (xv - mean[ci]) * inv_std;
                    gi.data_mut()[base + i] = k * (m * gv - sum_dy - xhat * sum_dy_xhat);
                }
            }
        }
        gi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        tensor::init::uniform(&mut r, dims, -2.0, 2.0)
    }

    #[test]
    fn fresh_layer_is_identity_at_inference() {
        let bn = BatchNorm2d::new(3);
        let x = rand_t(&[2, 3, 4, 4], 1);
        let y = bn.forward_eval(&x);
        // running mean 0, var 1, γ=1, β=0 → y ≈ x (up to eps scaling).
        for (yv, xv) in y.data().iter().zip(x.data()) {
            assert!((yv - xv).abs() < 1e-4, "{yv} vs {xv}");
        }
    }

    #[test]
    fn train_forward_normalizes_each_channel() {
        let bn = BatchNorm2d::new(2);
        let x = rand_t(&[4, 2, 3, 3], 2);
        let y = bn.forward_batch(&x);
        let (mean, var) = batch_stats(&y, 2);
        for ci in 0..2 {
            assert!(mean[ci].abs() < 1e-4, "channel {ci} mean {}", mean[ci]);
            assert!((var[ci] - 1.0).abs() < 1e-3, "channel {ci} var {}", var[ci]);
        }
    }

    #[test]
    fn gamma_beta_rescale_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma = Tensor::full(&[1], 2.0);
        bn.beta = Tensor::full(&[1], 0.5);
        let x = rand_t(&[2, 1, 2, 2], 3);
        let y = bn.forward_batch(&x);
        let (mean, var) = batch_stats(&y, 1);
        assert!((mean[0] - 0.5).abs() < 1e-4);
        assert!((var[0] - 4.0).abs() < 1e-2);
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = rand_t(&[8, 2, 4, 4], 4);
        let (mean, var) = batch_stats(&x, 2);
        let m = 8.0 * 16.0;
        for _ in 0..200 {
            bn.update_running_stats(&x);
        }
        for ci in 0..2 {
            assert!((bn.running_mean.data()[ci] - mean[ci]).abs() < 1e-3);
            let unbiased = var[ci] * m / (m - 1.0);
            assert!((bn.running_var.data()[ci] - unbiased).abs() < 1e-3);
        }
    }

    #[test]
    fn eval_matches_train_once_running_stats_converge() {
        let mut bn = BatchNorm2d::new(2);
        let x = rand_t(&[8, 2, 4, 4], 5);
        for _ in 0..400 {
            bn.update_running_stats(&x);
        }
        let ye = bn.forward_eval(&x);
        let yt = bn.forward_batch(&x);
        let m = 8.0 * 16.0f32;
        // Eval uses the unbiased variance → outputs differ by √(m/(m−1)).
        let ratio = (m / (m - 1.0)).sqrt();
        for (e, t) in ye.data().iter().zip(yt.data()) {
            assert!((e * ratio - t).abs() < 2e-2, "{e} vs {t}");
        }
    }

    #[test]
    fn single_element_batch_does_not_blow_up() {
        let bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[1, 1, 1, 1], 3.0);
        let y = bn.forward_batch(&x);
        assert!(y.data()[0].is_finite());
        // Zero variance → output is β.
        assert!(y.data()[0].abs() < 1e-2);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = Tensor::from_vec(vec![1.3, 0.7], &[2]);
        bn.beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let x = rand_t(&[3, 2, 2, 2], 6);
        let g_out = rand_t(&[3, 2, 2, 2], 7);
        let mut grads = vec![Tensor::zeros(&[2]), Tensor::zeros(&[2])];
        let gx = bn.backward(&x, &g_out, &mut grads);

        let loss = |bn: &BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward_batch(x)
                .data()
                .iter()
                .zip(g_out.data())
                .map(|(&y, &g)| y * g)
                .sum()
        };
        let eps = 1e-2;
        // Input gradient.
        let mut xp = x.clone();
        for idx in [0usize, x.numel() / 2, x.numel() - 1] {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = loss(&bn, &xp);
            xp.data_mut()[idx] = orig - eps;
            let lm = loss(&bn, &xp);
            xp.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 3e-2,
                "dx mismatch at {idx}: fd={fd} an={}",
                gx.data()[idx]
            );
        }
        // γ and β gradients.
        for ci in 0..2 {
            let mut b2 = bn.clone();
            let orig = b2.gamma.data()[ci];
            b2.gamma.data_mut()[ci] = orig + eps;
            let lp = loss(&b2, &x);
            b2.gamma.data_mut()[ci] = orig - eps;
            let lm = loss(&b2, &x);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grads[0].data()[ci]).abs() < 3e-2, "dγ mismatch");

            let mut b3 = bn.clone();
            let orig = b3.beta.data()[ci];
            b3.beta.data_mut()[ci] = orig + eps;
            let lp = loss(&b3, &x);
            b3.beta.data_mut()[ci] = orig - eps;
            let lm = loss(&b3, &x);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grads[1].data()[ci]).abs() < 3e-2, "dβ mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "NCHW")]
    fn rejects_non_nchw_input() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::zeros(&[2, 2]);
        let _ = bn.forward_batch(&x);
    }
}
