//! Int8 inference snapshot of a policy-value net.
//!
//! [`QuantPolicyValueNet`] is the quantized sibling of the folded f32
//! snapshot ([`crate::model::PolicyValueNet::folded_for_inference`]): built
//! once at snapshot time from the *folded* stacks (so batch-norm scales are
//! already inside the conv weights), it holds every conv/linear weight in
//! the pre-packed per-output-channel int8 form of
//! [`tensor::quant::QuantizedWeights`] and runs forwards through the int8
//! GEMM with dequant/bias/ReLU fused in the epilogue. Activations stay f32
//! between layers and are quantized dynamically per GEMM call, so there is
//! no calibration step and no accumulated inter-layer quantization state.
//!
//! The accuracy contract (pinned by the parity tests): per-layer weight
//! round-off is bounded by half the per-channel scale, activation round-off
//! by half the per-call scale; through the 5-conv/3-linear nets this yields
//! policy distributions whose argmax agrees with f32 on ≥ 99% of positions
//! and values within a few 1e-2 MAE. Anything needing exact f32 (training,
//! reference checks) keeps using the float paths.
//!
//! Only the inference-relevant layer kinds are supported (conv, linear,
//! fused ReLU, flatten, tanh, identity batch norms). Snapshotting a net
//! with residual blocks or unfolded norms returns `None` and callers fall
//! back to the f32 snapshot.

use crate::layer::LayerKind;
use crate::model::NetConfig;
use tensor::conv::{im2col, im2col_batch, Conv2dSpec};
use tensor::quant::{qgemm, QuantizedWeights};
use tensor::{Tensor, Workspace};

/// One quantized inference layer. ReLU is always fused into the preceding
/// GEMM's epilogue, so it never appears standalone.
#[derive(Debug, Clone)]
enum QLayer {
    Conv {
        qw: QuantizedWeights,
        bias: Vec<f32>,
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    },
    Linear {
        qw: QuantizedWeights,
        bias: Vec<f32>,
        in_dim: usize,
        out_dim: usize,
        relu: bool,
    },
    Flatten,
    Tanh,
}

/// Quantize one folded layer stack. Returns `None` on any layer kind the
/// int8 path does not support.
fn quantize_stack(layers: &[LayerKind]) -> Option<Vec<QLayer>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < layers.len() {
        let fuse_relu = matches!(layers.get(i + 1), Some(LayerKind::ReLU));
        match &layers[i] {
            LayerKind::Conv2d(c) => {
                let k = c.in_c * c.kh * c.kw;
                out.push(QLayer::Conv {
                    qw: QuantizedWeights::quantize(c.weight.data(), c.out_c, k),
                    bias: c.bias.data().to_vec(),
                    in_c: c.in_c,
                    out_c: c.out_c,
                    kh: c.kh,
                    kw: c.kw,
                    stride: c.stride,
                    pad: c.pad,
                    relu: fuse_relu,
                });
                i += if fuse_relu { 2 } else { 1 };
            }
            LayerKind::Linear(l) => {
                out.push(QLayer::Linear {
                    qw: QuantizedWeights::quantize(l.weight.data(), l.out_dim, l.in_dim),
                    bias: l.bias.data().to_vec(),
                    in_dim: l.in_dim,
                    out_dim: l.out_dim,
                    relu: fuse_relu,
                });
                i += if fuse_relu { 2 } else { 1 };
            }
            LayerKind::Flatten => {
                out.push(QLayer::Flatten);
                i += 1;
            }
            LayerKind::Tanh => {
                out.push(QLayer::Tanh);
                i += 1;
            }
            // Folded-away norms are exact identities; skip them.
            LayerKind::BatchNorm2d(bn) if bn.is_identity() => {
                i += 1;
            }
            // A ReLU not consumed by a preceding GEMM, an unfolded norm,
            // or a residual block: not representable on the int8 path.
            _ => return None,
        }
    }
    Some(out)
}

/// A policy-value net snapshotted to int8 weights, running forwards on the
/// quantized GEMM. Frozen (inference only) and thread-safe, like the
/// folded f32 snapshot it is built from.
#[derive(Debug, Clone)]
pub struct QuantPolicyValueNet {
    pub config: NetConfig,
    trunk: Vec<QLayer>,
    policy_head: Vec<QLayer>,
    value_head: Vec<QLayer>,
}

impl QuantPolicyValueNet {
    /// Build from already-folded stacks. `None` if any stack contains a
    /// layer kind the int8 path cannot represent.
    pub(crate) fn from_folded_stacks(
        config: NetConfig,
        trunk: &[LayerKind],
        policy_head: &[LayerKind],
        value_head: &[LayerKind],
    ) -> Option<Self> {
        Some(QuantPolicyValueNet {
            config,
            trunk: quantize_stack(trunk)?,
            policy_head: quantize_stack(policy_head)?,
            value_head: quantize_stack(value_head)?,
        })
    }

    /// Total bytes held in packed int8 weight panels (footprint reporting;
    /// roughly a quarter of the f32 weight bytes).
    pub fn packed_weight_bytes(&self) -> usize {
        [&self.trunk, &self.policy_head, &self.value_head]
            .into_iter()
            .flat_map(|s| s.iter())
            .map(|l| match l {
                QLayer::Conv { qw, .. } | QLayer::Linear { qw, .. } => qw.packed_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Batched prediction with the same contract as
    /// [`crate::model::PolicyValueNet::predict_into`]: softmaxed policies
    /// (`[b·A]`, row-major) into `policy`, tanh values (`[b]`) into
    /// `values`, all scratch from `ws`.
    pub fn predict_into(
        &self,
        x: &Tensor,
        ws: &mut Workspace,
        policy: &mut Vec<f32>,
        values: &mut Vec<f32>,
    ) {
        let b = x.dims()[0];
        let actions = self.config.actions;
        let feat = forward_stack_q(&self.trunk, x, ws);
        let logits = forward_stack_q(&self.policy_head, &feat, ws);
        let vals = forward_stack_q(&self.value_head, &feat, ws);
        ws.release(feat.into_vec());
        policy.clear();
        policy.extend_from_slice(logits.data());
        values.clear();
        values.extend_from_slice(vals.data());
        ws.release(logits.into_vec());
        ws.release(vals.into_vec());
        for r in 0..b {
            tensor::ops::softmax_inplace(&mut policy[r * actions..(r + 1) * actions]);
        }
    }

    /// Forward returning freshly allocated policy-logit and value tensors
    /// (convenience for tests; the serving path uses `predict_into`).
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        Workspace::with_thread(|ws| {
            let feat = forward_stack_q(&self.trunk, x, ws);
            let logits = forward_stack_q(&self.policy_head, &feat, ws);
            let vals = forward_stack_q(&self.value_head, &feat, ws);
            ws.release(feat.into_vec());
            let out = (
                Tensor::from_vec(logits.data().to_vec(), logits.dims()),
                Tensor::from_vec(vals.data().to_vec(), vals.dims()),
            );
            ws.release(logits.into_vec());
            ws.release(vals.into_vec());
            out
        })
    }
}

/// Quantized mirror of [`crate::layer::forward_stack_ws`]: intermediate
/// activations leased from `ws`, ReLUs already fused into the GEMM layers.
fn forward_stack_q(layers: &[QLayer], x: &Tensor, ws: &mut Workspace) -> Tensor {
    let mut cur: Option<Tensor> = None;
    let release_into = |cur: &mut Option<Tensor>, ws: &mut Workspace, out: Tensor| {
        if let Some(old) = cur.take() {
            ws.release(old.into_vec());
        }
        *cur = Some(out);
    };
    for layer in layers {
        match layer {
            QLayer::Conv {
                qw,
                bias,
                in_c,
                out_c,
                kh,
                kw,
                stride,
                pad,
                relu,
            } => {
                let input = cur.as_ref().unwrap_or(x);
                let (b, _, h, w) = {
                    let d = input.dims();
                    (d[0], d[1], d[2], d[3])
                };
                let spec = Conv2dSpec {
                    in_c: *in_c,
                    out_c: *out_c,
                    in_h: h,
                    in_w: w,
                    kh: *kh,
                    kw: *kw,
                    stride: *stride,
                    pad: *pad,
                };
                spec.validate();
                let (oh, ow) = (spec.out_h(), spec.out_w());
                let (rows, cols) = (spec.col_rows(), spec.col_cols());
                let dims = [b, *out_c, oh, ow];
                let buf = ws.lease(dims.iter().product());
                let mut out = Tensor::from_vec(buf, &dims);
                if b == 1 {
                    // [1, out_c, oh, ow] is exactly the GEMM output layout.
                    let col = ws.col_buf(rows * cols);
                    im2col(&spec, input.data(), col);
                    qgemm(qw, col, false, cols, out.data_mut(), Some(bias), *relu);
                } else {
                    let bcols = b * cols;
                    let (col, stage) = ws.col_and_stage(rows * bcols, out_c * bcols);
                    im2col_batch(&spec, b, input.data(), col);
                    qgemm(qw, col, false, bcols, stage, Some(bias), *relu);
                    // Scatter [out_c, B, cols] → [B, out_c, cols].
                    let out_len = out_c * cols;
                    let o = out.data_mut();
                    for bi in 0..b {
                        for oc in 0..*out_c {
                            o[bi * out_len + oc * cols..bi * out_len + (oc + 1) * cols]
                                .copy_from_slice(
                                    &stage[oc * bcols + bi * cols..oc * bcols + (bi + 1) * cols],
                                );
                        }
                    }
                }
                release_into(&mut cur, ws, out);
            }
            QLayer::Linear {
                qw,
                bias,
                in_dim,
                out_dim,
                relu,
            } => {
                let input = cur.as_ref().unwrap_or(x);
                let b = input.dims()[0];
                assert_eq!(input.dims(), &[b, *in_dim], "linear input shape");
                let buf = ws.lease(b * out_dim);
                let mut out = Tensor::from_vec(buf, &[b, *out_dim]);
                // x rows are the n vectors; output written [b, out] directly
                // by the transposed tile write-back.
                qgemm(qw, input.data(), true, b, out.data_mut(), Some(bias), *relu);
                release_into(&mut cur, ws, out);
            }
            QLayer::Flatten => {
                let cur = cur.get_or_insert_with(|| {
                    let mut buf = ws.lease(x.numel());
                    buf.copy_from_slice(x.data());
                    Tensor::from_vec(buf, x.dims())
                });
                let b = cur.dims()[0];
                let rest: usize = cur.dims()[1..].iter().product();
                let reshaped = std::mem::replace(cur, Tensor::zeros(&[0]));
                *cur = reshaped.reshape(&[b, rest]);
            }
            QLayer::Tanh => {
                let cur = cur.get_or_insert_with(|| {
                    let mut buf = ws.lease(x.numel());
                    buf.copy_from_slice(x.data());
                    Tensor::from_vec(buf, x.dims())
                });
                cur.map_inplace(f32::tanh);
            }
        }
    }
    cur.unwrap_or_else(|| {
        let mut buf = ws.lease(x.numel());
        buf.copy_from_slice(x.data());
        Tensor::from_vec(buf, x.dims())
    })
}

#[cfg(test)]
mod tests {
    use crate::model::{NetConfig, PolicyValueNet};
    use tensor::Tensor;

    fn rand_input(cfg: &NetConfig, b: usize, seed: u64) -> Tensor {
        let len = b * cfg.in_c * cfg.h * cfg.w;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let data: Vec<f32> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(data, &[b, cfg.in_c, cfg.h, cfg.w])
    }

    #[test]
    fn standard_net_quantizes() {
        let net = PolicyValueNet::new(NetConfig::tiny(3, 6, 6, 36), 1);
        assert!(net.quantized_for_inference().is_some());
    }

    #[test]
    fn quantized_predictions_track_f32() {
        let cfg = NetConfig::tiny(3, 6, 6, 36);
        let net = PolicyValueNet::new(cfg, 42);
        let qnet = net
            .quantized_for_inference()
            .expect("standard net quantizes");
        let mut agree = 0usize;
        let mut top3 = 0usize;
        let mut total = 0usize;
        let mut value_err = 0f32;
        for seed in 0..20u64 {
            for &b in &[1usize, 3] {
                let x = rand_input(&cfg, b, 1000 + seed);
                let (fp, fv) = {
                    let (mut logits, values) = net.forward(&x);
                    let a = logits.dims()[1];
                    for r in 0..b {
                        tensor::ops::softmax_inplace(&mut logits.data_mut()[r * a..(r + 1) * a]);
                    }
                    (logits, values)
                };
                let (mut qp, qv) = qnet.forward(&x);
                let a = qp.dims()[1];
                for r in 0..b {
                    tensor::ops::softmax_inplace(&mut qp.data_mut()[r * a..(r + 1) * a]);
                }
                for r in 0..b {
                    let frow = &fp.data()[r * a..(r + 1) * a];
                    let qrow = &qp.data()[r * a..(r + 1) * a];
                    let fmax = argmax(frow);
                    let qmax = argmax(qrow);
                    total += 1;
                    if fmax == qmax {
                        agree += 1;
                    }
                    if top_k(frow, 3).contains(&qmax) {
                        top3 += 1;
                    }
                    value_err += (fv.data()[r] - qv.data()[r]).abs();
                }
            }
        }
        let agreement = agree as f32 / total as f32;
        let top3_rate = top3 as f32 / total as f32;
        let mae = value_err / total as f32;
        // Random untrained nets produce near-tied logits, so raw argmax is
        // fragile here: require 95% exact agreement plus 99% top-3
        // containment. The ≥ 99% exact-argmax contract is pinned on the
        // fixed game-position suite in the mcts crate's parity tests.
        assert!(agreement >= 0.95, "policy argmax agreement {agreement}");
        assert!(top3_rate >= 0.99, "policy top-3 containment {top3_rate}");
        assert!(mae <= 0.05, "value MAE {mae}");
    }

    #[test]
    fn batch_one_and_batched_forwards_agree() {
        let cfg = NetConfig::tiny(3, 6, 6, 36);
        let net = PolicyValueNet::new(cfg, 7);
        let qnet = net.quantized_for_inference().unwrap();
        let x3 = rand_input(&cfg, 3, 77);
        let (p3, v3) = qnet.forward(&x3);
        let img = cfg.in_c * cfg.h * cfg.w;
        for r in 0..3 {
            let x1 = Tensor::from_vec(
                x3.data()[r * img..(r + 1) * img].to_vec(),
                &[1, cfg.in_c, cfg.h, cfg.w],
            );
            let (p1, v1) = qnet.forward(&x1);
            let a = p1.dims()[1];
            // Same activation-scale per layer would make these bitwise
            // equal; batching changes the dynamic scale, so compare within
            // the quantization tolerance instead.
            for i in 0..a {
                let d = (p1.data()[i] - p3.data()[r * a + i]).abs();
                assert!(d < 0.25, "row {r} logit {i}: {d}");
            }
            assert!((v1.data()[0] - v3.data()[r]).abs() < 0.1);
        }
    }

    fn argmax(v: &[f32]) -> usize {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    fn top_k(v: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
        idx.truncate(k);
        idx
    }
}
